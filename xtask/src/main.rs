//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! `lint` — source-level checks the compiler cannot express:
//!
//! 1. **No `unwrap()`/`expect()` on runtime hot paths.** The cluster
//!    runtime's whole design is that injected faults surface as typed
//!    errors, not panics; a stray `unwrap()` on a node thread undoes
//!    that. Non-test code in `cluster.rs`, `reliable.rs` and
//!    `runtime.rs` must stay panic-free except for the entries in
//!    `xtask/lint-allow.txt` (invariants a local match already proves).
//! 2. **Stable telemetry operator ids.** Per-operator metrics merge
//!    across partitions, pipelines and runs by `op{index}:{name}`;
//!    every `impl Operator` must return a string-literal `name()` so
//!    ids never drift between runs. Operators whose name is genuinely
//!    dynamic (plugin wrappers) are allowlisted here.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Hot-path files that must stay free of panicking shortcuts.
const NO_PANIC_FILES: &[&str] = &[
    "crates/nebula/src/cluster.rs",
    "crates/nebula/src/reliable.rs",
    "crates/nebula/src/runtime.rs",
];

/// Operator types whose `name()` is legitimately non-literal:
/// `FlatMapOp` carries its factory's name, `InstrumentedOp` forwards
/// the wrapped operator's.
const DYNAMIC_NAME_OPERATORS: &[&str] = &["FlatMapOp", "InstrumentedOp"];

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task '{other}'; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask always runs via cargo, which sets this to xtask/.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits in the repo")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut failures = String::new();
    check_no_panics(&root, &mut failures);
    check_operator_names(&root, &mut failures);
    if failures.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        eprint!("{failures}");
        ExitCode::FAILURE
    }
}

/// The non-test prefix of a source file: everything before the first
/// `#[cfg(test)]` (the repo convention keeps tests in a trailing
/// module).
fn non_test_prefix(content: &str) -> &str {
    match content.find("#[cfg(test)]") {
        Some(idx) => &content[..idx],
        None => content,
    }
}

/// Allowlist entries: `path-suffix | line-substring`, one per line,
/// `#` comments. A hit is tolerated when an entry's path suffix
/// matches the file and its substring occurs in the offending line —
/// content-anchored, so line-number drift never stales the list.
fn load_allowlist(root: &Path) -> Vec<(String, String)> {
    let path = root.join("xtask/lint-allow.txt");
    let content = std::fs::read_to_string(&path).unwrap_or_default();
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (file, pat) = l.split_once('|')?;
            Some((file.trim().to_string(), pat.trim().to_string()))
        })
        .collect()
}

fn check_no_panics(root: &Path, failures: &mut String) {
    let allow = load_allowlist(root);
    for rel in NO_PANIC_FILES {
        let path = root.join(rel);
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                let _ = writeln!(failures, "lint: cannot read {rel}: {e}");
                continue;
            }
        };
        for (i, line) in non_test_prefix(&content).lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            if !code.contains(".unwrap()") && !code.contains(".expect(") {
                continue;
            }
            let allowed = allow
                .iter()
                .any(|(file, pat)| rel.ends_with(file.as_str()) && line.contains(pat.as_str()));
            if !allowed {
                let _ = writeln!(
                    failures,
                    "lint: {rel}:{}: unwrap()/expect() on a runtime hot path \
                     (return a typed error, or add to xtask/lint-allow.txt \
                     with a justification): {}",
                    i + 1,
                    line.trim()
                );
            }
        }
    }
}

/// Every `.rs` file under the given directory, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn check_operator_names(root: &Path, failures: &mut String) {
    let mut files = Vec::new();
    for crate_dir in ["crates/nebula/src", "crates/core/src"] {
        rust_files(&root.join(crate_dir), &mut files);
    }
    files.sort();
    let mut seen_impls = 0usize;
    for path in files {
        let Ok(content) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        let mut rest = non_test_prefix(&content);
        while let Some(idx) = rest.find("impl Operator for ") {
            let after = &rest[idx + "impl Operator for ".len()..];
            let ty: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let block = impl_block(after);
            seen_impls += 1;
            if !DYNAMIC_NAME_OPERATORS.contains(&ty.as_str()) && !name_returns_literal(block) {
                let _ = writeln!(
                    failures,
                    "lint: {rel}: `impl Operator for {ty}` must return a \
                     string-literal name() — telemetry op ids must be stable \
                     across runs (or allowlist the type in xtask/src/main.rs)"
                );
            }
            rest = after;
        }
    }
    if seen_impls == 0 {
        let _ = writeln!(
            failures,
            "lint: found no `impl Operator for` blocks; check paths"
        );
    }
}

/// The text of the brace-delimited block starting at the first `{`.
fn impl_block(after_header: &str) -> &str {
    let Some(open) = after_header.find('{') else {
        return "";
    };
    let mut depth = 0usize;
    for (i, c) in after_header[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return &after_header[open..open + i + 1];
                }
            }
            _ => {}
        }
    }
    &after_header[open..]
}

/// Does the block's `fn name(&self)` body start with a string literal?
fn name_returns_literal(block: &str) -> bool {
    let Some(idx) = block.find("fn name(&self)") else {
        return false;
    };
    let body = &block[idx..];
    let Some(open) = body.find('{') else {
        return false;
    };
    body[open + 1..].trim_start().starts_with('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_names_pass_dynamic_names_fail() {
        let good = r#"{
            fn name(&self) -> &str {
                "filter"
            }
        }"#;
        let bad = r#"{
            fn name(&self) -> &str {
                &self.name
            }
        }"#;
        assert!(name_returns_literal(good));
        assert!(!name_returns_literal(bad));
    }

    #[test]
    fn impl_block_extraction_tracks_braces() {
        let src = "X { fn a() { if x { y } } } impl Other";
        assert_eq!(impl_block(src), "{ fn a() { if x { y } } }");
    }

    #[test]
    fn non_test_prefix_stops_at_test_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() { x.unwrap() } }";
        assert!(!non_test_prefix(src).contains("unwrap"));
    }

    #[test]
    fn lint_passes_on_this_repo() {
        let mut failures = String::new();
        let root = repo_root();
        check_no_panics(&root, &mut failures);
        check_operator_names(&root, &mut failures);
        assert!(failures.is_empty(), "{failures}");
    }
}
