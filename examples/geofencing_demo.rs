//! Geofencing demonstration: the paper's Queries 1–4 (§3.1) over one
//! simulated demo hour, with a per-query alert digest — the terminal
//! version of the Deck.gl walkthrough.
//!
//! ```text
//! cargo run --release --example geofencing_demo
//! ```

use nebula::prelude::*;
use nebulameos::{
    q1_alert_filtering, q2_noise_monitoring, q3_dynamic_speed_limit, q4_weather_speed_zones,
};
use sncb::FleetConfig;

fn run(name: &str, query: &Query, describe: impl Fn(&Record) -> String) -> nebula::Result<()> {
    let (mut env, _) = sncb::demo_environment(FleetConfig::demo_hour());
    let (mut sink, results) = CollectingSink::new();
    let metrics = env.run(query, &mut sink)?;
    println!("\n=== {name} ===");
    println!(
        "  {:>7} events in, {:>6} alerts, {:>8.0} e/s sustained",
        metrics.records_in,
        metrics.records_out,
        metrics.events_per_sec()
    );
    for rec in results.records().iter().take(4) {
        println!("  {}", describe(rec));
    }
    if results.len() > 4 {
        println!("  ... and {} more", results.len() - 4);
    }
    Ok(())
}

fn main() -> nebula::Result<()> {
    let f = |r: &Record, i: usize| r.get(i).cloned().unwrap_or(Value::Null);

    // Q1: alert stream with maintenance-zone suppression.
    run(
        "Q1 Location-Based Alert Filtering",
        &q1_alert_filtering(160.0),
        |r| {
            format!(
                "train {} {} alert at {} (speed {:.0} km/h)",
                f(r, 1),
                f(r, 15),
                f(r, 2),
                f(r, 3).as_float().unwrap_or(0.0),
            )
        },
    )?;

    // Q2: windowed noise in noise-sensitive zones.
    run(
        "Q2 Location-Based Noise Monitoring",
        &q2_noise_monitoring(75.0),
        |r| {
            format!(
                "train {} noisy minute: avg {:.1} dB, peak {:.1} dB ({} samples)",
                f(r, 0),
                f(r, 3).as_float().unwrap_or(0.0),
                f(r, 4).as_float().unwrap_or(0.0),
                f(r, 5),
            )
        },
    )?;

    // Q3: dynamic speed limits in high-risk zones.
    run("Q3 Dynamic Speed Limit", &q3_dynamic_speed_limit(), |r| {
        format!(
            "train {} at {:.0} km/h exceeds zone limit {:.0} by {:.1} km/h",
            f(r, 1),
            f(r, 3).as_float().unwrap_or(0.0),
            f(r, 12).as_float().unwrap_or(0.0),
            f(r, 13).as_float().unwrap_or(0.0),
        )
    })?;

    // Q4: weather-conditioned suggestions.
    run(
        "Q4 Weather-Based Speed Zones",
        &q4_weather_speed_zones(160.0),
        |r| {
            format!(
                "train {} at {:.0} km/h; weather factor {:.2} suggests <= {:.0} km/h",
                f(r, 1),
                f(r, 3).as_float().unwrap_or(0.0),
                f(r, 12).as_float().unwrap_or(0.0),
                f(r, 13).as_float().unwrap_or(0.0),
            )
        },
    )?;

    Ok(())
}
