//! Geospatial complex event processing demonstration: the paper's
//! Queries 5–8 (§3.2). The simulated fleet injects a battery fault on
//! train 1, repeated emergency brakes plus a brake-pipe leak on train 2,
//! and unscheduled stops on train 3 — each query must find its anomaly.
//!
//! ```text
//! cargo run --release --example gcep_demo
//! ```

use nebula::prelude::*;
use nebulameos::{q5_battery_monitoring, q6_heavy_load, q7_unscheduled_stops, q8_brake_monitoring};
use sncb::FleetConfig;

fn run(name: &str, query: &Query) -> nebula::Result<Vec<Record>> {
    let (mut env, _) = sncb::demo_environment(FleetConfig::demo_hour());
    let (mut sink, results) = CollectingSink::new();
    let metrics = env.run(query, &mut sink)?;
    println!("\n=== {name} ===");
    println!(
        "  {} events -> {} complex events ({:.0} e/s)",
        metrics.records_in,
        metrics.records_out,
        metrics.events_per_sec()
    );
    Ok(results.records())
}

fn main() -> nebula::Result<()> {
    // Q5: battery-curve deviation + nearest workshop.
    let alerts = run("Q5 Battery Monitoring", &q5_battery_monitoring())?;
    if let Some(first) = alerts.first() {
        let train = first.get(1).cloned().unwrap_or(Value::Null);
        let volts = first.get(4).and_then(Value::as_float).unwrap_or(0.0);
        let shop = first
            .get(first.len() - 1)
            .and_then(|v| v.as_text().map(str::to_string))
            .unwrap_or_default();
        let dist = first
            .get(first.len() - 2)
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        println!(
            "  first: train {train} battery at {volts:.1} V; nearest {shop} \
             ({:.1} km away); {} follow-up alerts",
            dist / 1000.0,
            alerts.len() - 1
        );
    }

    // Q6: sustained heavy passenger load.
    let loads = run("Q6 Heavy Passenger Load", &q6_heavy_load(500, 30))?;
    for r in &loads {
        println!(
            "  train {} held >= 500 passengers for {} ticks (peak {})",
            r.get(0).cloned().unwrap_or(Value::Null),
            r.get(5).cloned().unwrap_or(Value::Null),
            r.get(3).cloned().unwrap_or(Value::Null),
        );
    }
    if loads.is_empty() {
        println!("  no sustained heavy-load episodes this hour");
    }

    // Q7: stops outside stations/workshops.
    let stops = run("Q7 Unscheduled Stops", &q7_unscheduled_stops(120))?;
    for r in &stops {
        println!(
            "  train {} halted {} ticks at {}",
            r.get(0).cloned().unwrap_or(Value::Null),
            r.get(4).cloned().unwrap_or(Value::Null),
            r.get(3).cloned().unwrap_or(Value::Null),
        );
    }

    // Q8: repeated emergency brakes.
    let brakes = run("Q8 Monitoring Brakes", &q8_brake_monitoring(30))?;
    for r in &brakes {
        let start = r
            .get(r.len() - 2)
            .and_then(Value::as_timestamp)
            .unwrap_or(0);
        let end = r
            .get(r.len() - 1)
            .and_then(Value::as_timestamp)
            .unwrap_or(0);
        println!(
            "  train {}: 3 emergency brakes within {:.1} min",
            r.get(1).cloned().unwrap_or(Value::Null),
            (end - start) as f64 / 60e6,
        );
    }
    Ok(())
}
