//! Quickstart: simulate two minutes of the SNCB fleet, register the MEOS
//! plugin, and run a geofence query — the minimal end-to-end NebulaMEOS
//! loop.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use meos::geo::{Geometry, Point};
use nebula::prelude::*;
use nebulameos::functions::geom;
use sncb::FleetConfig;

fn main() -> nebula::Result<()> {
    // A fully wired environment: MEOS functions + zone/weather context +
    // a "fleet" source streaming 2 simulated minutes of 6 trains.
    let (mut env, events) = sncb::demo_environment(FleetConfig::test_minutes(2));
    println!("simulated {events} sensor events from 6 trains");

    // A dynamic geofence: 3 km around Brussels-Midi, expressed with the
    // registered MEOS expression `st_contains`.
    let brussels = Geometry::Circle {
        center: Point::new(4.3353, 50.8358),
        radius: 3_000.0,
    };
    let query = Query::from("fleet")
        .filter(call("st_contains", vec![geom(brussels), col("pos")]))
        .map(vec![
            ("ts", col("ts")),
            ("train_id", col("train_id")),
            ("pos", col("pos")),
            ("speed_kmh", col("speed_kmh")),
        ]);

    // Pre-flight static analysis — the same check `run` performs before
    // instantiating any operator (a broken plan is rejected here with
    // typed E0xx diagnostics instead of failing mid-stream).
    println!("\npre-flight analysis:\n{}", env.analyze(&query)?.render());
    println!("physical plan:\n{}", env.explain(&query)?);

    let (mut sink, results) = CollectingSink::new();
    let metrics = env.run(&query, &mut sink)?;

    println!("metrics: {metrics}");
    println!(
        "{} position fixes inside the Brussels geofence; first few:",
        results.len()
    );
    for rec in results.records().iter().take(5) {
        println!("  {rec}");
    }
    Ok(())
}
