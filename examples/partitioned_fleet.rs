//! Partitioned fleet analytics: the same per-train window query run on
//! the single-threaded loop and hash-partitioned across worker threads,
//! demonstrating that the results are identical while the work spreads
//! over the hardware — NebulaStream's worker-parallel execution model.
//!
//! ```text
//! cargo run --release --example partitioned_fleet
//! ```

use nebula::prelude::*;
use sncb::FleetConfig;

fn fleet_env(parallelism: usize) -> (StreamEnvironment, usize) {
    let (mut env, events) = sncb::demo_environment(FleetConfig::test_minutes(10));
    env.config_mut().parallelism = parallelism;
    (env, events)
}

fn main() -> nebula::Result<()> {
    // Per-train one-minute speed/load profile — a keyed window, so the
    // planner hash-partitions the stream by `train_id`.
    let query = Query::from("fleet").window(
        vec![("train", col("train_id"))],
        WindowSpec::Tumbling {
            size: 60 * MICROS_PER_SEC,
        },
        vec![
            WindowAgg::new("n", AggSpec::Count),
            WindowAgg::new("avg_speed", AggSpec::Avg(col("speed_kmh"))),
            WindowAgg::new("max_passengers", AggSpec::Max(col("passengers"))),
        ],
    );
    println!("partition scheme: {:?}\n", query.partition_scheme());

    // Reference: the deterministic single-threaded loop.
    let (mut env, events) = fleet_env(1);
    let (mut sink, reference) = CollectingSink::new();
    let m1 = env.run(&query, &mut sink)?;
    println!("run            : {m1}");

    // The same query, sharded by train across 4 workers with watermarks
    // broadcast to every partition.
    let (mut env, _) = fleet_env(4);
    let (mut sink, partitioned) = CollectingSink::new();
    let m4 = env.run_partitioned(&query, &mut sink)?;
    println!("run_partitioned: {m4} (parallelism 4)");

    // Identical results, order-normalized.
    let mut a = reference.records();
    let mut b = partitioned.records();
    normalize_records(&mut a);
    normalize_records(&mut b);
    assert_eq!(a, b, "partitioned results must match the reference");
    assert_eq!(m1.records_in, events as u64);
    assert_eq!(m1.records_in, m4.records_in);
    assert_eq!(m1.records_out, m4.records_out);

    println!(
        "\n{} window rows identical across modes; first few per-train profiles:",
        a.len()
    );
    for rec in a.iter().take(6) {
        println!("  {rec}");
    }
    println!(
        "\nmerged p99 worker latency: {:.1} µs over {} buffer feeds",
        m4.latency_us(99.0).unwrap_or(0.0),
        m4.latency.len(),
    );
    Ok(())
}
