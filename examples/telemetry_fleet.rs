//! Runtime telemetry across every execution mode: one fleet-analytics
//! query is run synchronously, pipeline-parallel, data-parallel, and
//! distributed across the sensors → edge → cloud topology — and each
//! run yields a [`QueryReport`]: per-operator records/selectivity/
//! service-time breakdowns, a periodically sampled time series of
//! throughput, queue depth and frontier lag, per-node snapshots fanned
//! in over the wire (cluster mode), and a causally-ordered trace log.
//! The final report is also exported as JSON.
//!
//! ```text
//! cargo run --release --example telemetry_fleet
//! ```

use nebula::prelude::*;
use sncb::FleetConfig;
use std::time::Duration;

const NUM_TRAINS: usize = 4;

fn fleet_query() -> Query {
    // The common shape: filter, derive, keyed window — three operators
    // with distinct selectivity and service-time profiles.
    Query::from("fleet")
        .filter(col("speed_kmh").gt(lit(5.0)))
        .map_extend(vec![("ms", col("speed_kmh").mul(lit(1.0 / 3.6)))])
        .window(
            vec![("train", col("train_id"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("avg_ms", AggSpec::Avg(col("ms"))),
                WindowAgg::new("max_kmh", AggSpec::Max(col("speed_kmh"))),
            ],
        )
}

/// Sub-millisecond sampling so even a fast example run records a
/// multi-point series (production default is 100 ms).
fn telemetry() -> TelemetryConfig {
    TelemetryConfig {
        sample_every: Duration::from_millis(1),
        ..TelemetryConfig::default()
    }
}

fn local_env(records: Vec<Record>) -> StreamEnvironment {
    let mut env = StreamEnvironment::with_config(EnvConfig {
        buffer_size: 256,
        watermark_every: 2,
        parallelism: 4,
        telemetry: telemetry(),
        ..EnvConfig::default()
    });
    env.add_source(
        "fleet",
        Box::new(VecSource::new(sncb::fleet_schema(), records)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    env
}

fn main() -> nebula::Result<()> {
    let records = sncb::generate(FleetConfig {
        num_trains: NUM_TRAINS,
        ..FleetConfig::test_minutes(30)
    });
    println!(
        "fleet workload: {} records over 30 simulated minutes, {NUM_TRAINS} trains\n",
        records.len()
    );
    let query = fleet_query();

    // The three single-process modes: same query, same telemetry
    // pipeline, three executors.
    for mode in ["run", "run_threaded", "run_partitioned"] {
        let mut env = local_env(records.clone());
        let mut sink = NullSink;
        match mode {
            "run" => env.run(&query, &mut sink)?,
            "run_threaded" => env.run_threaded(&query, &mut sink)?,
            _ => env.run_partitioned(&query, &mut sink)?,
        };
        let report = env.take_report().expect("telemetry is enabled");
        print!("{}", report.render());
        println!();
    }

    // The distributed mode: each train's sensors feed its edge box,
    // pre-aggregated partials cross the uplink, and every node ships
    // periodic snapshots to the cloud alongside the data.
    let (topo, sensors) = Topology::train_fleet(NUM_TRAINS);
    let mut env = ClusterEnvironment::with_config(
        topo,
        ClusterConfig {
            buffer_size: 256,
            watermark_every: 2,
            telemetry: telemetry(),
            ..ClusterConfig::default()
        },
    );
    let train_col = sncb::fleet_schema().index_of("train_id").expect("train_id");
    for (t, sensor) in sensors.iter().enumerate() {
        let slice: Vec<Record> = records
            .iter()
            .filter(|r| r.get(train_col).unwrap().as_int().unwrap() as usize == t)
            .cloned()
            .collect();
        env.add_source(
            "fleet",
            *sensor,
            Box::new(VecSource::new(sncb::fleet_schema(), slice)),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
    }
    let mut sink = NullSink;
    let placed = env.run_placed(&fleet_query(), PlacementStrategy::EdgeFirst, &mut sink)?;
    print!("{}", placed.telemetry.render());

    let by_node: std::collections::BTreeMap<&str, usize> = placed
        .telemetry
        .node_snapshots
        .iter()
        .fold(std::collections::BTreeMap::new(), |mut acc, s| {
            *acc.entry(s.node.as_str()).or_default() += 1;
            acc
        });
    println!("  per-node snapshot counts:");
    for (node, count) in by_node {
        println!("    {node:<24} {count:>5}");
    }

    // The whole report is one JSON document — print a truncated view.
    let json =
        serde_json::to_string_pretty(&placed.telemetry.to_json()).expect("report serializes");
    let head: String = json.chars().take(1200).collect();
    println!(
        "\nJSON export (first 1200 chars of {} total):\n{head}...",
        json.len()
    );
    Ok(())
}
