//! Edge placement: the distributed story behind Figure 1. Builds the
//! sensors→edge→cloud fleet topology, places Q1 edge-first versus
//! cloud-only, measures the bytes each stage actually produces on the
//! simulated stream, and compares uplink usage — then fails the edge box
//! and re-places incrementally.
//!
//! ```text
//! cargo run --release --example edge_placement
//! ```

use nebula::prelude::*;
use nebulameos::q2_noise_monitoring;
use sncb::FleetConfig;

fn main() -> nebula::Result<()> {
    let (env, _) = sncb::demo_environment(FleetConfig::test_minutes(30));
    // Q2 has a stateful window stage, so edge-first placement actually
    // uses the onboard edge box (stateless stages stay on the sensors).
    let query = q2_noise_monitoring(75.0);

    // Measure per-stage data volumes on the real stream.
    let cfg = FleetConfig::test_minutes(30);
    let records = sncb::generate(cfg);
    let stages = measure_stage_bytes(
        Box::new(VecSource::new(sncb::fleet_schema(), records)),
        &query,
        env.registry(),
        1024,
    )?;
    println!("per-stage volumes for Q2 (30 simulated minutes):");
    let labels = [
        "source",
        "filter quiet zones",
        "window 60s stats",
        "filter peaks",
    ];
    for (i, (bytes, recs)) in stages
        .stage_bytes
        .iter()
        .zip(&stages.stage_records)
        .enumerate()
    {
        println!(
            "  {:<20} {:>9} records {:>12.2} KB",
            labels.get(i).unwrap_or(&"stage"),
            recs,
            *bytes as f64 / 1e3
        );
    }

    // The fleet topology: 6 trains, each sensors -> edge -> cloud.
    let (mut topo, sensors) = Topology::train_fleet(6);
    let edge_pl = place(&query, &topo, sensors[0], PlacementStrategy::EdgeFirst)?;
    let cloud_pl = place(&query, &topo, sensors[0], PlacementStrategy::CloudOnly)?;

    let edge_cost = network_cost(&topo, &edge_pl, &stages)?;
    let cloud_cost = network_cost(&topo, &cloud_pl, &stages)?;
    println!("\nnetwork cost (train 0):");
    println!(
        "  edge-first : {:>12.2} KB total, {:>12.2} KB over the cellular uplink",
        edge_cost.total_bytes as f64 / 1e3,
        edge_cost.cloud_uplink_bytes as f64 / 1e3
    );
    println!(
        "  cloud-only : {:>12.2} KB total, {:>12.2} KB over the cellular uplink",
        cloud_cost.total_bytes as f64 / 1e3,
        cloud_cost.cloud_uplink_bytes as f64 / 1e3
    );
    println!(
        "  uplink reduction from edge processing: {:.1}x",
        cloud_cost.cloud_uplink_bytes as f64 / edge_cost.cloud_uplink_bytes.max(1) as f64
    );

    // Node churn: the onboard edge box dies; re-place incrementally.
    let edge_node = topo
        .first_ancestor_of_kind(sensors[0], NodeKind::Edge)
        .expect("edge exists");
    let cloud = topo.cloud().expect("cloud exists");
    println!("\nfailing {} ...", topo.node(edge_node).name);
    topo.fail_node(edge_node);
    let (replaced, migrated) = replace_after_failure(&topo, &edge_pl, edge_node, cloud);
    println!(
        "  incremental re-placement migrated {migrated} stage(s); new stages: {:?}",
        replaced
            .stages
            .iter()
            .map(|n| topo.node(*n).name.clone())
            .collect::<Vec<_>>()
    );
    let degraded = network_cost(&topo, &replaced, &stages)?;
    println!(
        "  degraded uplink usage: {:.2} KB (was {:.2} KB)",
        degraded.cloud_uplink_bytes as f64 / 1e3,
        edge_cost.cloud_uplink_bytes as f64 / 1e3
    );
    Ok(())
}
