//! Trajectory analytics: the MEOS side of the system used directly and
//! through the streaming trajectory-builder operator — assembling
//! per-train trajectories from the live stream, then running the
//! temporal-point toolbox on them (length, speed, stbox restriction,
//! simplification, WKT output). This exercises the paper's future-work
//! direction of trajectory-based (rather than point-based) functions.
//!
//! ```text
//! cargo run --release --example trajectory_analytics
//! ```

use meos::boxes::STBox;
use meos::geo::Metric;
use meos::tpoint;
use nebula::prelude::*;
use nebulameos::{as_tpoint, TrajectoryBuilderFactory};
use sncb::FleetConfig;
use std::sync::Arc;

fn main() -> nebula::Result<()> {
    let (mut env, events) = sncb::demo_environment(FleetConfig::test_minutes(30));
    println!("streaming {events} fixes through the trajectory builder...");

    // Assemble one MEOS sequence per train from the raw stream.
    let query = Query::from("fleet").apply(Arc::new(TrajectoryBuilderFactory {
        max_instants: 100_000, // one sequence per train for the demo
        ..TrajectoryBuilderFactory::standard()
    }));
    let (mut sink, results) = CollectingSink::new();
    env.run(&query, &mut sink)?;

    // Restrict everything to greater Brussels.
    let brussels = STBox::from_coords(4.25, 4.45, 50.79, 50.92, None).expect("valid box");

    // Raw GPS fixes carry ~5 m noise, which inflates instantaneous
    // speeds computed between 1 s fixes; Douglas–Peucker smoothing is
    // the MEOS recipe for denoising before analytics.
    println!(
        "\n{:<8} {:>8} {:>9} {:>14} {:>17} {:>12} {:>11}",
        "train", "fixes", "km", "raw max km/h", "smooth max km/h", "km in BXL", "simplified"
    );
    for rec in results.records() {
        let train = rec.get(0).and_then(Value::as_int).unwrap_or(-1);
        let tp = as_tpoint(rec.get(2).expect("trajectory column"))?;
        let length_km = tpoint::temporal_length(tp, Metric::Haversine) / 1000.0;

        let max_speed = |seqs: &[meos::temporal::TSequence<meos::geo::Point>]| {
            seqs.iter()
                .filter_map(|s| tpoint::speed(s, Metric::Haversine))
                .map(|sp| sp.max_value())
                .fold(0.0f64, f64::max)
                * 3.6
        };
        let raw_max = max_speed(&tp.to_sequences());

        // Douglas–Peucker at 25 m tolerance removes the GPS jitter.
        let smoothed: Vec<_> = tp
            .to_sequences()
            .iter()
            .map(|s| tpoint::simplify_dp(s, 25.0, Metric::Haversine))
            .collect();
        let smooth_max = max_speed(&smoothed);
        let simplified: usize = smoothed.iter().map(|s| s.num_instants()).sum();

        // tpoint_at_stbox: the part of the trip inside Brussels.
        let in_bxl = tpoint::temporal_at_stbox(tp, &brussels)
            .map(|t| tpoint::temporal_length(&t, Metric::Haversine) / 1000.0)
            .unwrap_or(0.0);

        println!(
            "{:<8} {:>8} {:>9.1} {:>14.0} {:>17.0} {:>12.1} {:>11}",
            train,
            tp.num_instants(),
            length_km,
            raw_max,
            smooth_max,
            in_bxl,
            simplified,
        );

        if train == 0 {
            // Show the MobilityDB-style literal for a small slice.
            if let Some(first_seq) = tp.to_sequences().first() {
                let head = first_seq
                    .at_period(
                        &meos::time::Period::inclusive(
                            first_seq.start_timestamp(),
                            first_seq.start_timestamp() + meos::time::TimeDelta::from_secs(3),
                        )
                        .unwrap(),
                    )
                    .unwrap();
                println!("\ntrain 0, first seconds as a MEOS literal:\n  {head}\n");
            }
        }
    }
    Ok(())
}
