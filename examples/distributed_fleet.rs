//! Distributed fleet analytics: the cluster runtime executing a placed
//! plan across the sensors → edge → cloud topology — for real, not just
//! scored analytically (contrast with `edge_placement`, which only
//! estimates network cost).
//!
//! Six trains each host their own slice of the fleet stream on their
//! onboard sensors. A per-train window profile is placed edge-first:
//! each train's edge box pre-aggregates its windows and only the merged
//! partials cross the cellular uplink. The run reports measured
//! per-link traffic and the uplink reduction versus shipping everything
//! to the cloud — then a second run kills an edge box mid-stream and
//! re-plans, with results provably unchanged.
//!
//! ```text
//! cargo run --release --example distributed_fleet
//! ```

use nebula::prelude::*;
use sncb::FleetConfig;

fn fleet_query() -> Query {
    // Count / sum / min / max are splittable: each edge aggregates its
    // local records, the cloud merges per-(train, window) partials.
    Query::from("fleet").window(
        vec![("train", col("train_id"))],
        WindowSpec::Tumbling {
            size: 60 * MICROS_PER_SEC,
        },
        vec![
            WindowAgg::new("n", AggSpec::Count),
            WindowAgg::new("max_kmh", AggSpec::Max(col("speed_kmh"))),
            WindowAgg::new("min_battery", AggSpec::Min(col("battery_v"))),
            WindowAgg::new("pax_ticks", AggSpec::Sum(col("passengers"))),
        ],
    )
}

const NUM_TRAINS: usize = 6;

fn fleet_env(records: &[Record]) -> (ClusterEnvironment, Vec<NodeId>) {
    let (topo, sensors) = Topology::train_fleet(NUM_TRAINS);
    let mut env = ClusterEnvironment::with_config(
        topo,
        ClusterConfig {
            buffer_size: 256,
            watermark_every: 2,
            ..ClusterConfig::default()
        },
    );
    let train_col = sncb::fleet_schema().index_of("train_id").expect("train_id");
    for (t, sensor) in sensors.iter().enumerate() {
        let slice: Vec<Record> = records
            .iter()
            .filter(|r| r.get(train_col).unwrap().as_int().unwrap() as usize == t)
            .cloned()
            .collect();
        env.add_source(
            "fleet",
            *sensor,
            Box::new(VecSource::new(sncb::fleet_schema(), slice)),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
    }
    (env, sensors)
}

fn print_links(topo: &Topology, metrics: &ClusterMetrics) {
    println!(
        "  {:<28} {:>9} {:>9} {:>12} {:>7} {:>12}",
        "link", "frames", "records", "bytes", "queue", "transfer ms"
    );
    for (i, link) in topo.links().iter().enumerate() {
        let m = &metrics.links[i];
        if m.frames == 0 {
            continue;
        }
        println!(
            "  {:<28} {:>9} {:>9} {:>12} {:>7} {:>12.1}",
            format!(
                "{} -> {}",
                topo.node(link.from).name,
                topo.node(link.to).name
            ),
            m.frames,
            m.records,
            m.bytes,
            m.max_queue_depth,
            m.simulated_transfer_ms
        );
    }
}

fn main() -> nebula::Result<()> {
    let records = sncb::generate(FleetConfig::test_minutes(30));
    println!(
        "fleet workload: {} records over 30 simulated minutes, {NUM_TRAINS} trains\n",
        records.len()
    );
    let query = fleet_query();

    // Edge-first: pre-aggregated partials cross the uplink.
    let (mut env, _) = fleet_env(&records);
    let (mut sink, edge_results) = CollectingSink::new();
    let edge = env.run_placed(&query, PlacementStrategy::EdgeFirst, &mut sink)?;
    println!(
        "edge-first   : {} windows from {} records (pre-aggregated: {}, sites: {})",
        edge.metrics.records_out,
        edge.metrics.records_in,
        edge.cluster.preaggregated,
        edge.cluster.sites
    );
    print_links(env.topology(), &edge.cluster);

    // Cloud-only: every raw record crosses the uplink.
    let (mut env, _) = fleet_env(&records);
    let (mut sink, cloud_results) = CollectingSink::new();
    let cloud = env.run_placed(&query, PlacementStrategy::CloudOnly, &mut sink)?;
    println!(
        "\ncloud-only   : {} windows from {} records",
        cloud.metrics.records_out, cloud.metrics.records_in
    );
    print_links(env.topology(), &cloud.cluster);

    assert_eq!(
        edge_results.records(),
        cloud_results.records(),
        "placement must not change results"
    );
    println!(
        "\nmeasured uplink: edge-first {} B vs cloud-only {} B -> {:.1}x reduction",
        edge.cluster.uplink_bytes,
        cloud.cluster.uplink_bytes,
        cloud.cluster.uplink_bytes as f64 / edge.cluster.uplink_bytes.max(1) as f64
    );

    // Failure drill: one train's stream, its edge box dies mid-run.
    println!("\nfailure drill: killing train-0's edge box after 10 batches...");
    let (topo, sensors) = Topology::train_fleet(1);
    let edge_box = topo
        .first_ancestor_of_kind(sensors[0], NodeKind::Edge)
        .expect("edge exists");
    let mut env = ClusterEnvironment::with_config(
        topo,
        ClusterConfig {
            // Small batches so the failure lands mid-stream.
            buffer_size: 64,
            watermark_every: 2,
            ..ClusterConfig::default()
        },
    );
    let train0: Vec<Record> = {
        let train_col = sncb::fleet_schema().index_of("train_id").unwrap();
        records
            .iter()
            .filter(|r| r.get(train_col).unwrap().as_int().unwrap() == 0)
            .cloned()
            .collect()
    };
    env.add_source(
        "fleet",
        sensors[0],
        Box::new(VecSource::new(sncb::fleet_schema(), train0.clone())),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    let (mut sink, failed_results) = CollectingSink::new();
    let report = env.run_placed_with_failure(
        &query,
        PlacementStrategy::EdgeFirst,
        FailureInjection {
            node: edge_box,
            after_batches: 10,
        },
        &mut sink,
    )?;
    println!(
        "  re-planned {} round(s), migrated {} stage(s); {} windows delivered",
        report.cluster.replans, report.cluster.migrated_stages, report.metrics.records_out
    );

    // Reference: the same stream without the failure.
    let mut ref_env = StreamEnvironment::with_config(EnvConfig {
        buffer_size: 64,
        watermark_every: 2,
        ..EnvConfig::default()
    });
    ref_env.add_source(
        "fleet",
        Box::new(VecSource::new(sncb::fleet_schema(), train0)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    let (mut ref_sink, reference) = CollectingSink::new();
    ref_env.run(&query, &mut ref_sink)?;
    let mut a = failed_results.records();
    let mut b = reference.records();
    normalize_records(&mut a);
    normalize_records(&mut b);
    assert_eq!(a, b, "failure re-planning must not change results");
    println!("  results identical to an undisturbed run — state migrated losslessly");

    // Chaos drill: the hostile version of the same failover. Seeded
    // faults mangle every link — drops, duplicates, reordering, bit
    // corruption — and the edge box dies abruptly mid-batch, with no
    // cooperative handoff. CRC envelopes, ack/retransmit, barrier
    // checkpoints and source replay must make all of it invisible.
    println!("\nchaos drill: lossy links + abrupt edge kill after 4 batches (seed 41)...");
    let (mut env, _) = fleet_env(&records);
    let edge_box = env
        .topology()
        .nodes()
        .iter()
        .find(|n| n.kind == NodeKind::Edge)
        .map(|n| n.id)
        .expect("edge exists");
    let plan = FaultPlan::seeded(41)
        .drop_frames(0.05)
        .duplicate_frames(0.02)
        .reorder_frames(0.02)
        .corrupt_frames(0.02)
        .crash_node(edge_box, 4);
    let (mut sink, chaos_results) = CollectingSink::new();
    let chaos = env.run_placed_chaos(&query, PlacementStrategy::EdgeFirst, &plan, &mut sink)?;
    let m = &chaos.cluster;
    println!(
        "  {} faults injected: {} retransmits, {} corrupt dropped, {} duplicates suppressed",
        m.faults_injected, m.retransmits, m.corrupt_dropped, m.duplicates_suppressed
    );
    println!(
        "  {} checkpoints; crash recovered in {:.2} ms ({} re-plan)",
        m.checkpoints_taken, m.recovery_ms, m.replans
    );
    let mut c = chaos_results.records();
    normalize_records(&mut c);
    let mut clean = edge_results.records();
    normalize_records(&mut clean);
    assert_eq!(c, clean, "chaos must not change results");
    println!("  results identical to the clean run — exactly-once under chaos");
    Ok(())
}
