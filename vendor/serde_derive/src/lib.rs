//! Vendored stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; no code
//! path consumes the generated impls (JSON output goes through the
//! `serde_json` stand-in's concrete `Value` type instead). The derives
//! therefore expand to nothing: `vendor/serde` provides blanket impls of
//! the marker traits, so `T: Serialize` bounds would still be satisfied
//! if one ever appeared.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
