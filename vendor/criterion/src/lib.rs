//! Vendored stand-in for `criterion`: the same bench-authoring API
//! (`Criterion`, benchmark groups, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) over a simple wall-clock measurement loop.
//! No statistical analysis, HTML reports, or baselines — each benchmark
//! prints mean time per iteration and derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Forces the compiler to treat `value` as used (best-effort opaque).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units the measured routine processes per iteration, used to derive
/// throughput from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (events, records) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named benchmark identifier (`criterion::BenchmarkId` subset).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmarked input parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        bencher.report(&id.to_string(), self.throughput);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new();
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        bencher.report(&id.to_string(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    batch: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            batch: 0,
        }
    }

    /// Times repeated calls of `routine`, amortizing timer overhead for
    /// cheap routines by running a calibrated batch between timestamps.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.batch == 0 {
            // Calibrate: size the batch so one timed span covers ~1 ms,
            // keeping Instant::now() overhead negligible even for
            // nanosecond-scale routines.
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed();
            self.total += once;
            self.iters += 1;
            let once_ns = once.as_nanos().max(1);
            self.batch = (1_000_000 / once_ns).clamp(1, 1_000_000) as u64;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.batch;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("  {id}: no iterations");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Kelem/s", n as f64 / per_iter / 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("  {id}: {:.3} ms/iter{rate}", per_iter * 1e3);
    }
}

/// Declares a function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
