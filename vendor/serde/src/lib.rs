//! Vendored stand-in for `serde`: marker traits only.
//!
//! Blanket impls make every type `Serialize`/`Deserialize`, matching the
//! workspace's usage where the derives are declared but the impls are
//! never invoked (JSON goes through the `serde_json` stand-in's concrete
//! `Value` type).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
