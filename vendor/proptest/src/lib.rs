//! Vendored stand-in for `proptest`: a deterministic random-testing
//! harness exposing the subset of the real crate's API this workspace
//! uses — `Strategy` with `prop_map` / `prop_filter` / `prop_filter_map`,
//! range and tuple strategies, `collection::vec`, `bool::ANY`, the
//! `proptest!` test macro with optional `#![proptest_config(..)]`, and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the inputs that failed, unminimized) and a fixed deterministic seed
//! per test function, so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's name, so each test sees a
    /// stable but distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A generator of values of an output type (`proptest::strategy::Strategy`
/// subset). `sample` returns `None` when a filter rejected the draw; the
/// harness retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one candidate, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `pred`; `whence` labels the filter in
    /// diagnostics (unused here).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Simultaneous filter and map: `None` results are rejected.
    fn prop_filter_map<U, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// A strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

/// Boolean strategies (`proptest::bool` subset).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi - self.size.lo;
            let n = self.size.lo + (rng.next_u64() as usize) % span;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                // Bounded per-element retries keep pathological filters
                // from hanging the whole vector draw.
                let mut attempts = 0;
                let v = loop {
                    if let Some(v) = self.element.sample(rng) {
                        break v;
                    }
                    attempts += 1;
                    if attempts > 1000 {
                        return None;
                    }
                };
                out.push(v);
            }
            Some(out)
        }
    }
}

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn run_cases<S, F>(name: &str, cases: u32, strategies: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    let mut rng = TestRng::for_test(name);
    for case in 0..cases {
        let mut rejects: u64 = 0;
        let input = loop {
            if let Some(v) = strategies.sample(&mut rng) {
                break v;
            }
            rejects += 1;
            assert!(
                rejects < 100_000,
                "{name}: strategy rejected {rejects} draws in a row; filter too strict"
            );
        };
        if let Err(msg) = test(input) {
            panic!("{name}: case {case}/{cases} failed:\n{msg}");
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0i64..10, b in 0i64..10) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    config.cases,
                    ( $($strat,)+ ),
                    |( $($arg,)+ )| { $body Ok(()) },
                );
            }
        )*
    };
}

/// In a `proptest!` body: fails the case with a message unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// In a `proptest!` body: fails the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// In a `proptest!` body: fails the case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in -100i64..100, b in -100i64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn filter_map_and_vec(
            xs in crate::collection::vec((0.0f64..10.0).prop_filter_map("pos", |x| {
                if x > 0.5 { Some(x) } else { None }
            }), 1..20),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(xs.iter().all(|x| *x > 0.5));
            let complement = !flag;
            prop_assert_ne!(flag, complement);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
