//! Vendored stand-in for `rand` 0.8: `StdRng`, `SeedableRng::seed_from_u64`
//! and the `Rng` extension methods (`gen`, `gen_range`, `gen_bool`) the
//! simulator uses.
//!
//! The generator is SplitMix64 — statistically fine for simulation noise
//! and fully deterministic under a seed, which is the property the
//! workspace's tests rely on. The *stream* differs from the real crate's
//! ChaCha12-based `StdRng`, so any test pinning exact simulated values is
//! pinned against this implementation.

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// A deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A sample from the "standard" distribution of `T` (for `f64`:
    /// uniform in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood; public-domain reference).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&x));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }
}
