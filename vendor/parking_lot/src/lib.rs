//! Vendored stand-in for `parking_lot`: a `Mutex` whose `lock()` returns
//! the guard directly (no poisoning), backed by `std::sync::Mutex`.

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock
    /// (panicked holder) is recovered rather than propagated, matching
    /// `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}
