//! Vendored stand-in for `crossbeam`: only the `channel::bounded`
//! constructor the runtime uses, backed by `std::sync::mpsc::sync_channel`.
//! The workspace uses it single-consumer — single-producer between
//! pipeline stages, multi-producer (cloned senders) into the cluster
//! runtime's cloud inbox — both shapes `sync_channel` supports
//! faithfully, including per-sender FIFO ordering.

/// Bounded blocking channels (`crossbeam::channel` API subset).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// The receiver hung up; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders hung up.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The channel is empty and all senders hung up.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Enqueues without blocking, or reports why it could not.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is
        /// empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking, or reports why it could not.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}
