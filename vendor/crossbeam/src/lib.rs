//! Vendored stand-in for `crossbeam`: only the `channel::bounded`
//! constructor the runtime uses, backed by `std::sync::mpsc::sync_channel`.
//! The workspace uses it single-consumer — single-producer between
//! pipeline stages, multi-producer (cloned senders) into the cluster
//! runtime's cloud inbox — both shapes `sync_channel` supports
//! faithfully, including per-sender FIFO ordering.

/// Bounded blocking channels (`crossbeam::channel` API subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is
        /// empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}
