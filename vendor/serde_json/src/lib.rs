//! Vendored stand-in for `serde_json`: a concrete JSON document model
//! (`Value`, `Map`), the `json!` construction macro, and a pretty
//! printer. There is no `Serialize`-driven generic serialization — the
//! workspace only ever builds documents out of `Value`s.

use std::collections::BTreeMap;
use std::fmt;

/// Serialization error. The stand-in serializer is infallible, but the
/// type exists so `?` call sites and `From<Error> for io::Error` keep
/// their real-crate shape.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// A JSON object: string keys to values, ordered by key.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: an exact integer or a double. Unsigned values that fit
/// `i64` normalize to `Int`, so `UInt` only ever holds values above
/// `i64::MAX` — mirroring the real crate, where a `u64` keeps its exact
/// value instead of wrapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer, kept exact.
    Int(i64),
    /// An unsigned integer above `i64::MAX`, kept exact.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The element array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` on anything else or a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::Int(v as i64)) }
        }
    )*};
}

from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                match i64::try_from(v) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(v as u64)),
                }
            }
        }
    )*};
}

from_uint!(u64, usize);

macro_rules! from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::Float(v as f64)) }
        }
    )*};
}

from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

// Literal comparisons (`value["k"] == 3`, `== "text"`, `== 4.35`).
// Like the real crate, numbers compare by numeric value across the
// int/float representations (`json!(4) == 4.0` holds).
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        // Integer literals compare exactly (real-crate semantics): a
        // float-built value never equals an integer literal.
        matches!(self, Value::Number(Number::Int(i)) if i == other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        *self == *other as i64
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i) == Ok(*other),
            Value::Number(Number::UInt(u)) => u == other,
            _ => false,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        match self {
            Value::Number(n) => n.as_f64() == *other,
            _ => false,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Float(f) if f.is_finite() => {
            if f == f.trunc() && f.abs() < 1e15 {
                out.push_str(&format!("{:.1}", f));
            } else {
                out.push_str(&f.to_string());
            }
        }
        // JSON has no NaN/Inf; the real crate errors, we emit null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) if a.is_empty() => out.push_str("[]"),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if m.is_empty() => out.push_str("{}"),
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, 0, false);
        f.write_str(&s)
    }
}

/// Compact one-line rendering.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Two-space-indented rendering.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, value, 0, true);
    Ok(s)
}

/// Builds a [`Value`] from JSON-looking syntax, interpolating Rust
/// expressions anywhere a value is expected.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::Value::Array($crate::json_array!([] $($elems)*)) };
    ({ $($members:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_object!(object () $($members)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from(&$other) };
}

/// Internal: accumulates array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done.
    ([ $($done:expr,)* ]) => { <[_]>::into_vec(::std::boxed::Box::new([ $($done,)* ])) };
    // Next element is an object or array or null literal.
    ([ $($done:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Next element is a plain expression.
    ([ $($done:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::Value::from(&$next), ] $($($rest)*)?)
    };
}

/// Internal: accumulates object members. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Done.
    ($object:ident ()) => {};
    // Collected a full key: delegate value parsing.
    ($object:ident ($($key:tt)+) : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $object.insert(($($key)+).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object!($object () $($($rest)*)?);
    };
    ($object:ident ($($key:tt)+) : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $object.insert(($($key)+).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object!($object () $($($rest)*)?);
    };
    ($object:ident ($($key:tt)+) : null $(, $($rest:tt)*)?) => {
        $object.insert(($($key)+).to_string(), $crate::Value::Null);
        $crate::json_object!($object () $($($rest)*)?);
    };
    ($object:ident ($($key:tt)+) : $value:expr , $($rest:tt)*) => {
        $object.insert(($($key)+).to_string(), $crate::Value::from(&$value));
        $crate::json_object!($object () $($rest)*);
    };
    ($object:ident ($($key:tt)+) : $value:expr) => {
        $object.insert(($($key)+).to_string(), $crate::Value::from(&$value));
    };
    // Munch key tokens until the colon.
    ($object:ident ($($key:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object!($object ($($key)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let name = "q1";
        let v = json!({
            "query": name,
            "rows": [1, 2, 3],
            "nested": { "ok": true, "pi": 3.5 },
            "nothing": null,
        });
        assert_eq!(v["query"], "q1");
        assert_eq!(v["rows"][2], 3);
        assert_eq!(v["nested"]["pi"], 3.5);
        assert_eq!(v["nothing"], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn interpolates_expressions_and_refs() {
        let x = 4.35f64;
        let v = json!([x, 2.0 * x]);
        assert_eq!(v[0], 4.35);
        let r = &x;
        assert_eq!(json!(r), json!(4.35));
    }

    #[test]
    fn pretty_prints_round_values_like_floats() {
        let s = to_string_pretty(&json!({ "a": 4.0, "b": 4 })).unwrap();
        assert!(s.contains("\"a\": 4.0"));
        assert!(s.contains("\"b\": 4"));
    }

    #[test]
    fn u64_above_i64_max_kept_exact() {
        let v = json!(u64::MAX);
        assert_eq!(to_string(&v).unwrap(), "18446744073709551615");
        assert_eq!(json!(5u64), json!(5i64), "small u64 normalizes to Int");
    }

    #[test]
    fn numeric_literal_eq_coerces_across_int_and_float() {
        assert_eq!(json!(4), 4.0, "float literal coerces");
        assert!(json!(4.0) != 4, "integer literal compares exactly");
        assert_eq!(json!(u64::MAX), u64::MAX);
        assert!(
            json!(i64::MAX - 1) != i64::MAX,
            "no f64 rounding collisions"
        );
        assert!(json!("4") != 4.0);
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&json!("a\"b\n")).unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }
}
