//! Umbrella crate for the NebulaMEOS reproduction workspace.
//!
//! Re-exports the four library crates so the runnable examples and the
//! cross-crate integration tests can address the whole system through a
//! single dependency:
//!
//! - [`meos`] — the spatiotemporal type system (MEOS reimplementation),
//! - [`nebula`] — the IoT stream-processing engine (NebulaStream analogue),
//! - [`nebulameos`] — the integration layer and the paper's eight queries,
//! - [`sncb`] — the deterministic SNCB train-fleet simulator.

pub use meos;
pub use nebula;
pub use nebulameos;
pub use sncb;
