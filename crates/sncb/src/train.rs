//! Train kinematics: acceleration/braking physics along a route, station
//! dwells, passenger exchange, and injected anomalies (unscheduled stops,
//! emergency brakes) that give the demo queries something to detect.

use crate::network::{RailNetwork, Route, ZoneKind};
use meos::geo::Point;
use meos::time::{TimeDelta, TimestampTz};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Static train parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Fleet-unique id.
    pub id: u32,
    /// Route index into the network.
    pub route: usize,
    /// Service acceleration (m/s²).
    pub accel_ms2: f64,
    /// Service braking (m/s²).
    pub brake_ms2: f64,
    /// Emergency braking (m/s²).
    pub emergency_ms2: f64,
    /// Station dwell (s).
    pub dwell_s: f64,
    /// Seat capacity.
    pub capacity: u32,
}

impl TrainConfig {
    /// Standard IC rolling stock on the given route.
    pub fn standard(id: u32, route: usize) -> Self {
        TrainConfig {
            id,
            route,
            accel_ms2: 0.5,
            brake_ms2: 0.8,
            emergency_ms2: 2.5,
            dwell_s: 60.0,
            capacity: 600,
        }
    }
}

/// Scheduled anomalies for one train.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(when, how long)` mid-route holds outside stations (Q7 targets).
    pub unscheduled_stops: Vec<(TimestampTz, TimeDelta)>,
    /// Emergency-brake applications (Q8 targets).
    pub emergency_brakes: Vec<TimestampTz>,
    /// Battery degradation begins here (Q5 target).
    pub battery_fault_after: Option<TimestampTz>,
    /// Brake-pressure leak begins here (Q8 target).
    pub brake_leak_after: Option<TimestampTz>,
}

/// The observable train state after one simulation step.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Simulation time.
    pub t: TimestampTz,
    /// Position (lon/lat).
    pub pos: Point,
    /// Heading (degrees from north).
    pub heading: f64,
    /// Speed (m/s).
    pub speed_ms: f64,
    /// Total distance travelled (m).
    pub odometer_m: f64,
    /// Station index (network-wide) when dwelling at one.
    pub at_station: Option<usize>,
    /// Doors open (dwelling).
    pub doors_open: bool,
    /// Passengers on board.
    pub passengers: u32,
    /// An emergency brake is currently applied.
    pub emergency_braking: bool,
    /// The train is holding outside a station (unscheduled stop).
    pub unscheduled_hold: bool,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Dwelling at scheduled stop `stop_i` (index into the route's
    /// station list).
    Dwell { remaining_s: f64, stop_i: usize },
    /// Braking toward a mid-route hold.
    BrakeToHold { hold_s: f64, emergency: bool },
    /// Holding still mid-route.
    Hold { remaining_s: f64, emergency: bool },
    /// Normal running toward the next scheduled stop.
    Run,
}

/// A deterministic kinematic simulation of one train.
pub struct TrainSim {
    cfg: TrainConfig,
    net: Arc<RailNetwork>,
    faults: FaultPlan,
    rng: StdRng,
    now: TimestampTz,
    /// Metres along the route.
    m: f64,
    /// +1 outbound, −1 return.
    dir: f64,
    speed_ms: f64,
    odometer_m: f64,
    /// Next scheduled stop (index into the route's station list).
    next_stop: usize,
    passengers: f64,
    phase: Phase,
    next_unscheduled: usize,
    next_emergency: usize,
}

impl TrainSim {
    /// Starts the train dwelling at its first station at `start`.
    pub fn new(
        net: Arc<RailNetwork>,
        cfg: TrainConfig,
        faults: FaultPlan,
        start: TimestampTz,
        seed: u64,
    ) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ (cfg.id as u64) << 32);
        let dwell = cfg.dwell_s;
        TrainSim {
            cfg,
            net,
            faults,
            rng,
            now: start,
            m: 0.0,
            dir: 1.0,
            speed_ms: 0.0,
            odometer_m: 0.0,
            next_stop: 0,
            passengers: 0.0,
            phase: Phase::Dwell {
                remaining_s: dwell,
                stop_i: 0,
            },
            next_unscheduled: 0,
            next_emergency: 0,
        }
    }

    /// The train's route.
    pub fn route(&self) -> &Route {
        &self.net.routes[self.cfg.route]
    }

    /// The fault plan (read access for dataset bookkeeping).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current simulation time.
    pub fn now(&self) -> TimestampTz {
        self.now
    }

    fn stop_m(&self, stop_i: usize) -> f64 {
        self.net.routes[self.cfg.route].station_m(stop_i)
    }

    fn n_stops(&self) -> usize {
        self.net.routes[self.cfg.route].stations.len()
    }

    /// Passenger exchange at stop `stop_i` (direction-aware position in
    /// the journey: terminals unload everyone).
    fn exchange_passengers(&mut self, stop_i: usize) {
        let terminal =
            (self.dir > 0.0 && stop_i + 1 == self.n_stops()) || (self.dir < 0.0 && stop_i == 0);
        if terminal {
            self.passengers = 0.0;
            return;
        }
        // Peak factor from the time of day.
        let hour = (self.now.micros() / 3_600_000_000).rem_euclid(24);
        let peak = if (7..=9).contains(&hour) || (16..=19).contains(&hour) {
            2.2
        } else {
            1.0
        };
        let alight_frac: f64 = self.rng.gen_range(0.1..0.5);
        self.passengers *= 1.0 - alight_frac;
        let board: f64 = self.rng.gen_range(20.0..140.0) * peak;
        self.passengers = (self.passengers + board).min(self.cfg.capacity as f64 * 1.15);
    }

    fn advance_next_stop(&mut self, arrived: usize) {
        if self.dir > 0.0 {
            if arrived + 1 < self.n_stops() {
                self.next_stop = arrived + 1;
            } else {
                self.dir = -1.0;
                self.next_stop = arrived - 1;
            }
        } else if arrived > 0 {
            self.next_stop = arrived - 1;
        } else {
            self.dir = 1.0;
            self.next_stop = 1;
        }
    }

    /// Advances the simulation by `dt` and returns the resulting state.
    pub fn step(&mut self, dt: TimeDelta) -> TrainState {
        let dt_s = dt.as_secs_f64();
        self.now += dt;

        // Fault triggers only fire while running.
        if matches!(self.phase, Phase::Run) {
            if let Some(&t) = self.faults.emergency_brakes.get(self.next_emergency) {
                if self.now >= t {
                    self.next_emergency += 1;
                    self.phase = Phase::BrakeToHold {
                        hold_s: 45.0,
                        emergency: true,
                    };
                }
            }
            if matches!(self.phase, Phase::Run) {
                if let Some(&(t, d)) = self.faults.unscheduled_stops.get(self.next_unscheduled) {
                    if self.now >= t {
                        self.next_unscheduled += 1;
                        self.phase = Phase::BrakeToHold {
                            hold_s: d.as_secs_f64(),
                            emergency: false,
                        };
                    }
                }
            }
        }

        let mut emergency_braking = false;
        let mut unscheduled_hold = false;
        let mut at_station: Option<usize> = None;
        let mut doors_open = false;

        match &mut self.phase {
            Phase::Dwell {
                remaining_s,
                stop_i,
            } => {
                self.speed_ms = 0.0;
                doors_open = true;
                let route_station = self.net.routes[self.cfg.route].stations[*stop_i];
                at_station = Some(route_station);
                *remaining_s -= dt_s;
                if *remaining_s <= 0.0 {
                    let arrived = *stop_i;
                    self.phase = Phase::Run;
                    self.advance_next_stop(arrived);
                }
            }
            Phase::BrakeToHold { hold_s, emergency } => {
                let rate = if *emergency {
                    self.cfg.emergency_ms2
                } else {
                    self.cfg.brake_ms2
                };
                emergency_braking = *emergency;
                self.speed_ms = (self.speed_ms - rate * dt_s).max(0.0);
                self.m += self.dir * self.speed_ms * dt_s;
                self.odometer_m += self.speed_ms * dt_s;
                if self.speed_ms == 0.0 {
                    self.phase = Phase::Hold {
                        remaining_s: *hold_s,
                        emergency: *emergency,
                    };
                }
            }
            Phase::Hold {
                remaining_s,
                emergency,
            } => {
                self.speed_ms = 0.0;
                unscheduled_hold = !*emergency;
                emergency_braking = *emergency;
                *remaining_s -= dt_s;
                if *remaining_s <= 0.0 {
                    self.phase = Phase::Run;
                }
            }
            Phase::Run => {
                let route = &self.net.routes[self.cfg.route];
                let (pos, _) = route.position_at(self.m);
                let limit_ms = self.net.speed_limit_at(&pos, route.line_limit_kmh) / 3.6;
                let target_m = self.stop_m(self.next_stop);
                let dist = (target_m - self.m) * self.dir;
                let braking_dist = self.speed_ms * self.speed_ms / (2.0 * self.cfg.brake_ms2);
                if dist <= braking_dist + self.speed_ms * dt_s {
                    self.speed_ms = (self.speed_ms - self.cfg.brake_ms2 * dt_s).max(0.0);
                } else if self.speed_ms < limit_ms {
                    self.speed_ms = (self.speed_ms + self.cfg.accel_ms2 * dt_s).min(limit_ms);
                } else {
                    self.speed_ms = (self.speed_ms - self.cfg.brake_ms2 * dt_s).max(limit_ms);
                }
                let step_m = self.speed_ms * dt_s;
                self.m += self.dir * step_m;
                self.odometer_m += step_m;
                // Arrival: close enough and essentially stopped.
                if dist <= f64::max(2.0, step_m) && self.speed_ms < 1.0 {
                    self.m = target_m;
                    self.speed_ms = 0.0;
                    let arrived = self.next_stop;
                    self.exchange_passengers(arrived);
                    self.phase = Phase::Dwell {
                        remaining_s: self.cfg.dwell_s,
                        stop_i: arrived,
                    };
                }
            }
        }

        let route = &self.net.routes[self.cfg.route];
        let (pos, heading) = route.position_at(self.m);
        TrainState {
            t: self.now,
            pos,
            heading,
            speed_ms: self.speed_ms,
            odometer_m: self.odometer_m,
            at_station,
            doors_open,
            passengers: self.passengers.round() as u32,
            emergency_braking,
            unscheduled_hold,
        }
    }
}

/// Builds the demo fault plans: train 1 gets a degrading battery, train 2
/// repeated emergency brakes in one hour, train 3 unscheduled stops, the
/// rest run clean. Deterministic given `start`.
pub fn demo_fault_plans(start: TimestampTz, num_trains: usize) -> Vec<FaultPlan> {
    (0..num_trains)
        .map(|i| match i {
            1 => FaultPlan {
                battery_fault_after: Some(start + TimeDelta::from_minutes(30)),
                ..FaultPlan::default()
            },
            2 => FaultPlan {
                emergency_brakes: vec![
                    start + TimeDelta::from_minutes(22),
                    start + TimeDelta::from_minutes(31),
                    start + TimeDelta::from_minutes(38),
                ],
                brake_leak_after: Some(start + TimeDelta::from_minutes(45)),
                ..FaultPlan::default()
            },
            3 => FaultPlan {
                unscheduled_stops: vec![
                    (
                        start + TimeDelta::from_minutes(25),
                        TimeDelta::from_minutes(6),
                    ),
                    (
                        start + TimeDelta::from_minutes(70),
                        TimeDelta::from_minutes(4),
                    ),
                ],
                ..FaultPlan::default()
            },
            _ => FaultPlan::default(),
        })
        .collect()
}

/// True iff `p` lies in a station area or workshop — the zones where a
/// stop counts as scheduled (shared by the simulator tests and Q7).
pub fn in_scheduled_stop_zone(net: &RailNetwork, p: &Point) -> bool {
    net.in_zone(p, ZoneKind::StationArea) || net.in_zone(p, ZoneKind::Workshop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Arc<RailNetwork> {
        Arc::new(RailNetwork::belgium())
    }

    fn start() -> TimestampTz {
        TimestampTz::from_ymd_hms(2025, 6, 22, 8, 0, 0).unwrap()
    }

    fn run_sim(sim: &mut TrainSim, secs: i64) -> Vec<TrainState> {
        (0..secs)
            .map(|_| sim.step(TimeDelta::from_secs(1)))
            .collect()
    }

    #[test]
    fn train_departs_and_moves() {
        let mut sim = TrainSim::new(
            net(),
            TrainConfig::standard(0, 0),
            FaultPlan::default(),
            start(),
            1,
        );
        let states = run_sim(&mut sim, 600);
        assert!(states[0].doors_open, "starts dwelling");
        let moving = states.iter().filter(|s| s.speed_ms > 1.0).count();
        assert!(moving > 300, "should be under way most of 10 min");
        let max_speed = states.iter().map(|s| s.speed_ms).fold(0.0, f64::max);
        assert!(max_speed > 20.0, "reaches cruise speed, got {max_speed}");
        assert!(
            max_speed <= 200.0 / 3.6 + 0.5,
            "never exceeds line limit, got {max_speed}"
        );
        assert!(states.last().unwrap().odometer_m > 5_000.0);
    }

    #[test]
    fn train_stops_at_stations() {
        let mut sim = TrainSim::new(
            net(),
            TrainConfig::standard(0, 0),
            FaultPlan::default(),
            start(),
            1,
        );
        // Brussels-Midi -> Central is ~2 km; within 15 min the train must
        // have dwelled at least at one intermediate station.
        let states = run_sim(&mut sim, 900);
        let stations_visited: std::collections::HashSet<usize> =
            states.iter().filter_map(|s| s.at_station).collect();
        assert!(stations_visited.len() >= 2, "visited {stations_visited:?}");
        // While dwelling doors are open and speed is zero.
        for s in &states {
            if s.at_station.is_some() {
                assert!(s.doors_open);
                assert_eq!(s.speed_ms, 0.0);
            }
        }
    }

    #[test]
    fn passengers_board_and_stay_bounded() {
        let mut sim = TrainSim::new(
            net(),
            TrainConfig::standard(0, 0),
            FaultPlan::default(),
            start(),
            3,
        );
        let states = run_sim(&mut sim, 3_600);
        let max_pax = states.iter().map(|s| s.passengers).max().unwrap();
        assert!(max_pax > 0, "someone boarded");
        assert!(max_pax <= (600.0 * 1.15) as u32 + 1);
    }

    #[test]
    fn emergency_brake_fault_fires() {
        let faults = FaultPlan {
            emergency_brakes: vec![start() + TimeDelta::from_minutes(5)],
            ..FaultPlan::default()
        };
        let mut sim = TrainSim::new(net(), TrainConfig::standard(2, 0), faults, start(), 2);
        let states = run_sim(&mut sim, 600);
        let braking: Vec<&TrainState> = states.iter().filter(|s| s.emergency_braking).collect();
        assert!(!braking.is_empty(), "emergency braking observed");
        // It eventually stops completely during the hold.
        assert!(braking.iter().any(|s| s.speed_ms == 0.0));
        // And resumes afterwards.
        let last_brake_idx = states.iter().rposition(|s| s.emergency_braking).unwrap();
        assert!(states[last_brake_idx + 1..]
            .iter()
            .any(|s| s.speed_ms > 5.0));
    }

    #[test]
    fn unscheduled_stop_happens_outside_station() {
        let faults = FaultPlan {
            unscheduled_stops: vec![(
                start() + TimeDelta::from_minutes(6),
                TimeDelta::from_minutes(3),
            )],
            ..FaultPlan::default()
        };
        let network = net();
        let mut sim = TrainSim::new(network, TrainConfig::standard(3, 1), faults, start(), 4);
        let states = run_sim(&mut sim, 900);
        let holds: Vec<&TrainState> = states.iter().filter(|s| s.unscheduled_hold).collect();
        assert!(holds.len() >= 150, "held ~3 min, got {}", holds.len());
        for s in &holds {
            assert_eq!(s.speed_ms, 0.0);
            assert!(s.at_station.is_none());
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let mk = || {
            TrainSim::new(
                net(),
                TrainConfig::standard(0, 2),
                FaultPlan::default(),
                start(),
                9,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..1_000 {
            let (sa, sb) = (
                a.step(TimeDelta::from_secs(1)),
                b.step(TimeDelta::from_secs(1)),
            );
            assert_eq!(sa.pos, sb.pos);
            assert_eq!(sa.passengers, sb.passengers);
        }
    }

    #[test]
    fn ping_pong_at_terminal() {
        // Short route (IC-20 has 4 stops); run long enough to bounce.
        let mut sim = TrainSim::new(
            net(),
            TrainConfig::standard(0, 2),
            FaultPlan::default(),
            start(),
            5,
        );
        let mut odo = Vec::new();
        for _ in 0..4 {
            let states = run_sim(&mut sim, 3_600);
            odo.push(states.last().unwrap().odometer_m);
        }
        assert!(odo.windows(2).all(|w| w[1] > w[0]), "keeps accumulating");
    }

    #[test]
    fn demo_fault_plans_cover_queries() {
        let plans = demo_fault_plans(start(), 6);
        assert_eq!(plans.len(), 6);
        assert!(plans[1].battery_fault_after.is_some());
        assert_eq!(plans[2].emergency_brakes.len(), 3);
        assert!(plans[2].brake_leak_after.is_some());
        assert_eq!(plans[3].unscheduled_stops.len(), 2);
        assert!(plans[0].emergency_brakes.is_empty());
    }
}
