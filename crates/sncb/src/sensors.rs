//! Onboard sensor models: GPS, battery, brake pressure, noise,
//! temperatures. Each model turns the kinematic [`TrainState`] plus
//! weather into the noisy readings the edge device actually sees, with
//! the fault plans driving the anomalies the GCEP queries must detect.

use crate::train::{FaultPlan, TrainState};
use crate::weather::WeatherSample;
use meos::geo::Point;
use meos::time::TimestampTz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One multiplexed sensor reading — the record the edge device emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Event time.
    pub t: TimestampTz,
    /// Train id.
    pub train_id: u32,
    /// GPS fix (repeats the last fix during dropouts).
    pub pos: Point,
    /// Speed (km/h, from the odometry bus — no GPS noise).
    pub speed_kmh: f64,
    /// Battery voltage (V, nominal 72 V system).
    pub battery_v: f64,
    /// Battery temperature (°C).
    pub battery_temp_c: f64,
    /// Main brake-pipe pressure (bar).
    pub brake_bar: f64,
    /// Exterior noise level (dB(A)).
    pub noise_db: f64,
    /// Passenger count estimate.
    pub passengers: u32,
    /// Door state.
    pub doors_open: bool,
    /// Odometer (m).
    pub odometer_m: f64,
    /// Cabin temperature (°C).
    pub cabin_temp_c: f64,
}

/// Stateful sensor models for one train.
pub struct SensorSuite {
    rng: StdRng,
    /// Battery state of charge in [0, 1].
    soc: f64,
    battery_temp_c: f64,
    /// Brake-pipe baseline (declines under the leak fault).
    brake_baseline_bar: f64,
    last_fix: Option<Point>,
    /// GPS dropout probability per reading.
    gps_dropout: f64,
    dropouts: u64,
}

impl SensorSuite {
    /// Builds the suite with a per-train seed.
    pub fn new(seed: u64, gps_dropout: f64) -> Self {
        SensorSuite {
            rng: StdRng::seed_from_u64(seed),
            soc: 0.9,
            battery_temp_c: 18.0,
            brake_baseline_bar: 9.0,
            last_fix: None,
            gps_dropout: gps_dropout.clamp(0.0, 1.0),
            dropouts: 0,
        }
    }

    /// GPS dropouts seen so far.
    pub fn dropouts(&self) -> u64 {
        self.dropouts
    }

    /// Samples every sensor for one tick of `dt_s` seconds.
    pub fn sample(
        &mut self,
        state: &TrainState,
        weather: &WeatherSample,
        faults: &FaultPlan,
        dt_s: f64,
    ) -> SensorReading {
        let speed_kmh = state.speed_ms * 3.6;
        let battery_fault = faults.battery_fault_after.is_some_and(|t| state.t >= t);
        let brake_leak = faults.brake_leak_after.is_some_and(|t| state.t >= t);

        // --- Battery ------------------------------------------------
        // Charged from the line while moving, drained while holding with
        // systems on; the fault accelerates drain and heats the pack.
        let dsoc = if state.speed_ms > 1.0 {
            0.002 * dt_s / 60.0
        } else {
            -0.004 * dt_s / 60.0
        };
        let fault_drain = if battery_fault {
            -0.05 * dt_s / 60.0
        } else {
            0.0
        };
        self.soc = (self.soc + dsoc + fault_drain).clamp(0.02, 1.0);
        // Open-circuit voltage curve for a 72 V pack: steep below 20% SoC.
        let ocv = 63.0 + 16.0 * self.soc
            - if self.soc < 0.2 {
                (0.2 - self.soc) * 30.0
            } else {
                0.0
            };
        let battery_v = ocv + self.noise(0.15);
        let target_temp =
            16.0 + weather.temp_c * 0.3 + if battery_fault { 35.0 } else { 6.0 * self.soc };
        self.battery_temp_c += (target_temp - self.battery_temp_c) * 0.02 * dt_s;

        // --- Brake pressure ------------------------------------------
        if brake_leak {
            self.brake_baseline_bar =
                (self.brake_baseline_bar - 0.004 * dt_s / 60.0 * 60.0).max(5.0);
        }
        let brake_bar = if state.emergency_braking {
            2.2 + self.noise(0.2)
        } else if state.speed_ms > 0.5 && state.at_station.is_none() {
            // Running: occasional service braking dips.
            if self.rng.gen::<f64>() < 0.08 {
                4.5 + self.noise(0.4)
            } else {
                self.brake_baseline_bar + self.noise(0.1)
            }
        } else {
            self.brake_baseline_bar + self.noise(0.05)
        };

        // --- Noise --------------------------------------------------
        let rolling = 35.0 + 22.0 * ((1.0 + speed_kmh / 20.0).ln());
        let rain_term = (weather.rain_mmh * 0.8).min(6.0);
        let noise_db = (rolling + rain_term + self.noise(1.2)).max(30.0);

        // --- Cabin temperature ---------------------------------------
        let load = state.passengers as f64 / 600.0;
        let cabin_temp_c = 20.5 + load * 3.0 + (weather.temp_c - 10.0) * 0.08 + self.noise(0.3);

        // --- GPS ------------------------------------------------------
        let pos = if self.rng.gen::<f64>() < self.gps_dropout {
            self.dropouts += 1;
            self.last_fix.unwrap_or(state.pos)
        } else {
            // ~5 m horizontal noise, latitude-corrected.
            let meters = 5.0;
            let k = 111_320.0;
            let dx = self.noise(meters) / (k * state.pos.y.to_radians().cos());
            let dy = self.noise(meters) / k;
            let fix = Point::new(state.pos.x + dx, state.pos.y + dy);
            self.last_fix = Some(fix);
            fix
        };

        SensorReading {
            t: state.t,
            train_id: 0, // filled by the fleet layer
            pos,
            speed_kmh,
            battery_v,
            battery_temp_c: self.battery_temp_c,
            brake_bar: brake_bar.clamp(0.5, 10.5),
            noise_db,
            passengers: state.passengers,
            doors_open: state.doors_open,
            odometer_m: state.odometer_m,
            cabin_temp_c,
        }
    }

    /// Zero-mean noise with the given standard deviation.
    fn noise(&mut self, sigma: f64) -> f64 {
        // Irwin–Hall(12) − 6 approximates a standard normal.
        let s: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum();
        (s - 6.0) * sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RailNetwork;
    use crate::train::{demo_fault_plans, TrainConfig, TrainSim};
    use crate::weather::WeatherField;
    use meos::time::TimeDelta;
    use std::sync::Arc;

    fn start() -> TimestampTz {
        TimestampTz::from_ymd_hms(2025, 6, 22, 8, 0, 0).unwrap()
    }

    fn clear_weather() -> WeatherSample {
        WeatherSample {
            temp_c: 12.0,
            rain_mmh: 0.0,
            snow_mmh: 0.0,
            visibility_m: 10_000.0,
        }
    }

    fn run_train(faults: &FaultPlan, secs: i64, seed: u64) -> Vec<SensorReading> {
        let net = Arc::new(RailNetwork::belgium());
        let mut sim = TrainSim::new(
            net,
            TrainConfig::standard(0, 0),
            faults.clone(),
            start(),
            seed,
        );
        let mut suite = SensorSuite::new(seed, 0.0);
        let w = clear_weather();
        (0..secs)
            .map(|_| {
                let st = sim.step(TimeDelta::from_secs(1));
                suite.sample(&st, &w, faults, 1.0)
            })
            .collect()
    }

    #[test]
    fn healthy_battery_stays_in_range() {
        let readings = run_train(&FaultPlan::default(), 1_800, 1);
        for r in &readings {
            assert!((60.0..82.0).contains(&r.battery_v), "{}", r.battery_v);
            assert!((0.0..45.0).contains(&r.battery_temp_c));
        }
    }

    #[test]
    fn battery_fault_degrades_voltage_and_heats() {
        let faults = FaultPlan {
            battery_fault_after: Some(start() + TimeDelta::from_minutes(5)),
            ..FaultPlan::default()
        };
        let readings = run_train(&faults, 2_400, 2);
        let early_v: f64 = readings[..300].iter().map(|r| r.battery_v).sum::<f64>() / 300.0;
        let late = &readings[readings.len() - 300..];
        let late_v: f64 = late.iter().map(|r| r.battery_v).sum::<f64>() / 300.0;
        assert!(late_v < early_v - 3.0, "{early_v} -> {late_v}");
        let late_t = late.iter().map(|r| r.battery_temp_c).fold(0.0, f64::max);
        assert!(late_t > 30.0, "pack heats up: {late_t}");
    }

    #[test]
    fn emergency_brake_shows_in_pressure() {
        let faults = FaultPlan {
            emergency_brakes: vec![start() + TimeDelta::from_minutes(5)],
            ..FaultPlan::default()
        };
        let readings = run_train(&faults, 900, 3);
        let min_bar = readings.iter().map(|r| r.brake_bar).fold(10.0, f64::min);
        assert!(min_bar < 3.5, "emergency dip visible: {min_bar}");
        // Normal running pressure dominates.
        let high = readings.iter().filter(|r| r.brake_bar > 8.0).count();
        assert!(high > readings.len() / 2);
    }

    #[test]
    fn brake_leak_lowers_baseline() {
        let faults = FaultPlan {
            brake_leak_after: Some(start() + TimeDelta::from_minutes(2)),
            ..FaultPlan::default()
        };
        let readings = run_train(&faults, 3_600, 4);
        let early: f64 = readings[..100].iter().map(|r| r.brake_bar).sum::<f64>() / 100.0;
        let late: f64 = readings[readings.len() - 100..]
            .iter()
            .map(|r| r.brake_bar)
            .sum::<f64>()
            / 100.0;
        assert!(late < early - 0.5, "{early} -> {late}");
    }

    #[test]
    fn noise_grows_with_speed() {
        let readings = run_train(&FaultPlan::default(), 1_200, 5);
        let slow: Vec<&SensorReading> = readings.iter().filter(|r| r.speed_kmh < 5.0).collect();
        let fast: Vec<&SensorReading> = readings.iter().filter(|r| r.speed_kmh > 80.0).collect();
        assert!(!slow.is_empty() && !fast.is_empty());
        let avg = |v: &[&SensorReading]| v.iter().map(|r| r.noise_db).sum::<f64>() / v.len() as f64;
        assert!(avg(&fast) > avg(&slow) + 10.0);
    }

    #[test]
    fn gps_noise_is_small_and_dropouts_repeat_fix() {
        let net = Arc::new(RailNetwork::belgium());
        let faults = FaultPlan::default();
        let mut sim = TrainSim::new(net, TrainConfig::standard(0, 0), faults.clone(), start(), 6);
        let mut suite = SensorSuite::new(6, 0.3);
        let w = clear_weather();
        let mut max_err = 0.0f64;
        for _ in 0..600 {
            let st = sim.step(TimeDelta::from_secs(1));
            let r = suite.sample(&st, &w, &faults, 1.0);
            max_err = max_err.max(r.pos.haversine(&st.pos));
        }
        assert!(suite.dropouts() > 100, "30% dropout rate");
        // Repeated fixes can lag the true position, but with 1 s ticks the
        // error stays bounded by a few hundred metres.
        assert!(max_err < 500.0, "max GPS error {max_err} m");
    }

    #[test]
    fn weather_shifts_sensors() {
        let faults = demo_fault_plans(start(), 6).remove(0);
        let net = Arc::new(RailNetwork::belgium());
        let field = WeatherField::new(11);
        let mut sim = TrainSim::new(net, TrainConfig::standard(0, 0), faults.clone(), start(), 7);
        let mut suite = SensorSuite::new(7, 0.0);
        let st = sim.step(TimeDelta::from_secs(1));
        let calm = suite.sample(&st, &clear_weather(), &faults, 1.0);
        let stormy = WeatherSample {
            rain_mmh: 8.0,
            ..clear_weather()
        };
        let wet = suite.sample(&st, &stormy, &faults, 1.0);
        let _ = field;
        assert!(wet.noise_db + 3.0 > calm.noise_db, "rain adds noise floor");
    }
}
