//! # sncb — a deterministic SNCB train-fleet simulator
//!
//! The NebulaMEOS demonstration streams six months of sensor data from
//! six SNCB trains — data we cannot redistribute. This crate replaces it
//! with a faithful synthetic equivalent:
//!
//! - [`network`] — a Belgian rail network (real station coordinates,
//!   synthesized track geometry) with the zone inventory the queries
//!   need: maintenance zones, noise-sensitive areas, high-risk curves,
//!   station areas and workshops.
//! - [`train`] — train kinematics (acceleration, braking, dwells,
//!   passenger exchange) plus injected anomalies: unscheduled stops,
//!   emergency brakes, battery and brake-leak faults.
//! - [`sensors`] — noisy sensor models: GPS (with dropouts), battery
//!   voltage/temperature, brake pressure, exterior noise, cabin
//!   temperature.
//! - [`weather`] — a seeded value-noise weather field replacing the
//!   OpenMeteo API for Query 4.
//! - [`stream`] — fleet assembly into engine records and a streaming
//!   [`nebula`] source; [`dataset`] adds CSV export/import and summary
//!   statistics.
//!
//! Everything is seeded: the same configuration always produces the same
//! byte-for-byte stream, so integration tests can assert exact alert
//! counts.

pub mod dataset;
pub mod demo;
pub mod network;
pub mod sensors;
pub mod stream;
pub mod train;
pub mod weather;

pub use dataset::{export_csv, generate, open_csv, summarize, DatasetSummary};
pub use demo::{demo_environment, demo_zones};
pub use network::{RailNetwork, Route, Station, Zone, ZoneKind};
pub use sensors::{SensorReading, SensorSuite};
pub use stream::{fleet_schema, reading_to_record, FleetConfig, FleetSimulator, FleetSource};
pub use train::{
    demo_fault_plans, in_scheduled_stop_zone, FaultPlan, TrainConfig, TrainSim, TrainState,
};
pub use weather::{WeatherCondition, WeatherField, WeatherSample};
