//! Demo wiring: connects the simulated SNCB deployment to the
//! NebulaMEOS query context — zone inventory extraction, the weather
//! provider implementation, and a one-call environment builder used by
//! the examples, integration tests and benchmarks.

use crate::network::{RailNetwork, ZoneKind};
use crate::stream::{fleet_schema, FleetConfig, FleetSimulator};
use crate::weather::WeatherField;
use meos::geo::Point;
use meos::time::TimestampTz;
use nebula::prelude::{Record, StreamEnvironment, VecSource, WatermarkStrategy, MICROS_PER_SEC};
use nebulameos::{DemoContext, DemoZones, MeosPlugin, WeatherProvider};
use std::sync::Arc;

impl WeatherProvider for WeatherField {
    fn speed_factor(&self, pos: Point, t_micros: i64) -> f64 {
        self.sample(&pos, TimestampTz::from_micros(t_micros))
            .speed_factor()
    }
}

/// Extracts the query-side zone inventory from the simulated network.
pub fn demo_zones(net: &RailNetwork) -> DemoZones {
    let collect = |kind: ZoneKind| {
        net.zones_of(kind)
            .map(|z| (z.name.clone(), z.geometry.clone()))
            .collect::<Vec<_>>()
    };
    DemoZones {
        maintenance: collect(ZoneKind::Maintenance),
        noise_sensitive: collect(ZoneKind::NoiseSensitive),
        high_risk: net
            .zones_of(ZoneKind::HighRiskCurve)
            .map(|z| {
                (
                    z.name.clone(),
                    z.geometry.clone(),
                    z.speed_limit_kmh.unwrap_or(80.0),
                )
            })
            .collect(),
        station_areas: collect(ZoneKind::StationArea),
        workshops: collect(ZoneKind::Workshop),
    }
}

/// Builds a fully wired environment over a fresh simulation: MEOS plugin,
/// zone/weather context, and the `fleet` source (pre-materialized for
/// reproducible throughput measurement). Returns the environment plus the
/// record count.
pub fn demo_environment(cfg: FleetConfig) -> (StreamEnvironment, usize) {
    let sim = FleetSimulator::new(cfg);
    let net = sim.network();
    let weather = Arc::new(sim.weather().clone());
    let records = sim.into_records();
    let n = records.len();
    let mut env = StreamEnvironment::new();
    env.load_plugin(&MeosPlugin).expect("meos plugin");
    env.load_plugin(&DemoContext::new(demo_zones(&net)).with_weather(weather))
        .expect("demo context");
    env.add_source(
        "fleet",
        Box::new(VecSource::new(fleet_schema(), records)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    (env, n)
}

/// Like [`demo_environment`] but over pre-generated records (benchmarks
/// re-run queries over one materialized dataset).
pub fn demo_environment_with(
    net: &RailNetwork,
    weather: WeatherField,
    records: Vec<Record>,
) -> StreamEnvironment {
    let mut env = StreamEnvironment::new();
    env.load_plugin(&MeosPlugin).expect("meos plugin");
    env.load_plugin(&DemoContext::new(demo_zones(net)).with_weather(Arc::new(weather)))
        .expect("demo context");
    env.add_source(
        "fleet",
        Box::new(VecSource::new(fleet_schema(), records)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula::prelude::CollectingSink;

    #[test]
    fn demo_environment_runs_a_query() {
        let (mut env, n) = demo_environment(FleetConfig::test_minutes(2));
        assert_eq!(n, 720);
        let q = nebulameos::q3_dynamic_speed_limit();
        let (mut sink, _) = CollectingSink::new();
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(m.records_in, 720);
    }

    #[test]
    fn zones_extracted_per_kind() {
        let net = RailNetwork::belgium();
        let z = demo_zones(&net);
        assert_eq!(z.maintenance.len(), 3);
        assert_eq!(z.workshops.len(), 4);
        assert_eq!(z.noise_sensitive.len(), 3);
        assert_eq!(z.station_areas.len(), 14);
        assert!(!z.high_risk.is_empty());
    }

    #[test]
    fn weather_provider_adapts_field() {
        let f = WeatherField::new(1);
        let factor = WeatherProvider::speed_factor(&f, Point::new(4.35, 50.85), 0);
        assert!((0.4..=1.0).contains(&factor));
    }
}
