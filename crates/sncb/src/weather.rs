//! A deterministic synthetic weather field replacing the OpenMeteo API.
//!
//! Query 4 joins train positions against current weather to suggest
//! speed limits. The real demo calls the OpenMeteo web service; here a
//! seeded value-noise field over (lon, lat, time) produces smoothly
//! varying temperature, precipitation and visibility with plausible
//! Belgian statistics — deterministic, offline, and adjustable in tests.

use meos::geo::Point;
use meos::time::TimestampTz;
use serde::{Deserialize, Serialize};

/// One weather observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherSample {
    /// Air temperature (°C).
    pub temp_c: f64,
    /// Rain intensity (mm/h).
    pub rain_mmh: f64,
    /// Snow intensity (mm/h); only below ~2 °C.
    pub snow_mmh: f64,
    /// Visibility (m); fog when low.
    pub visibility_m: f64,
}

/// Categorical condition, as the demo's Q4 consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeatherCondition {
    /// No hazardous weather.
    Clear,
    /// Sustained rain.
    HeavyRain,
    /// Snowfall.
    HeavySnow,
    /// Visibility under 200 m.
    Fog,
}

impl WeatherSample {
    /// Classifies the sample into the hazard categories Q4 reacts to.
    pub fn condition(&self) -> WeatherCondition {
        if self.visibility_m < 200.0 {
            WeatherCondition::Fog
        } else if self.snow_mmh > 1.0 {
            WeatherCondition::HeavySnow
        } else if self.rain_mmh > 4.0 {
            WeatherCondition::HeavyRain
        } else {
            WeatherCondition::Clear
        }
    }

    /// The demo's recommended speed factor under this condition
    /// (1.0 = no restriction).
    pub fn speed_factor(&self) -> f64 {
        match self.condition() {
            WeatherCondition::Clear => 1.0,
            WeatherCondition::HeavyRain => 0.8,
            WeatherCondition::HeavySnow => 0.6,
            WeatherCondition::Fog => 0.5,
        }
    }
}

/// Deterministic weather field.
#[derive(Debug, Clone)]
pub struct WeatherField {
    seed: u64,
}

fn hash3(seed: u64, x: i64, y: i64, t: i64) -> f64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ (t as u64).wrapping_mul(0x165667B19E3779F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    h as f64 / u64::MAX as f64
}

fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

impl WeatherField {
    /// Builds a field from a seed.
    pub fn new(seed: u64) -> Self {
        WeatherField { seed }
    }

    /// Trilinear value noise in [0, 1] over scaled (x, y, t) lattices.
    fn noise(&self, channel: u64, x: f64, y: f64, t: f64) -> f64 {
        let seed = self.seed ^ channel.wrapping_mul(0xA24BAED4963EE407);
        let (xi, yi, ti) = (x.floor() as i64, y.floor() as i64, t.floor() as i64);
        let (xf, yf, tf) = (
            smooth(x - x.floor()),
            smooth(y - y.floor()),
            smooth(t - t.floor()),
        );
        let mut acc = 0.0;
        for (dx, wx) in [(0, 1.0 - xf), (1, xf)] {
            for (dy, wy) in [(0, 1.0 - yf), (1, yf)] {
                for (dt, wt) in [(0, 1.0 - tf), (1, tf)] {
                    acc += wx * wy * wt * hash3(seed, xi + dx, yi + dy, ti + dt);
                }
            }
        }
        acc
    }

    /// Samples the field at a position and time.
    pub fn sample(&self, pos: &Point, at: TimestampTz) -> WeatherSample {
        // Space scale ~0.25° (≈20 km cells), time scale 2 h — weather
        // systems larger than a train, evolving over hours.
        let x = pos.x / 0.25;
        let y = pos.y / 0.25;
        let t = at.micros() as f64 / (2.0 * 3_600.0 * 1e6);

        // Diurnal + noise temperature.
        let day_frac = (at.micros() as f64 / (24.0 * 3_600.0 * 1e6)).rem_euclid(1.0);
        let diurnal = -4.0 * (2.0 * std::f64::consts::PI * (day_frac - 0.17)).cos();
        let temp_c = 8.0 + diurnal + 10.0 * (self.noise(1, x, y, t) - 0.35);

        // Precipitation: skewed so most of the time is dry.
        let wet = self.noise(2, x, y, t);
        let precip = ((wet - 0.55).max(0.0) * 25.0).powf(1.3);
        let (rain_mmh, snow_mmh) = if temp_c < 1.5 {
            (0.0, precip)
        } else {
            (precip, 0.0)
        };

        // Fog: calm + humid pockets, mostly at night/morning.
        let fog_n = self.noise(3, x * 2.0, y * 2.0, t * 1.5);
        let fog_hours = day_frac < 0.4;
        let visibility_m = if fog_hours && fog_n > 0.75 {
            60.0 + 400.0 * (1.0 - fog_n)
        } else {
            10_000.0
        };

        WeatherSample {
            temp_c,
            rain_mmh,
            snow_mmh,
            visibility_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meos::time::TimeDelta;

    fn t0() -> TimestampTz {
        TimestampTz::from_ymd_hms(2025, 1, 15, 6, 0, 0).unwrap()
    }

    #[test]
    fn deterministic() {
        let a = WeatherField::new(42);
        let b = WeatherField::new(42);
        let p = Point::new(4.35, 50.85);
        assert_eq!(a.sample(&p, t0()), b.sample(&p, t0()));
        let c = WeatherField::new(43);
        assert_ne!(a.sample(&p, t0()), c.sample(&p, t0()), "seed matters");
    }

    #[test]
    fn smooth_in_space_and_time() {
        let f = WeatherField::new(42);
        let p = Point::new(4.35, 50.85);
        let q = Point::new(4.351, 50.851); // ~100 m away
        let s1 = f.sample(&p, t0());
        let s2 = f.sample(&q, t0());
        assert!((s1.temp_c - s2.temp_c).abs() < 0.5, "spatially smooth");
        let s3 = f.sample(&p, t0() + TimeDelta::from_secs(60));
        assert!((s1.temp_c - s3.temp_c).abs() < 0.5, "temporally smooth");
    }

    #[test]
    fn plausible_statistics_over_a_year() {
        let f = WeatherField::new(7);
        let p = Point::new(4.35, 50.85);
        let mut temps = Vec::new();
        let mut wet_hours = 0;
        let mut fog_hours = 0;
        let n = 2_000;
        for i in 0..n {
            let t = t0() + TimeDelta::from_hours(i * 4);
            let s = f.sample(&p, t);
            temps.push(s.temp_c);
            if s.rain_mmh > 0.1 || s.snow_mmh > 0.1 {
                wet_hours += 1;
            }
            if s.visibility_m < 200.0 {
                fog_hours += 1;
            }
        }
        let mean = temps.iter().sum::<f64>() / temps.len() as f64;
        assert!((0.0..15.0).contains(&mean), "mean temp {mean}");
        let wet_frac = wet_hours as f64 / n as f64;
        assert!((0.02..0.6).contains(&wet_frac), "wet fraction {wet_frac}");
        assert!(fog_hours > 0, "fog occurs");
        assert!(fog_hours < n / 5, "fog is rare");
    }

    #[test]
    fn condition_classification() {
        let clear = WeatherSample {
            temp_c: 12.0,
            rain_mmh: 0.0,
            snow_mmh: 0.0,
            visibility_m: 10_000.0,
        };
        assert_eq!(clear.condition(), WeatherCondition::Clear);
        assert_eq!(clear.speed_factor(), 1.0);
        let rain = WeatherSample {
            rain_mmh: 6.0,
            ..clear
        };
        assert_eq!(rain.condition(), WeatherCondition::HeavyRain);
        let snow = WeatherSample {
            temp_c: -2.0,
            snow_mmh: 3.0,
            ..clear
        };
        assert_eq!(snow.condition(), WeatherCondition::HeavySnow);
        let fog = WeatherSample {
            visibility_m: 100.0,
            ..clear
        };
        assert_eq!(fog.condition(), WeatherCondition::Fog);
        assert!(fog.speed_factor() < snow.speed_factor());
    }
}
