//! Dataset materialization: CSV export/import and summary statistics —
//! the stand-in for SNCB's "six trains over six months" archive.

use crate::stream::{fleet_schema, FleetConfig, FleetSimulator};
use nebula::prelude::{CsvSource, Record, Value};
use std::io::Write;
use std::path::Path;

/// Aggregate statistics over a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Total events.
    pub events: u64,
    /// Estimated payload bytes.
    pub bytes: u64,
    /// Events per train id.
    pub per_train: Vec<u64>,
    /// First event time (µs).
    pub t_min: i64,
    /// Last event time (µs).
    pub t_max: i64,
    /// Events with doors open.
    pub door_open_events: u64,
    /// Events with brake pressure under 3 bar (emergency signatures).
    pub emergency_brake_events: u64,
}

/// Computes summary statistics for fleet records.
pub fn summarize(records: &[Record]) -> DatasetSummary {
    let mut s = DatasetSummary {
        events: records.len() as u64,
        bytes: 0,
        per_train: Vec::new(),
        t_min: i64::MAX,
        t_max: i64::MIN,
        door_open_events: 0,
        emergency_brake_events: 0,
    };
    for r in records {
        s.bytes += r.est_bytes() as u64;
        let ts = r.get(0).and_then(Value::as_timestamp).unwrap_or(0);
        s.t_min = s.t_min.min(ts);
        s.t_max = s.t_max.max(ts);
        let id = r.get(1).and_then(Value::as_int).unwrap_or(0) as usize;
        if s.per_train.len() <= id {
            s.per_train.resize(id + 1, 0);
        }
        s.per_train[id] += 1;
        if r.get(9).and_then(Value::as_bool).unwrap_or(false) {
            s.door_open_events += 1;
        }
        if r.get(6).and_then(Value::as_float).unwrap_or(10.0) < 3.0 {
            s.emergency_brake_events += 1;
        }
    }
    if records.is_empty() {
        s.t_min = 0;
        s.t_max = 0;
    }
    s
}

/// Generates the configured dataset.
pub fn generate(cfg: FleetConfig) -> Vec<Record> {
    FleetSimulator::new(cfg).into_records()
}

/// Writes fleet records to CSV in the layout [`CsvSource`] reads back
/// (points as `x;y`).
pub fn export_csv(records: &[Record], path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path.as_ref())?;
    let mut w = std::io::BufWriter::new(file);
    let schema = fleet_schema();
    let header: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    writeln!(w, "{}", header.join(","))?;
    for r in records {
        let cols: Vec<String> = r
            .values()
            .iter()
            .map(|v| match v {
                Value::Point { x, y } => format!("{x};{y}"),
                Value::Timestamp(t) => t.to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Null => String::new(),
                other => other.to_string(),
            })
            .collect();
        writeln!(w, "{}", cols.join(","))?;
    }
    w.flush()
}

/// Opens an exported dataset as a nebula source.
pub fn open_csv(path: impl AsRef<Path>) -> nebula::Result<CsvSource> {
    CsvSource::open(fleet_schema(), path, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula::prelude::{Source, SourceBatch};

    #[test]
    fn summary_counts() {
        let recs = generate(FleetConfig::test_minutes(2));
        let s = summarize(&recs);
        assert_eq!(s.events, 720);
        assert_eq!(s.per_train, vec![120; 6]);
        assert!(s.bytes > 700 * 76);
        assert!(s.t_max > s.t_min);
        assert!(s.door_open_events > 0, "trains dwell at departure");
    }

    #[test]
    fn empty_summary() {
        let s = summarize(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.t_min, 0);
        assert_eq!(s.t_max, 0);
    }

    #[test]
    fn csv_round_trip() {
        let recs = generate(FleetConfig::test_minutes(1));
        let path = std::env::temp_dir().join("sncb_dataset_roundtrip.csv");
        export_csv(&recs, &path).unwrap();
        let mut src = open_csv(&path).unwrap();
        let mut back = Vec::new();
        loop {
            match src.poll(1024).unwrap() {
                SourceBatch::Data(d) => back.extend(d),
                SourceBatch::Exhausted => break,
                SourceBatch::Idle => {}
            }
        }
        assert_eq!(back.len(), recs.len());
        // Timestamps and ids survive exactly; floats via display precision.
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.get(0), b.get(0));
            assert_eq!(a.get(1), b.get(1));
            let (ax, ay) = a.get(2).unwrap().as_point().unwrap();
            let (bx, by) = b.get(2).unwrap().as_point().unwrap();
            assert!((ax - bx).abs() < 1e-9 && (ay - by).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }
}
