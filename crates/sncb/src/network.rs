//! A synthetic Belgian rail network.
//!
//! Station coordinates approximate the real network (lon/lat degrees,
//! WGS84); track geometry between stations is synthesized
//! deterministically with gentle curvature so that curve-related zones
//! and speed limits have something to bite on. The proprietary SNCB
//! infrastructure data the paper uses is replaced by this generator — the
//! queries only need *consistent* geometry, zones and schedules.

use meos::geo::{Geometry, Metric, Point, Polygon};
use serde::{Deserialize, Serialize};

/// A station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Station {
    /// Station name.
    pub name: String,
    /// Platform centroid (lon/lat).
    pub pos: Point,
}

/// Zone categories used by the demo queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZoneKind {
    /// Track maintenance area (Q1 filters alerts inside these).
    Maintenance,
    /// Noise-sensitive neighbourhood (Q2 monitors these).
    NoiseSensitive,
    /// Sharp curve / high-risk segment with a reduced limit (Q3).
    HighRiskCurve,
    /// Station catchment (Q7: stops inside these are scheduled).
    StationArea,
    /// Rolling-stock workshop (Q5 locates the nearest one).
    Workshop,
}

/// A named geographic zone, optionally carrying a speed limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    /// Zone name.
    pub name: String,
    /// Category.
    pub kind: ZoneKind,
    /// Footprint.
    pub geometry: Geometry,
    /// Speed limit inside the zone (km/h), when applicable.
    pub speed_limit_kmh: Option<f64>,
}

/// A route: an ordered station list with synthesized track geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    /// Route name (e.g. "IC Brussels–Antwerp").
    pub name: String,
    /// Indices into [`RailNetwork::stations`].
    pub stations: Vec<usize>,
    /// Track polyline (lon/lat), densified between stations.
    pub track: Vec<Point>,
    /// Cumulative metres along `track` (same length).
    pub cum_m: Vec<f64>,
    /// Track positions (indices into `track`) of each station stop.
    pub station_track_idx: Vec<usize>,
    /// Line speed limit (km/h).
    pub line_limit_kmh: f64,
}

impl Route {
    /// Total route length in metres.
    pub fn length_m(&self) -> f64 {
        *self.cum_m.last().unwrap_or(&0.0)
    }

    /// Position and local heading at `m` metres along the track
    /// (clamped to the route ends).
    pub fn position_at(&self, m: f64) -> (Point, f64) {
        let m = m.clamp(0.0, self.length_m());
        let idx = self
            .cum_m
            .partition_point(|&c| c <= m)
            .clamp(1, self.track.len() - 1);
        let (c0, c1) = (self.cum_m[idx - 1], self.cum_m[idx]);
        let frac = if c1 > c0 { (m - c0) / (c1 - c0) } else { 0.0 };
        let p = self.track[idx - 1].lerp(&self.track[idx], frac);
        let heading = meos::tpoint::bearing(&self.track[idx - 1], &self.track[idx]);
        (p, heading)
    }

    /// Metres along the route of the `i`-th scheduled station.
    pub fn station_m(&self, i: usize) -> f64 {
        self.cum_m[self.station_track_idx[i]]
    }
}

/// The rail network: stations, routes and query zones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RailNetwork {
    /// All stations.
    pub stations: Vec<Station>,
    /// All routes.
    pub routes: Vec<Route>,
    /// All zones.
    pub zones: Vec<Zone>,
}

/// Approximate coordinates of major Belgian stations.
const STATIONS: &[(&str, f64, f64)] = &[
    ("Brussels-Midi", 4.3353, 50.8358),
    ("Brussels-Central", 4.3571, 50.8455),
    ("Brussels-North", 4.3604, 50.8603),
    ("Mechelen", 4.4826, 51.0178),
    ("Antwerp-Central", 4.4211, 51.2172),
    ("Leuven", 4.7159, 50.8812),
    ("Liège-Guillemins", 5.5674, 50.6244),
    ("Ghent-Sint-Pieters", 3.7105, 51.0362),
    ("Bruges", 3.2189, 51.1972),
    ("Ostend", 2.9253, 51.2283),
    ("Namur", 4.8622, 50.4686),
    ("Charleroi-Central", 4.4389, 50.4047),
    ("Hasselt", 5.3275, 50.9305),
    ("Tournai", 3.3967, 50.6130),
];

/// Route definitions: name, station indices, line limit (km/h).
const ROUTES: &[(&str, &[usize], f64)] = &[
    ("IC-05 Brussels–Antwerp", &[0, 1, 2, 3, 4], 160.0),
    ("IC-12 Brussels–Liège", &[0, 1, 2, 5, 6], 200.0),
    ("IC-20 Ostend–Brussels", &[9, 8, 7, 0], 160.0),
    ("IC-28 Antwerp–Charleroi", &[4, 3, 2, 1, 0, 11], 140.0),
    ("IC-31 Brussels–Hasselt", &[0, 1, 2, 5, 12], 140.0),
    ("IC-44 Ghent–Namur", &[7, 0, 1, 5, 10], 140.0),
];

/// Deterministic pseudo-random in [-1, 1] from an integer key (keeps the
/// generator dependency-free and stable across runs).
fn wiggle(key: u64) -> f64 {
    let mut x = key.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 32;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Densifies the leg between two stations with gentle, deterministic
/// curvature. Points are spaced roughly `step_m` apart.
fn densify_leg(a: &Point, b: &Point, leg_key: u64, step_m: f64) -> Vec<Point> {
    let dist = a.haversine(b);
    let n = ((dist / step_m).ceil() as usize).max(2);
    let mut pts = Vec::with_capacity(n);
    // Perpendicular unit vector in degree space (approximate).
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len = (dx * dx + dy * dy).sqrt().max(1e-12);
    let (px, py) = (-dy / len, dx / len);
    for i in 0..n {
        let t = i as f64 / (n - 1) as f64;
        let base = a.lerp(b, t);
        // Two superposed sine bows with leg-specific amplitude/phase.
        let amp1 = 0.004 * wiggle(leg_key);
        let amp2 = 0.002 * wiggle(leg_key ^ 0xABCD);
        let off = amp1 * (std::f64::consts::PI * t).sin()
            + amp2 * (2.0 * std::f64::consts::PI * t + wiggle(leg_key ^ 0x77)).sin();
        // Zero at endpoints so stations stay put.
        let envelope = (std::f64::consts::PI * t).sin();
        pts.push(Point::new(
            base.x + px * off * envelope,
            base.y + py * off * envelope,
        ));
    }
    pts
}

impl RailNetwork {
    /// Builds the standard demo network: 14 stations, 6 routes and the
    /// zone inventory every query relies on. Fully deterministic.
    pub fn belgium() -> Self {
        let stations: Vec<Station> = STATIONS
            .iter()
            .map(|(n, x, y)| Station {
                name: n.to_string(),
                pos: Point::new(*x, *y),
            })
            .collect();

        let mut routes = Vec::with_capacity(ROUTES.len());
        for (ri, (name, idxs, limit)) in ROUTES.iter().enumerate() {
            let mut track: Vec<Point> = Vec::new();
            let mut station_track_idx = Vec::with_capacity(idxs.len());
            for (li, w) in idxs.windows(2).enumerate() {
                let a = &stations[w[0]].pos;
                let b = &stations[w[1]].pos;
                let leg_key = (ri as u64) << 32 | li as u64;
                let leg = densify_leg(a, b, leg_key, 1_500.0);
                if track.is_empty() {
                    station_track_idx.push(0);
                    track.extend(leg);
                } else {
                    // Skip the duplicated joint point.
                    track.extend(leg.into_iter().skip(1));
                }
                station_track_idx.push(track.len() - 1);
            }
            let mut cum_m = Vec::with_capacity(track.len());
            let mut acc = 0.0;
            cum_m.push(0.0);
            for w in track.windows(2) {
                acc += w[0].haversine(&w[1]);
                cum_m.push(acc);
            }
            routes.push(Route {
                name: name.to_string(),
                stations: idxs.to_vec(),
                track,
                cum_m,
                station_track_idx,
                line_limit_kmh: *limit,
            });
        }

        let mut zones = Vec::new();
        // Station areas: 400 m catchment around every station.
        for s in &stations {
            zones.push(Zone {
                name: format!("station:{}", s.name),
                kind: ZoneKind::StationArea,
                geometry: Geometry::Circle {
                    center: s.pos,
                    radius: 400.0,
                },
                speed_limit_kmh: Some(40.0),
            });
        }
        // Workshops near four stations (slightly offset).
        for (si, dx, dy) in [
            (0usize, 0.012, -0.006),
            (4, -0.010, 0.008),
            (6, 0.008, 0.006),
            (7, -0.011, -0.007),
        ] {
            let p = stations[si].pos;
            zones.push(Zone {
                name: format!("workshop:{}", stations[si].name),
                kind: ZoneKind::Workshop,
                geometry: Geometry::Circle {
                    center: Point::new(p.x + dx, p.y + dy),
                    radius: 500.0,
                },
                speed_limit_kmh: Some(20.0),
            });
        }
        // Maintenance zones: rectangles over mid-leg sections of three
        // routes (deterministic picks).
        for (zi, (ri, frac)) in [(0usize, 0.45), (1, 0.6), (3, 0.3)].iter().enumerate() {
            let route = &routes[*ri];
            let (c, _) = route.position_at(route.length_m() * frac);
            zones.push(Zone {
                name: format!("maintenance-{zi}"),
                kind: ZoneKind::Maintenance,
                geometry: Geometry::Polygon(Polygon::rect(
                    c.x - 0.02,
                    c.y - 0.012,
                    c.x + 0.02,
                    c.y + 0.012,
                )),
                speed_limit_kmh: Some(60.0),
            });
        }
        // High-risk curves: where synthesized track curvature is highest.
        for (ri, route) in routes.iter().enumerate() {
            if let Some(c) = sharpest_curve(route) {
                zones.push(Zone {
                    name: format!("curve:{}", route.name),
                    kind: ZoneKind::HighRiskCurve,
                    geometry: Geometry::Circle {
                        center: c,
                        radius: 1_200.0,
                    },
                    speed_limit_kmh: Some(80.0 + 10.0 * (ri % 3) as f64),
                });
            }
        }
        // Noise-sensitive zones: dense neighbourhoods near three cities.
        for (si, r) in [(1usize, 1_500.0), (4, 1_800.0), (7, 1_500.0)] {
            zones.push(Zone {
                name: format!("quiet:{}", stations[si].name),
                kind: ZoneKind::NoiseSensitive,
                geometry: Geometry::Circle {
                    center: stations[si].pos,
                    radius: r,
                },
                speed_limit_kmh: None,
            });
        }

        RailNetwork {
            stations,
            routes,
            zones,
        }
    }

    /// Zones of one kind.
    pub fn zones_of(&self, kind: ZoneKind) -> impl Iterator<Item = &Zone> {
        self.zones.iter().filter(move |z| z.kind == kind)
    }

    /// True iff `p` is inside any zone of `kind`.
    pub fn in_zone(&self, p: &Point, kind: ZoneKind) -> bool {
        self.zones_of(kind)
            .any(|z| z.geometry.contains(p, Metric::Haversine))
    }

    /// The most restrictive speed limit applying at `p`
    /// (km/h; `line_limit` when no zone applies).
    pub fn speed_limit_at(&self, p: &Point, line_limit: f64) -> f64 {
        self.zones
            .iter()
            .filter(|z| z.geometry.contains(p, Metric::Haversine))
            .filter_map(|z| z.speed_limit_kmh)
            .fold(line_limit, f64::min)
    }

    /// Distance (m) from `p` to the nearest workshop, with its name.
    pub fn nearest_workshop(&self, p: &Point) -> Option<(&str, f64)> {
        self.zones_of(ZoneKind::Workshop)
            .map(|z| {
                (
                    z.name.as_str(),
                    z.geometry.distance_to_point(p, Metric::Haversine),
                )
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }
}

/// Track point of maximal turning angle (curve centre candidate).
fn sharpest_curve(route: &Route) -> Option<Point> {
    if route.track.len() < 3 {
        return None;
    }
    let mut best = (0usize, -1.0f64);
    for i in 1..route.track.len() - 1 {
        let b1 = meos::tpoint::bearing(&route.track[i - 1], &route.track[i]);
        let b2 = meos::tpoint::bearing(&route.track[i], &route.track[i + 1]);
        let mut d = (b2 - b1).abs();
        if d > 180.0 {
            d = 360.0 - d;
        }
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(route.track[best.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_deterministic() {
        let a = RailNetwork::belgium();
        let b = RailNetwork::belgium();
        assert_eq!(a.stations.len(), b.stations.len());
        for (ra, rb) in a.routes.iter().zip(&b.routes) {
            assert_eq!(ra.track, rb.track);
        }
    }

    #[test]
    fn routes_have_sane_geometry() {
        let net = RailNetwork::belgium();
        assert_eq!(net.routes.len(), 6);
        for r in &net.routes {
            assert!(r.track.len() >= 10, "{} too sparse", r.name);
            assert_eq!(r.track.len(), r.cum_m.len());
            assert_eq!(r.station_track_idx.len(), r.stations.len());
            // Brussels–Antwerp is ~45 km line distance; all routes should
            // be between 20 km and 250 km.
            let len = r.length_m();
            assert!((20_000.0..250_000.0).contains(&len), "{}: {len}", r.name);
            // Cumulative distances strictly increase.
            for w in r.cum_m.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn stations_anchor_track() {
        let net = RailNetwork::belgium();
        for r in &net.routes {
            for (i, &si) in r.stations.iter().enumerate() {
                let track_pt = r.track[r.station_track_idx[i]];
                let d = track_pt.haversine(&net.stations[si].pos);
                assert!(d < 50.0, "{}: station {i} off by {d} m", r.name);
            }
        }
    }

    #[test]
    fn position_at_interpolates() {
        let net = RailNetwork::belgium();
        let r = &net.routes[0];
        let (start, _) = r.position_at(0.0);
        assert!(start.haversine(&net.stations[r.stations[0]].pos) < 50.0);
        let (end, _) = r.position_at(r.length_m());
        assert!(end.haversine(&net.stations[*r.stations.last().unwrap()].pos) < 50.0);
        let (mid, heading) = r.position_at(r.length_m() / 2.0);
        assert!(mid.x > 2.0 && mid.x < 6.5, "on the map");
        assert!((0.0..360.0).contains(&heading));
        // Clamping.
        let (past, _) = r.position_at(r.length_m() + 10_000.0);
        assert_eq!(past, end);
    }

    #[test]
    fn zone_inventory_complete() {
        let net = RailNetwork::belgium();
        assert_eq!(net.zones_of(ZoneKind::StationArea).count(), 14);
        assert_eq!(net.zones_of(ZoneKind::Workshop).count(), 4);
        assert_eq!(net.zones_of(ZoneKind::Maintenance).count(), 3);
        assert!(net.zones_of(ZoneKind::HighRiskCurve).count() >= 4);
        assert_eq!(net.zones_of(ZoneKind::NoiseSensitive).count(), 3);
    }

    #[test]
    fn station_area_detection() {
        let net = RailNetwork::belgium();
        let midi = net.stations[0].pos;
        assert!(net.in_zone(&midi, ZoneKind::StationArea));
        let nowhere = Point::new(4.0, 50.3);
        assert!(!net.in_zone(&nowhere, ZoneKind::StationArea));
    }

    #[test]
    fn speed_limits_apply() {
        let net = RailNetwork::belgium();
        let midi = net.stations[0].pos;
        // Station zone limit (40) beats the line limit.
        assert_eq!(net.speed_limit_at(&midi, 160.0), 40.0);
        let open_track = net.routes[0].position_at(10_000.0).0;
        let lim = net.speed_limit_at(&open_track, 160.0);
        assert!(lim <= 160.0);
    }

    #[test]
    fn nearest_workshop_found() {
        let net = RailNetwork::belgium();
        let (name, d) = net.nearest_workshop(&net.stations[0].pos).unwrap();
        assert!(
            name.contains("Brussels-Midi"),
            "nearest to Midi is its own: {name}"
        );
        assert!(d < 3_000.0, "{d}");
    }
}
