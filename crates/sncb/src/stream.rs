//! Fleet event-stream assembly: ties network, trains, sensors and
//! weather together and exposes the result as a nebula [`Source`].

use crate::network::RailNetwork;
use crate::sensors::{SensorReading, SensorSuite};
use crate::train::{demo_fault_plans, FaultPlan, TrainConfig, TrainSim};
use crate::weather::WeatherField;
use meos::time::{TimeDelta, TimestampTz};
use nebula::prelude::{DataType, Record, Schema, SchemaRef, Source, SourceBatch, Value};
use std::sync::Arc;

/// The fleet record layout (12 fields ≈ 106 B/event, matching the
/// paper's ~76–118 B/event payloads).
pub fn fleet_schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("train_id", DataType::Int),
        ("pos", DataType::Point),
        ("speed_kmh", DataType::Float),
        ("battery_v", DataType::Float),
        ("battery_temp_c", DataType::Float),
        ("brake_bar", DataType::Float),
        ("noise_db", DataType::Float),
        ("passengers", DataType::Int),
        ("doors_open", DataType::Bool),
        ("odometer_m", DataType::Float),
        ("cabin_temp_c", DataType::Float),
    ])
}

/// Converts one reading into an engine record (column order matches
/// [`fleet_schema`]).
pub fn reading_to_record(r: &SensorReading) -> Record {
    Record::new(vec![
        Value::Timestamp(r.t.micros()),
        Value::Int(r.train_id as i64),
        Value::Point {
            x: r.pos.x,
            y: r.pos.y,
        },
        Value::Float(r.speed_kmh),
        Value::Float(r.battery_v),
        Value::Float(r.battery_temp_c),
        Value::Float(r.brake_bar),
        Value::Float(r.noise_db),
        Value::Int(r.passengers as i64),
        Value::Bool(r.doors_open),
        Value::Float(r.odometer_m),
        Value::Float(r.cabin_temp_c),
    ])
}

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of trains (the demo runs six).
    pub num_trains: usize,
    /// Sensor tick.
    pub tick: TimeDelta,
    /// Simulated duration.
    pub duration: TimeDelta,
    /// Master seed.
    pub seed: u64,
    /// Simulation start time.
    pub start: TimestampTz,
    /// GPS dropout probability per reading.
    pub gps_dropout: f64,
    /// Inject the demo fault plans (battery fault, emergency brakes,
    /// unscheduled stops).
    pub with_faults: bool,
}

impl FleetConfig {
    /// The standard demo hour: 6 trains, 1 s ticks, one hour.
    pub fn demo_hour() -> Self {
        FleetConfig {
            num_trains: 6,
            tick: TimeDelta::from_secs(1),
            duration: TimeDelta::from_hours(1),
            seed: 20_250_622,
            start: TimestampTz::from_ymd_hms(2025, 6, 22, 8, 0, 0).expect("valid date"),
            gps_dropout: 0.002,
            with_faults: true,
        }
    }

    /// A shorter run for tests.
    pub fn test_minutes(minutes: i64) -> Self {
        FleetConfig {
            duration: TimeDelta::from_minutes(minutes),
            ..FleetConfig::demo_hour()
        }
    }

    /// Total readings this configuration will produce.
    pub fn expected_events(&self) -> u64 {
        let ticks = self.duration.micros() / self.tick.micros();
        ticks as u64 * self.num_trains as u64
    }
}

/// The live fleet simulation: steps every train in lockstep and emits
/// interleaved sensor readings.
pub struct FleetSimulator {
    cfg: FleetConfig,
    net: Arc<RailNetwork>,
    weather: WeatherField,
    trains: Vec<(TrainSim, SensorSuite, FaultPlan)>,
    elapsed: TimeDelta,
}

impl FleetSimulator {
    /// Builds the simulator (network, trains on round-robin routes,
    /// sensor suites, fault plans).
    pub fn new(cfg: FleetConfig) -> Self {
        let net = Arc::new(RailNetwork::belgium());
        let weather = WeatherField::new(cfg.seed ^ 0xFEED);
        let plans = if cfg.with_faults {
            demo_fault_plans(cfg.start, cfg.num_trains)
        } else {
            vec![FaultPlan::default(); cfg.num_trains]
        };
        let trains = (0..cfg.num_trains)
            .map(|i| {
                let route = i % net.routes.len();
                let sim = TrainSim::new(
                    net.clone(),
                    TrainConfig::standard(i as u32, route),
                    plans[i].clone(),
                    cfg.start,
                    cfg.seed.wrapping_add(i as u64 * 7919),
                );
                let suite =
                    SensorSuite::new(cfg.seed.wrapping_add(i as u64 * 104_729), cfg.gps_dropout);
                (sim, suite, plans[i].clone())
            })
            .collect();
        FleetSimulator {
            cfg,
            net,
            weather,
            trains,
            elapsed: TimeDelta::ZERO,
        }
    }

    /// The underlying network (zones for query construction).
    pub fn network(&self) -> Arc<RailNetwork> {
        self.net.clone()
    }

    /// The weather field driving Q4.
    pub fn weather(&self) -> &WeatherField {
        &self.weather
    }

    /// Steps one tick; `None` once the configured duration is exhausted.
    pub fn next_tick(&mut self) -> Option<Vec<SensorReading>> {
        if self.elapsed >= self.cfg.duration {
            return None;
        }
        self.elapsed = self.elapsed + self.cfg.tick;
        let dt_s = self.cfg.tick.as_secs_f64();
        let mut out = Vec::with_capacity(self.trains.len());
        for (i, (sim, suite, faults)) in self.trains.iter_mut().enumerate() {
            let st = sim.step(self.cfg.tick);
            let w = self.weather.sample(&st.pos, st.t);
            let mut reading = suite.sample(&st, &w, faults, dt_s);
            reading.train_id = i as u32;
            out.push(reading);
        }
        Some(out)
    }

    /// Runs the whole simulation into engine records.
    pub fn into_records(mut self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.cfg.expected_events() as usize);
        while let Some(tick) = self.next_tick() {
            out.extend(tick.iter().map(reading_to_record));
        }
        out
    }

    /// Runs the whole simulation into readings (analysis/figures).
    pub fn into_readings(mut self) -> Vec<SensorReading> {
        let mut out = Vec::with_capacity(self.cfg.expected_events() as usize);
        while let Some(tick) = self.next_tick() {
            out.extend(tick);
        }
        out
    }
}

/// A streaming nebula source backed by the live simulator — generates
/// batches on demand instead of materializing the run.
pub struct FleetSource {
    sim: FleetSimulator,
    pending: Vec<Record>,
    schema: SchemaRef,
}

impl FleetSource {
    /// Builds a source over a fresh simulation.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetSource {
            sim: FleetSimulator::new(cfg),
            pending: Vec::new(),
            schema: fleet_schema(),
        }
    }
}

impl Source for FleetSource {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn poll(&mut self, max: usize) -> nebula::Result<SourceBatch> {
        while self.pending.len() < max {
            match self.sim.next_tick() {
                Some(tick) => self.pending.extend(tick.iter().map(reading_to_record)),
                None => break,
            }
        }
        if self.pending.is_empty() {
            return Ok(SourceBatch::Exhausted);
        }
        let n = max.min(self.pending.len());
        Ok(SourceBatch::Data(self.pending.drain(..n).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_width_matches_paper_payloads() {
        let cfg = FleetConfig::test_minutes(1);
        let recs = FleetSimulator::new(cfg).into_records();
        assert!(!recs.is_empty());
        let bytes = recs[0].est_bytes();
        assert!(
            (76..=120).contains(&bytes),
            "event width {bytes} B should sit in the paper's range"
        );
    }

    #[test]
    fn expected_event_count() {
        let cfg = FleetConfig::test_minutes(2);
        assert_eq!(cfg.expected_events(), 120 * 6);
        let recs = FleetSimulator::new(cfg).into_records();
        assert_eq!(recs.len(), 720);
    }

    #[test]
    fn records_are_interleaved_and_ordered_per_tick() {
        let cfg = FleetConfig::test_minutes(1);
        let recs = FleetSimulator::new(cfg).into_records();
        // Six trains per tick with identical timestamps, ids 0..5.
        for (i, r) in recs.iter().take(12).enumerate() {
            assert_eq!(
                r.get(1),
                Some(&Value::Int((i % 6) as i64)),
                "round-robin ids"
            );
        }
        // Timestamps non-decreasing.
        let ts: Vec<i64> = recs
            .iter()
            .map(|r| r.get(0).unwrap().as_timestamp().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FleetSimulator::new(FleetConfig::test_minutes(1)).into_records();
        let b = FleetSimulator::new(FleetConfig::test_minutes(1)).into_records();
        assert_eq!(a, b);
        let mut cfg = FleetConfig::test_minutes(1);
        cfg.seed ^= 1;
        let c = FleetSimulator::new(cfg).into_records();
        assert_ne!(a, c);
    }

    #[test]
    fn source_streams_everything() {
        let cfg = FleetConfig::test_minutes(2);
        let expected = cfg.expected_events();
        let mut src = FleetSource::new(cfg);
        let mut total = 0u64;
        loop {
            match src.poll(500).unwrap() {
                SourceBatch::Data(d) => total += d.len() as u64,
                SourceBatch::Exhausted => break,
                SourceBatch::Idle => {}
            }
        }
        assert_eq!(total, expected);
    }

    #[test]
    fn positions_stay_on_the_map() {
        let recs = FleetSimulator::new(FleetConfig::test_minutes(5)).into_records();
        for r in recs.iter().step_by(17) {
            let (x, y) = r.get(2).unwrap().as_point().unwrap();
            assert!((2.5..6.0).contains(&x), "lon {x}");
            assert!((50.0..51.6).contains(&y), "lat {y}");
        }
    }
}
