//! Cluster-runtime benchmark: the cost of actually *executing* a placed
//! plan across the sensors→edge→cloud topology — wire encoding, bounded
//! link channels, per-link accounting, cross-boundary watermarks and
//! cloud-side merging — under both placement strategies, next to the
//! purely analytic placement scoring `placement.rs` times.

use criterion::{criterion_group, criterion_main, Criterion};
use nebula::prelude::*;
use nebulameos_bench::{keyed_window_query, Workload};

fn bench_cluster_placement(c: &mut Criterion) {
    let workload = Workload::small();
    let query = keyed_window_query();

    let mut group = c.benchmark_group("cluster_placement");
    group.sample_size(10);

    group.bench_function("run_placed_edge_first", |b| {
        b.iter(|| {
            let report = workload.run_placed(&query, PlacementStrategy::EdgeFirst);
            assert!(report.cluster.preaggregated || report.cluster.uplink_bytes > 0);
            report.metrics.records_out
        })
    });

    group.bench_function("run_placed_cloud_only", |b| {
        b.iter(|| {
            let report = workload.run_placed(&query, PlacementStrategy::CloudOnly);
            report.metrics.records_out
        })
    });

    // The single-process reference: what distribution overhead costs.
    group.bench_function("run_local_reference", |b| {
        b.iter(|| workload.run(&query).records_out)
    });

    // Pre-aggregation must keep beating ship-everything on the uplink.
    group.bench_function("uplink_comparison", |b| {
        b.iter(|| {
            let edge = workload.run_placed(&query, PlacementStrategy::EdgeFirst);
            let cloud = workload.run_placed(&query, PlacementStrategy::CloudOnly);
            assert!(
                edge.cluster.uplink_bytes < cloud.cluster.uplink_bytes,
                "edge {} vs cloud {}",
                edge.cluster.uplink_bytes,
                cloud.cluster.uplink_bytes
            );
            (edge.cluster.uplink_bytes, cloud.cluster.uplink_bytes)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cluster_placement);
criterion_main!(benches);
