//! Ablations A1 and A5:
//!
//! - **A1 buffer size** — NebulaStream's buffer-batched execution is a
//!   core design point; sweep the batch size and measure throughput.
//! - **A5 out-of-order slack** — sweep the watermark slack against a
//!   jittered stream and measure the pipeline cost of reordering in the
//!   imputation operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nebula::prelude::*;
use nebulameos::ImputationFactory;
use nebulameos_bench::Workload;
use std::sync::Arc;

fn bench_buffer_size(c: &mut Criterion) {
    let workload = Workload::small();
    let events = workload.records.len() as u64;
    let q = nebulameos::q3_dynamic_speed_limit();

    let mut group = c.benchmark_group("ablation_buffer_size");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for buffer_size in [16usize, 128, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer_size),
            &buffer_size,
            |b, &size| {
                b.iter(|| {
                    let mut env = StreamEnvironment::with_config(EnvConfig {
                        buffer_size: size,
                        ..EnvConfig::default()
                    });
                    env.load_plugin(&nebulameos::MeosPlugin).unwrap();
                    env.load_plugin(&nebulameos::DemoContext::new(sncb::demo_zones(
                        &workload.net,
                    )))
                    .unwrap();
                    env.add_source(
                        "fleet",
                        Box::new(VecSource::new(
                            sncb::fleet_schema(),
                            workload.records.clone(),
                        )),
                        WatermarkStrategy::None,
                    );
                    let (mut sink, _) = CountingSink::new();
                    env.run(&q, &mut sink).expect("runs").records_out
                })
            },
        );
    }
    group.finish();
}

fn bench_out_of_order(c: &mut Criterion) {
    let workload = Workload::small();
    let events = workload.records.len() as u64;

    let mut group = c.benchmark_group("ablation_out_of_order");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for jitter_window in [1usize, 16, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(jitter_window),
            &jitter_window,
            |b, &window| {
                let q = Query::from("fleet").apply(Arc::new(ImputationFactory {
                    tick_us: MICROS_PER_SEC,
                    max_fill_us: 10 * MICROS_PER_SEC,
                    ..ImputationFactory::standard()
                }));
                b.iter(|| {
                    let mut env = StreamEnvironment::new();
                    env.load_plugin(&nebulameos::MeosPlugin).unwrap();
                    let src = JitterSource::new(
                        VecSource::new(sncb::fleet_schema(), workload.records.clone()),
                        window,
                        42,
                    );
                    env.add_source(
                        "fleet",
                        Box::new(src),
                        WatermarkStrategy::BoundedOutOfOrder {
                            ts_field: "ts".into(),
                            slack: (window as i64 + 2) * MICROS_PER_SEC,
                        },
                    );
                    let (mut sink, _) = CountingSink::new();
                    env.run(&q, &mut sink).expect("runs").records_out
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_size, bench_out_of_order);
criterion_main!(benches);
