//! Telemetry overhead benchmark: the eight paper queries (Q1–Q8) run
//! with the runtime telemetry subsystem disabled, enabled at the
//! production sampling cadence (100 ms), and enabled at an aggressive
//! 1 ms cadence — plus a post-bench sweep writing `BENCH_9.json` at the
//! workspace root with per-query wall times and overhead ratios. The
//! headline claim: per-operator instrumentation plus periodic sampling
//! costs at most 5% of throughput.
//!
//! ```text
//! cargo bench -p nebulameos-bench --bench telemetry_overhead
//! ```
//!
//! Set `NEBULA_BENCH_QUICK=1` (CI) for a reduced sweep.

use criterion::{criterion_group, Criterion};
use nebula::prelude::*;
use nebulameos_bench::{demo_queries, Workload, PAPER_RESULTS};
use std::time::{Duration, Instant};

/// One timed pass over the workload with a given telemetry setup;
/// returns the wall time of the run itself (environment construction
/// excluded) plus the report when telemetry was on.
fn timed_run(
    workload: &Workload,
    query: &Query,
    telemetry: Option<Duration>,
) -> (f64, QueryMetrics, Option<QueryReport>) {
    let mut env = workload.environment();
    match telemetry {
        None => env.config_mut().telemetry.enabled = false,
        Some(every) => {
            env.config_mut().telemetry.enabled = true;
            env.config_mut().telemetry.sample_every = every;
        }
    }
    let (mut sink, _) = CountingSink::new();
    let started = Instant::now();
    let metrics = env.run(query, &mut sink).expect("query runs");
    let secs = started.elapsed().as_secs_f64();
    (secs, metrics, env.take_report())
}

/// Best-of-`reps` wall time — the minimum is the least noise-sensitive
/// location statistic for a short, allocation-heavy run.
fn best_of(
    workload: &Workload,
    query: &Query,
    telemetry: Option<Duration>,
    reps: usize,
) -> (f64, QueryMetrics, Option<QueryReport>) {
    let mut best = f64::INFINITY;
    let (mut metrics, mut report) = (QueryMetrics::default(), None);
    for _ in 0..reps {
        let (secs, m, r) = timed_run(workload, query, telemetry);
        if secs < best {
            best = secs;
            metrics = m;
            report = r;
        }
    }
    (best, metrics, report)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let workload = Workload::small();
    let query = &demo_queries()[0]; // Q1 Alert Filtering: the cheapest per-record work, worst case for fixed per-buffer instrumentation cost.

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("q1_telemetry_off", |b| {
        b.iter(|| timed_run(&workload, query, None).1.records_out)
    });
    group.bench_function("q1_telemetry_100ms", |b| {
        b.iter(|| {
            timed_run(&workload, query, Some(Duration::from_millis(100)))
                .1
                .records_out
        })
    });
    group.finish();
}

/// The machine-readable companion: Q1–Q8 wall time with telemetry off,
/// at the production cadence, and at an aggressive cadence.
fn write_bench9() {
    let quick = std::env::var_os("NEBULA_BENCH_QUICK").is_some();
    let workload = if quick {
        Workload::small()
    } else {
        Workload::standard()
    };
    let reps = if quick { 3 } else { 5 };
    let events = workload.records.len() as u64;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut per_query = Vec::new();
    let mut log_ratio_sum = 0.0;
    for (row, query) in PAPER_RESULTS.iter().zip(demo_queries()) {
        // Interleaving the configurations per query (rather than one
        // long off-pass then one long on-pass) keeps slow thermal or
        // allocator drift from biasing the ratio.
        let (off_s, off_m, _) = best_of(&workload, &query, None, reps);
        let (on_s, on_m, report) =
            best_of(&workload, &query, Some(Duration::from_millis(100)), reps);
        let (fast_s, _, fast_report) =
            best_of(&workload, &query, Some(Duration::from_millis(1)), reps);
        assert_eq!(
            off_m.records_in, events,
            "Q{} must ingest everything",
            row.id
        );
        assert_eq!(
            off_m.records_out, on_m.records_out,
            "telemetry must not change Q{} results",
            row.id
        );
        let report = report.expect("telemetry on yields a report");
        let fast_report = fast_report.expect("aggressive telemetry yields a report");
        let ratio = on_s / off_s;
        log_ratio_sum += ratio.ln();
        per_query.push(serde_json::json!({
            "id": row.id,
            "name": row.name,
            "events": events,
            "off_ms": off_s * 1e3,
            "on_ms": on_s * 1e3,
            "aggressive_1ms_ms": fast_s * 1e3,
            "overhead_ratio": ratio,
            "keps_off": events as f64 / off_s / 1e3,
            "keps_on": events as f64 / on_s / 1e3,
            "operators": report.operators.len(),
            "samples": report.samples.len(),
            "samples_aggressive": fast_report.samples.len(),
            "events_traced": report.events.len(),
        }));
        eprintln!(
            "Q{}: off {:.1} ms, on {:.1} ms ({:+.2}%), 1ms-sampling {:.1} ms, \
             {} operator(s), {} sample(s)",
            row.id,
            off_s * 1e3,
            on_s * 1e3,
            (ratio - 1.0) * 100.0,
            fast_s * 1e3,
            report.operators.len(),
            report.samples.len(),
        );
    }
    let geomean = (log_ratio_sum / PAPER_RESULTS.len() as f64).exp();
    // The acceptance gate. Individual queries may jitter either way on
    // a loaded CI box; the geometric mean across all eight runs, each
    // taken as a best-of-`reps`, is the stable statistic — with a small
    // measurement-noise allowance on top of the 5% budget.
    assert!(
        geomean <= 1.07,
        "telemetry overhead geomean {:.2}% exceeds the 5% budget (+2% noise allowance)",
        (geomean - 1.0) * 100.0
    );
    eprintln!(
        "telemetry overhead geomean across Q1-Q8: {:+.2}%",
        (geomean - 1.0) * 100.0
    );

    let json = serde_json::json!({
        "issue": 9,
        "hardware": { "cores": cores },
        "workload_events": events,
        "reps": reps,
        "quick": quick,
        "sampling": {
            "production_ms": 100,
            "aggressive_ms": 1,
        },
        "per_query": per_query,
        "overhead_geomean": geomean,
        "under_5_percent": geomean <= 1.05,
        "note": "off_ms runs with TelemetryConfig.enabled=false (operator chain left \
                 uninstrumented, no sampler, no trace ring); on_ms wraps every operator \
                 in the instrumented shell and samples at the production 100 ms cadence; \
                 aggressive_1ms_ms samples at 1 ms to expose the sampler's marginal cost. \
                 Each figure is best-of-reps wall time of the run itself, environment \
                 construction excluded. The gate is the geometric mean of on/off ratios \
                 across all eight queries.",
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).unwrap()).expect("write BENCH_9.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, bench_telemetry_overhead);

fn main() {
    benches();
    // `--test` is cargo's smoke-run of bench targets; keep it fast.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    write_bench9();
}
