//! MEOS operation microbenchmarks, including ablation A4: bbox-pruned
//! sequence operations versus naive per-point scans for the hot
//! predicates (`edwithin`, `at_stbox`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use meos::agg::SequenceBuilder;
use meos::boxes::STBox;
use meos::geo::{Geometry, Metric, Point};
use meos::temporal::{Interp, TInstant, TSequence};
use meos::time::{TimeDelta, TimestampTz};
use meos::tpoint;

/// A winding trajectory with `n` points.
fn trajectory(n: usize) -> TSequence<Point> {
    let instants: Vec<TInstant<Point>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            TInstant::new(
                Point::new(
                    4.3 + 0.3 * t + 0.01 * (20.0 * t).sin(),
                    50.8 + 0.2 * t + 0.01 * (17.0 * t).cos(),
                ),
                TimestampTz::from_unix_secs(i as i64),
            )
        })
        .collect();
    TSequence::new(instants, true, true, Interp::Linear).expect("valid")
}

fn bench_meos_ops(c: &mut Criterion) {
    let seq = trajectory(10_000);
    let target = Geometry::Point(Point::new(4.45, 50.9));
    let bx = STBox::from_coords(4.4, 4.5, 50.85, 50.95, None).unwrap();

    let mut group = c.benchmark_group("meos_ops");
    group.sample_size(20);
    group.throughput(Throughput::Elements(seq.num_instants() as u64));

    group.bench_function("edwithin_segment_exact", |b| {
        b.iter(|| tpoint::edwithin(&seq, &target, 500.0, Metric::Haversine))
    });

    // Ablation A4 baseline: the naive "check every stored point"
    // implementation a system without MEOS segment geometry would use.
    group.bench_function("edwithin_naive_pointscan", |b| {
        b.iter(|| {
            seq.values()
                .any(|p| p.haversine(&Point::new(4.45, 50.9)) <= 500.0)
        })
    });

    group.bench_function("at_stbox_liang_barsky", |b| {
        b.iter(|| tpoint::at_stbox(&seq, &bx).len())
    });

    // Naive at_stbox: filter instants by containment (loses the exact
    // entry/exit interpolation MEOS provides).
    group.bench_function("at_stbox_naive_filter", |b| {
        b.iter(|| seq.values().filter(|p| bx.contains_point(p)).count())
    });

    group.bench_function("speed_sequence", |b| {
        b.iter(|| tpoint::speed(&seq, Metric::Haversine).map(|s| s.num_instants()))
    });

    group.bench_function("simplify_dp_50m", |b| {
        b.iter(|| tpoint::simplify_dp(&seq, 50.0, Metric::Haversine).num_instants())
    });

    group.bench_function("sequence_builder_append", |b| {
        b.iter(|| {
            let mut builder = SequenceBuilder::<Point>::new(Interp::Linear)
                .with_max_gap(TimeDelta::from_secs(60));
            let mut emitted = 0usize;
            for i in 0..10_000i64 {
                let p = Point::new(4.3 + i as f64 * 1e-5, 50.8);
                if let meos::agg::PushResult::Emitted(_) =
                    builder.push(p, TimestampTz::from_unix_secs(i))
                {
                    emitted += 1;
                }
            }
            emitted
        })
    });

    group.bench_function("at_period_restriction", |b| {
        let p = meos::time::Period::inclusive(
            TimestampTz::from_unix_secs(2_000),
            TimestampTz::from_unix_secs(7_000),
        )
        .unwrap();
        b.iter(|| seq.at_period(&p).map(|s| s.num_instants()))
    });

    group.finish();
}

criterion_group!(benches, bench_meos_ops);
criterion_main!(benches);
