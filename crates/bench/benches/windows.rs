//! Ablation A2: the cost of the three window kinds the paper's
//! integration extends (tumbling, sliding, threshold), plus the
//! spatiotemporal trajectory-assembling window.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nebula::prelude::*;
use nebulameos::TrajectoryAgg;
use std::sync::Arc;

fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("train", DataType::Int),
        ("pos", DataType::Point),
        ("v", DataType::Float),
    ])
}

fn records(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::Timestamp(i * MICROS_PER_SEC),
                Value::Int(i % 6),
                Value::Point {
                    x: 4.3 + (i as f64) * 1e-5,
                    y: 50.8,
                },
                Value::Float((i % 600) as f64),
            ])
        })
        .collect()
}

fn run(query: &Query, recs: Vec<Record>) -> u64 {
    let mut env = StreamEnvironment::new();
    env.add_source(
        "s",
        Box::new(VecSource::new(schema(), recs)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    let (mut sink, _) = CountingSink::new();
    env.run(query, &mut sink).expect("runs").records_out
}

fn bench_windows(c: &mut Criterion) {
    const N: i64 = 60_000;
    let base = records(N);
    let mut group = c.benchmark_group("windows");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    let keys = || vec![("train", col("train"))];
    let aggs = || {
        vec![
            WindowAgg::new("n", AggSpec::Count),
            WindowAgg::new("avg_v", AggSpec::Avg(col("v"))),
        ]
    };

    group.bench_function("tumbling_60s", |b| {
        let q = Query::from("s").window(
            keys(),
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            aggs(),
        );
        b.iter(|| run(&q, base.clone()))
    });

    group.bench_function("sliding_60s_slide_15s", |b| {
        let q = Query::from("s").window(
            keys(),
            WindowSpec::Sliding {
                size: 60 * MICROS_PER_SEC,
                slide: 15 * MICROS_PER_SEC,
            },
            aggs(),
        );
        b.iter(|| run(&q, base.clone()))
    });

    group.bench_function("threshold_v_over_300", |b| {
        let q = Query::from("s").window(
            keys(),
            WindowSpec::Threshold {
                predicate: col("v").gt(lit(300.0)),
                min_count: 10,
            },
            aggs(),
        );
        b.iter(|| run(&q, base.clone()))
    });

    group.bench_function("tumbling_trajectory_agg", |b| {
        let q = Query::from("s").window(
            keys(),
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new(
                "traj",
                AggSpec::Custom(Arc::new(TrajectoryAgg::new("pos", "ts"))),
            )],
        );
        b.iter(|| run(&q, base.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_windows);
criterion_main!(benches);
