//! Per-query throughput benchmarks — the criterion companion of the
//! `paper_table` binary (Table 1). Throughput is reported in events/s
//! so the shape comparison against the paper's 8–32K e/s is direct.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nebulameos_bench::{demo_queries, Workload, PAPER_RESULTS};

fn bench_queries(c: &mut Criterion) {
    let workload = Workload::small();
    let events = workload.records.len() as u64;
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for (row, query) in PAPER_RESULTS.iter().zip(demo_queries()) {
        group.bench_function(format!("q{}_{}", row.id, slug(row.name)), |b| {
            b.iter(|| {
                let m = workload.run(&query);
                assert_eq!(m.records_in, events);
                m.records_out
            })
        });
    }
    group.finish();
}

fn slug(name: &str) -> String {
    name.split_whitespace()
        .skip(1)
        .collect::<Vec<_>>()
        .join("_")
        .to_lowercase()
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
