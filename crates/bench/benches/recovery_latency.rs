//! Crash-recovery benchmark for the chaos-hardened cluster runtime:
//! wall-clock cost of a placed run under seeded faults, with and
//! without an abrupt mid-run edge-node kill, next to the clean-run
//! reference — plus a post-bench sweep writing `BENCH_7.json` at the
//! workspace root: `recovery_ms` versus checkpoint interval, and the
//! measured ack/heartbeat share of the cellular uplink (the resilience
//! tax, which must stay under 5%).
//!
//! ```text
//! cargo bench -p nebulameos-bench --bench recovery_latency
//! ```
//!
//! Set `NEBULA_BENCH_QUICK=1` (CI) for a reduced sweep.

use criterion::{criterion_group, Criterion};
use nebula::prelude::*;
use nebulameos_bench::{keyed_window_query, Workload};

/// Crash the edge box after this many source batches — late enough
/// that checkpoints exist at every swept interval, early enough that
/// meaningful work remains to replay.
const CRASH_AFTER_BATCHES: u64 = 12;

/// A cluster environment tuned for chaos runs: small batches so the
/// run has enough of them to checkpoint, crash and recover within.
fn chaos_env(workload: &Workload, checkpoint_every: u64) -> (ClusterEnvironment, NodeId) {
    let mut env = workload.cluster_environment();
    let cfg = env.config_mut();
    cfg.buffer_size = 64;
    cfg.watermark_every = 2;
    cfg.checkpoint_every = checkpoint_every;
    let edge = env
        .topology()
        .nodes()
        .iter()
        .find(|n| n.kind == NodeKind::Edge)
        .map(|n| n.id)
        .expect("fleet topology has an edge node");
    (env, edge)
}

/// The headline fault schedule: the issue's ≥5% drops and ≥2%
/// duplicates, seeded for determinism.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .drop_frames(0.05)
        .duplicate_frames(0.02)
}

fn chaos_run(workload: &Workload, checkpoint_every: u64, plan: &FaultPlan) -> ClusterReport {
    let (mut env, _) = chaos_env(workload, checkpoint_every);
    let (mut sink, _) = CountingSink::new();
    env.run_placed_chaos(
        &keyed_window_query(),
        PlacementStrategy::EdgeFirst,
        plan,
        &mut sink,
    )
    .expect("chaos run completes")
}

fn bench_recovery_latency(c: &mut Criterion) {
    let workload = Workload::small();
    let query = keyed_window_query();

    let mut group = c.benchmark_group("recovery_latency");
    group.sample_size(10);

    // The clean reference: same placed plan, plain channels.
    group.bench_function("clean_run_placed", |b| {
        b.iter(|| {
            let (mut env, _) = chaos_env(&workload, 4);
            let (mut sink, _) = CountingSink::new();
            env.run_placed(&query, PlacementStrategy::EdgeFirst, &mut sink)
                .expect("clean run")
                .metrics
                .records_out
        })
    });

    // Lossy links, no crash: the cost of CRC + acks + retransmission.
    group.bench_function("chaos_lossy_links", |b| {
        b.iter(|| {
            let report = chaos_run(&workload, 4, &lossy_plan(11));
            assert_eq!(report.cluster.replans, 0);
            report.cluster.retransmits
        })
    });

    // Lossy links plus an abrupt edge kill mid-run: detection,
    // re-planning, checkpoint restore and source replay included.
    group.bench_function("chaos_crash_recover", |b| {
        b.iter(|| {
            let (env, _) = chaos_env(&workload, 4);
            let edge = env
                .topology()
                .nodes()
                .iter()
                .find(|n| n.kind == NodeKind::Edge)
                .map(|n| n.id)
                .unwrap();
            drop(env);
            let plan = lossy_plan(11).crash_node(edge, CRASH_AFTER_BATCHES);
            let report = chaos_run(&workload, 4, &plan);
            assert_eq!(report.cluster.replans, 1, "crash must trigger one re-plan");
            report.cluster.recovery_ms
        })
    });

    group.finish();
}

/// The machine-readable companion: recovery latency as a function of
/// the checkpoint interval, and the resilience tax on the uplink.
fn write_bench7() {
    let quick = std::env::var_os("NEBULA_BENCH_QUICK").is_some();
    let workload = Workload::small();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Sweep: shorter intervals checkpoint more often, so less work
    // replays after the crash and recovery_ms shrinks.
    let intervals: &[u64] = if quick { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    let mut sweep = Vec::new();
    for &every in intervals {
        let (env, edge) = chaos_env(&workload, every);
        drop(env);
        let plan = lossy_plan(11).crash_node(edge, CRASH_AFTER_BATCHES);
        let started = std::time::Instant::now();
        let report = chaos_run(&workload, every, &plan);
        let run_ms = started.elapsed().as_secs_f64() * 1e3;
        let m = &report.cluster;
        assert_eq!(m.replans, 1, "crash at interval {every} must re-plan once");
        assert!(m.recovery_ms > 0.0, "crash must record a recovery latency");
        sweep.push(serde_json::json!({
            "checkpoint_every": every,
            "recovery_ms": m.recovery_ms,
            "run_ms": run_ms,
            "checkpoints_taken": m.checkpoints_taken,
            "retransmits": m.retransmits,
            "duplicates_suppressed": m.duplicates_suppressed,
            "records_out": report.metrics.records_out,
        }));
        eprintln!(
            "checkpoint_every={every}: recovery {:.3} ms, run {run_ms:.1} ms, \
             {} checkpoints, {} retransmits",
            m.recovery_ms, m.checkpoints_taken, m.retransmits
        );
    }

    // Resilience tax: a fault-free plan still runs the full resilient
    // protocol (envelopes, acks, heartbeats). Two views of what the
    // reverse-channel traffic costs:
    //  - CloudOnly ships every record over the uplink, so ack/heartbeat
    //    bytes versus uplink payload is a direct uplink-overhead ratio
    //    (conservative: ack_bytes also counts the sensor→edge hop);
    //  - EdgeFirst pre-aggregates the uplink down to partials, so the
    //    fair denominator is total forward wire traffic across links.
    let overhead_of = |strategy: PlacementStrategy| {
        let (mut env, _) = chaos_env(&workload, 4);
        let (mut sink, _) = CountingSink::new();
        let report = env
            .run_placed_chaos(
                &keyed_window_query(),
                strategy,
                &FaultPlan::seeded(11),
                &mut sink,
            )
            .expect("fault-free resilient run");
        let m = report.cluster;
        let forward: u64 = m.links.iter().map(|l| l.bytes).sum();
        let reverse = m.ack_bytes + m.heartbeats * ENVELOPE_OVERHEAD as u64;
        (m, forward, reverse)
    };
    let (cloud, _, cloud_rev) = overhead_of(PlacementStrategy::CloudOnly);
    let cloud_ratio = cloud_rev as f64 / cloud.uplink_bytes.max(1) as f64;
    let (edge, edge_fwd, edge_rev) = overhead_of(PlacementStrategy::EdgeFirst);
    let edge_ratio = edge_rev as f64 / edge_fwd.max(1) as f64;
    assert!(
        cloud_ratio < 0.05 && edge_ratio < 0.05,
        "ack/heartbeat overhead must stay under 5%: uplink {:.2}%, wire {:.2}%",
        cloud_ratio * 100.0,
        edge_ratio * 100.0
    );
    eprintln!(
        "overhead: CloudOnly {} B reverse / {} B uplink = {:.3}%; \
         EdgeFirst {} B reverse / {} B forward = {:.3}%",
        cloud_rev,
        cloud.uplink_bytes,
        cloud_ratio * 100.0,
        edge_rev,
        edge_fwd,
        edge_ratio * 100.0
    );

    let json = serde_json::json!({
        "issue": 7,
        "hardware": { "cores": cores },
        "workload_events": workload.records.len(),
        "query": "keyed_window_query",
        "fault_schedule": {
            "drop_frames": 0.05,
            "duplicate_frames": 0.02,
            "crash_node": "first edge node",
            "crash_after_batches": CRASH_AFTER_BATCHES,
            "seed": 11,
        },
        "recovery_vs_checkpoint_interval": sweep,
        "uplink_overhead": {
            "cloud_only": {
                "uplink_bytes": cloud.uplink_bytes,
                "ack_bytes": cloud.ack_bytes,
                "heartbeats": cloud.heartbeats,
                "overhead_ratio": cloud_ratio,
            },
            "edge_first": {
                "forward_wire_bytes": edge_fwd,
                "uplink_bytes": edge.uplink_bytes,
                "ack_bytes": edge.ack_bytes,
                "heartbeats": edge.heartbeats,
                "overhead_ratio": edge_ratio,
            },
            "under_5_percent": cloud_ratio < 0.05 && edge_ratio < 0.05,
        },
        "note": "recovery_ms spans dead-node detection through checkpoint restore and \
                 source rewind; run_ms is the whole placed run including the replayed \
                 batches, so longer checkpoint intervals pay more replay. Overhead \
                 ratios count reverse-channel ack/nack bytes plus heartbeat envelopes \
                 from a fault-free resilient run against the payload uplink \
                 (CloudOnly, which ships every record over it) and against total \
                 forward wire traffic (EdgeFirst, whose pre-aggregated uplink is \
                 deliberately tiny).",
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, serde_json::to_string_pretty(&json).unwrap()).expect("write BENCH_7.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, bench_recovery_latency);

fn main() {
    benches();
    // `--test` is cargo's smoke-run of bench targets; keep it fast.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    write_bench7();
}
