//! Ablation A3: edge-first versus cloud-only operator placement — the
//! quantified version of the paper's "process at the edge" claim. The
//! benchmark times the placement + cost evaluation pipeline; the byte
//! comparison itself is asserted (edge must beat cloud on uplink bytes).

use criterion::{criterion_group, criterion_main, Criterion};
use nebula::prelude::*;
use nebulameos_bench::{demo_queries, Workload};

fn bench_placement(c: &mut Criterion) {
    let workload = Workload::small();
    let (topo, sensors) = Topology::train_fleet(6);
    let q1 = demo_queries().remove(0);

    // Stage bytes measured once per iteration set (the expensive part).
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);

    group.bench_function("measure_stage_bytes_q1", |b| {
        b.iter(|| {
            let env = workload.environment();
            let src = Box::new(VecSource::new(
                sncb::fleet_schema(),
                workload.records.clone(),
            ));
            measure_stage_bytes(src, &q1, env.registry(), 1024)
                .expect("measures")
                .stage_bytes
                .len()
        })
    });

    group.bench_function("place_and_cost_both_strategies", |b| {
        let env = workload.environment();
        let src = Box::new(VecSource::new(
            sncb::fleet_schema(),
            workload.records.clone(),
        ));
        let stages = measure_stage_bytes(src, &q1, env.registry(), 1024).expect("measures");
        b.iter(|| {
            let edge = place(&q1, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
            let cloud = place(&q1, &topo, sensors[0], PlacementStrategy::CloudOnly).unwrap();
            let ce = network_cost(&topo, &edge, &stages).unwrap();
            let cc = network_cost(&topo, &cloud, &stages).unwrap();
            assert!(
                ce.cloud_uplink_bytes < cc.cloud_uplink_bytes,
                "edge placement must reduce uplink bytes: {} vs {}",
                ce.cloud_uplink_bytes,
                cc.cloud_uplink_bytes
            );
            (ce.total_bytes, cc.total_bytes)
        })
    });

    group.bench_function("failure_replan", |b| {
        // Q2 has a window stage that edge-first placement pins to the
        // onboard edge box, so failing that box forces migrations.
        let q2 = nebulameos::q2_noise_monitoring(75.0);
        let edge_pl = place(&q2, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
        let edge_node = topo
            .first_ancestor_of_kind(sensors[0], NodeKind::Edge)
            .unwrap();
        let cloud = topo.cloud().unwrap();
        b.iter(|| {
            let (pl, migrated) = replace_after_failure(&topo, &edge_pl, edge_node, cloud);
            assert!(migrated > 0);
            pl.stages.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
