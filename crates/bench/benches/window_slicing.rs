//! Stream-slicing bench: per-record window cost versus the sliding
//! overlap factor `size/slide`.
//!
//! With per-window accumulation (the seed engine) every record updates
//! `size/slide` accumulators, so throughput degrades linearly as the
//! overlap grows. With stream slicing each record folds into exactly
//! one `gcd(size, slide)`-wide slice and windows materialize by merging
//! covering slices at watermark time — the Kelem/s column should stay
//! roughly flat from overlap 1 through 64.
//!
//! Set `NEBULA_BENCH_QUICK=1` (CI) for a reduced workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nebula::prelude::*;
use nebulameos_bench::{overlap_query, overlap_stream, OVERLAP_FACTORS};

fn quick() -> bool {
    std::env::var_os("NEBULA_BENCH_QUICK").is_some()
}

fn run(query: &Query, schema: SchemaRef, recs: Vec<Record>) -> u64 {
    let mut env = StreamEnvironment::new();
    env.add_source(
        "s",
        Box::new(VecSource::new(schema, recs)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    let (mut sink, _) = CountingSink::new();
    env.run(query, &mut sink).expect("runs").records_out
}

fn bench_window_slicing(c: &mut Criterion) {
    let n: i64 = if quick() { 12_000 } else { 60_000 };
    let (schema, base) = overlap_stream(n);
    let mut group = c.benchmark_group("window_slicing");
    group.sample_size(if quick() { 2 } else { 10 });
    group.throughput(Throughput::Elements(n as u64));

    for overlap in OVERLAP_FACTORS {
        let q = overlap_query(overlap);
        group.bench_function(format!("overlap_{overlap}x"), |b| {
            b.iter(|| run(&q, schema.clone(), base.clone()))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_window_slicing);
criterion_main!(benches);
