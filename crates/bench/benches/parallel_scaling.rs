//! Scaling of partitioned execution: events/sec for the canonical keyed
//! fleet window query at parallelism 1, 2, 4 and 8, plus the
//! single-threaded `run` loop as the baseline. The interesting output is
//! the ratio between degrees — how much of the hash-partitioned fan-out
//! survives channel and merge overhead on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nebulameos_bench::{keyed_window_query, Workload};

fn bench_parallel_scaling(c: &mut Criterion) {
    let workload = Workload::small();
    let events = workload.records.len() as u64;
    let query = keyed_window_query();

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));

    group.bench_function("run_baseline", |b| {
        b.iter(|| {
            let m = workload.run(&query);
            assert_eq!(m.records_in, events);
            m.records_out
        })
    });
    for parallelism in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("run_partitioned", parallelism), |b| {
            b.iter(|| {
                let m = workload.run_partitioned(&query, parallelism);
                assert_eq!(m.records_in, events);
                m.records_out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
