//! Regenerates "Table 1": the per-query ingestion rate and throughput
//! the paper reports in §3.1–§3.2, next to the rates measured on this
//! machine over the simulated SNCB workload.
//!
//! ```text
//! cargo run --release -p nebulameos-bench --bin paper_table
//! ```
//!
//! Absolute numbers differ from the paper (their substrate is an Intel
//! Atom edge box; ours is a development machine) — the comparison the
//! table supports is *shape*: every query sustains the paper's reported
//! ingest rate, per-event payloads sit in the same 76–118 B band, and
//! the relative per-query cost ordering matches.

use nebulameos_bench::{measure_all, measure_overlap_sweep, Workload, OVERLAP_WINDOW_S};

fn main() {
    let release = cfg!(debug_assertions);
    if release {
        eprintln!("note: running a debug build; use --release for meaningful rates");
    }

    eprintln!("generating workload (6 trains, 1 demo hour, 250 ms ticks)...");
    let workload = Workload::standard();
    let events = workload.records.len();
    let bytes: usize = workload.records.iter().map(|r| r.est_bytes()).sum();
    eprintln!(
        "workload: {events} events, {:.2} MB ({:.0} B/event)\n",
        bytes as f64 / 1e6,
        bytes as f64 / events as f64
    );

    let rows = measure_all(&workload);

    println!(
        "{:<26} | {:>16} | {:>22} | {:>12} | {:>7} | {:>8} | {:>12} | {:>18}",
        "Query (paper §3)",
        "paper throughput",
        "measured throughput",
        "par4 (Ke/s)",
        "B/event",
        "outputs",
        "p99 lat (ms)",
        "uplink edge/cloud"
    );
    println!("{}", "-".repeat(146));
    let mut all_sustained = true;
    let mut rows = rows;
    for row in &mut rows {
        let p99_ms = row
            .metrics
            .latency_us(99.0)
            .map(|us| us / 1_000.0)
            .unwrap_or(0.0);
        let par4_keps = row.par4.events_per_sec() / 1_000.0;
        let m = &row.metrics;
        println!(
            "{:<26} | {:>6.2} MB @ {:>3.0}K e/s | {:>8.2} MB/s @ {:>6.1}K e/s | {:>12.1} | {:>7.1} | {:>8} | {:>12.3} | {:>6.1}/{:>6.1} KB",
            row.paper.name,
            row.paper.paper_mb,
            row.paper.paper_keps,
            m.mb_per_sec(),
            m.events_per_sec() / 1_000.0,
            par4_keps,
            m.bytes_per_event(),
            m.records_out,
            p99_ms,
            row.uplink.edge_bytes as f64 / 1e3,
            row.uplink.cloud_bytes as f64 / 1e3,
        );
        all_sustained &= row.sustains_paper_rate();
    }
    println!("{}", "-".repeat(146));
    println!(
        "sustains paper ingest rates on this machine: {}",
        if all_sustained { "yes" } else { "NO" }
    );

    // Stream-slicing overlap sweep: per-record window cost must stay
    // roughly flat as the sliding overlap factor grows (eager per-window
    // accumulation would degrade linearly).
    eprintln!("\nmeasuring stream-slicing overlap sweep ({OVERLAP_WINDOW_S} s window)...");
    let sweep = measure_overlap_sweep(60_000);
    println!(
        "\n{:<22} | {:>9} | {:>12} | {:>12} | {:>10}",
        "slicing overlap sweep", "slide (s)", "Ke/s", "ns/event", "rows out"
    );
    println!("{}", "-".repeat(78));
    for p in &sweep {
        println!(
            "overlap {:>3}x{:<10} | {:>9} | {:>12.1} | {:>12.0} | {:>10}",
            p.overlap,
            "",
            p.slide_s,
            p.events_per_sec / 1e3,
            p.ns_per_event,
            p.records_out
        );
    }

    // Machine-readable companion for EXPERIMENTS.md.
    let json = serde_json::json!({
        "workload_events": events,
        "workload_bytes": bytes,
        "rows": rows.iter().map(|r| serde_json::json!({
            "id": r.paper.id,
            "name": r.paper.name,
            "paper_mb": r.paper.paper_mb,
            "paper_keps": r.paper.paper_keps,
            "measured_mb_per_sec": r.metrics.mb_per_sec(),
            "measured_keps": r.metrics.events_per_sec() / 1e3,
            "par4_keps": r.par4.events_per_sec() / 1e3,
            "par4_records_out": r.par4.records_out,
            "bytes_per_event": r.metrics.bytes_per_event(),
            "records_out": r.metrics.records_out,
            "sustains_paper_rate": r.sustains_paper_rate(),
            "uplink_edge_bytes": r.uplink.edge_bytes,
            "uplink_cloud_bytes": r.uplink.cloud_bytes,
            "uplink_reduction": r.uplink.reduction(),
        })).collect::<Vec<_>>(),
        "slicing_overlap_sweep": sweep.iter().map(|p| serde_json::json!({
            "overlap": p.overlap,
            "window_s": OVERLAP_WINDOW_S,
            "slide_s": p.slide_s,
            "events_per_sec": p.events_per_sec,
            "ns_per_event": p.ns_per_event,
            "records_out": p.records_out,
        })).collect::<Vec<_>>(),
    });
    let out = std::path::Path::new("bench_results");
    std::fs::create_dir_all(out).expect("create bench_results/");
    let path = out.join("paper_table.json");
    std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).expect("write results");
    eprintln!("\nwrote {}", path.display());
}
