//! Static pre-flight analysis of the demo queries — no execution.
//!
//! Runs every Q1–Q8 plan through `nebula::analysis` under each
//! execution target (local, partitioned ×4, placed edge-first) and
//! prints the diagnostics with per-plan analysis cost. Exits nonzero
//! if any plan produces an error-severity diagnostic, so CI can gate
//! on the demo suite staying clean.
//!
//! ```text
//! cargo run --release -p nebulameos-bench --bin analyze [-- --json]
//! ```

use nebula::prelude::{AnalysisReport, PlacementStrategy, Query, Target};
use nebulameos_bench::Workload;

struct Analyzed {
    query: &'static str,
    target: &'static str,
    report: AnalysisReport,
}

fn analyze_all(workload: &Workload) -> Vec<Analyzed> {
    let env = workload.environment();
    let cluster = workload.cluster_environment();
    let mut out = Vec::new();
    for (name, query) in nebulameos::all_demo_queries() {
        let targets: [(&'static str, AnalysisReport); 3] = [
            ("local", env.analyze(&query).expect("source is registered")),
            (
                "partitioned(4)",
                env.analyze_for(&query, Target::Partitioned { parallelism: 4 })
                    .expect("source is registered"),
            ),
            (
                "placed(edge-first)",
                cluster
                    .analyze(&query, PlacementStrategy::EdgeFirst)
                    .expect("source is hosted"),
            ),
        ];
        for (target, report) in targets {
            out.push(Analyzed {
                query: name,
                target,
                report,
            });
        }
    }
    out
}

fn print_text(results: &[Analyzed]) {
    let mut slowest = 0u64;
    for r in results {
        let status = if r.report.has_errors() {
            "REJECTED"
        } else if r.report.is_clean() {
            "clean"
        } else {
            "warnings"
        };
        println!(
            "{:<26} {:<20} {:>8}  {:>5} µs",
            r.query, r.target, status, r.report.elapsed_us
        );
        for line in r.report.render().lines() {
            println!("    {line}");
        }
        slowest = slowest.max(r.report.elapsed_us);
    }
    println!(
        "\n{} plan/target combinations analyzed; slowest {slowest} µs",
        results.len()
    );
}

fn print_json(results: &[Analyzed]) {
    let plans: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "query": r.query,
                "target": r.target,
                "report": r.report.to_json(),
            })
        })
        .collect();
    let doc = serde_json::json!({ "plans": plans });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serializes")
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // Analysis never executes the plan; a minimal workload is only
    // needed for the source schemas and loaded plugins.
    let workload = Workload::generate(1, 1_000);
    let results = analyze_all(&workload);

    if json {
        print_json(&results);
    } else {
        print_text(&results);
    }

    let errors: usize = results.iter().map(|r| r.report.errors().count()).sum();
    if errors > 0 {
        eprintln!("{errors} error diagnostic(s) across the demo suite");
        std::process::exit(1);
    }
}

/// A smoke query that should be rejected — used to check the exit-code
/// path manually: `cargo run --bin analyze -- --self-test`.
#[allow(dead_code)]
fn self_test(workload: &Workload) -> bool {
    use nebula::prelude::{col, lit};
    let env = workload.environment();
    let bad = Query::from("fleet").filter(col("no_such_column").gt(lit(1.0)));
    env.analyze(&bad).expect("source registered").has_errors()
}
