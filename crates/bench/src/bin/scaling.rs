//! Parallel-scaling measurement: the canonical keyed-window fleet query
//! under `run` and `run_partitioned` at parallelism 1, 2 and 4, with the
//! columnar batch path on (`Auto`) and off, printed as JSON on stdout.
//!
//! ```text
//! cargo run --release -p nebulameos-bench --bin scaling
//! ```
//!
//! Interpretation caveat: parallel speedup requires parallel hardware.
//! On a single-core host (`cores: 1` below) the partitioned runtime adds
//! routing and merge work on top of the same per-record work, so par-N
//! can only approach — never beat — the single-threaded rate there.

use nebula::prelude::*;
use nebulameos_bench::{keyed_window_query, Workload};

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("note: running a debug build; use --release for meaningful rates");
    }
    let w = Workload::standard();
    let q = keyed_window_query();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let one = |columnar: ColumnarMode, parallelism: usize| -> f64 {
        let mut env = w.environment();
        env.config_mut().columnar = columnar;
        let (mut sink, _) = CountingSink::new();
        let m = if parallelism == 0 {
            env.run(&q, &mut sink).expect("single run")
        } else {
            env.config_mut().parallelism = parallelism;
            env.run_partitioned(&q, &mut sink).expect("partitioned run")
        };
        m.events_per_sec() / 1e3
    };

    let mut modes = Vec::new();
    // `Auto` declines the transpose for a bare window head (no vectorized
    // kernel downstream), so it should track `row`; `Force` pins the
    // columnar path to expose whole-buffer routing in the partitioned
    // modes.
    for (label, mode) in [
        ("row", ColumnarMode::Off),
        ("auto", ColumnarMode::Auto),
        ("forced-columnar", ColumnarMode::Force),
    ] {
        modes.push(serde_json::json!({
            "mode": label,
            "single_keps": one(mode, 0),
            "par1_keps": one(mode, 1),
            "par2_keps": one(mode, 2),
            "par4_keps": one(mode, 4),
        }));
    }
    let json = serde_json::json!({
        "query": "keyed_window_query",
        "workload_events": w.records.len(),
        "cores": cores,
        "modes": modes,
    });
    println!("{}", serde_json::to_string_pretty(&json).unwrap());
}
