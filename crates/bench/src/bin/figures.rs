//! Regenerates the paper's figures as data artifacts:
//!
//! - **Figure 1** (architecture): the sensor→edge→cloud topology with
//!   the edge-first operator placement, printed and saved as JSON.
//! - **Figure 2** (SNCB data visualization): train routes, zone
//!   overlays and sampled positions as GeoJSON.
//! - **Figure 3 a–h** (query visualizations): each demo query's alert
//!   stream as a GeoJSON feature collection a Deck.gl-style client can
//!   render directly.
//!
//! ```text
//! cargo run --release -p nebulameos-bench --bin figures
//! ```

use nebula::prelude::*;
use nebulameos::viz;
use nebulameos_bench::{demo_queries, Workload, PAPER_RESULTS};
use serde_json::{json, Map};

fn main() {
    let out = std::path::Path::new("figures");
    std::fs::create_dir_all(out).expect("create figures/");

    // ------------------------------------------------------------------
    // Figure 1: architecture / topology with placement.
    // ------------------------------------------------------------------
    let (topo, sensors) = Topology::train_fleet(6);
    let query = demo_queries().remove(0);
    let placement = place(&query, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
    println!("Figure 1 — topology (6 trains):");
    for node in topo.nodes() {
        println!("  {:?} {}", node.kind, node.name);
    }
    println!(
        "  Q1 edge-first placement: {:?}",
        placement
            .stages
            .iter()
            .map(|n| topo.node(*n).name.clone())
            .collect::<Vec<_>>()
    );
    let fig1 = json!({
        "nodes": topo.nodes().iter().map(|n| json!({
            "name": n.name, "kind": format!("{:?}", n.kind),
        })).collect::<Vec<_>>(),
        "links": topo.links().iter().map(|l| json!({
            "from": topo.node(l.from).name,
            "to": topo.node(l.to).name,
            "bandwidth_mbps": l.bandwidth_mbps,
            "latency_ms": l.latency_ms,
        })).collect::<Vec<_>>(),
        "q1_placement": placement.stages.iter()
            .map(|n| topo.node(*n).name.clone()).collect::<Vec<_>>(),
    });
    viz::write_json(out.join("fig1_architecture.json"), &fig1).unwrap();

    // ------------------------------------------------------------------
    // Figure 2: the fleet dataset on the map.
    // ------------------------------------------------------------------
    eprintln!("generating workload for figures...");
    let workload = Workload::generate(60, 1_000);
    let schema = sncb::fleet_schema();

    let mut features: Vec<serde_json::Value> = Vec::new();
    // Routes as linestrings.
    for route in &workload.net.routes {
        let mut props = Map::new();
        props.insert("route".into(), json!(route.name));
        props.insert("kind".into(), json!("route"));
        props.insert(
            "length_km".into(),
            json!((route.length_m() / 1000.0).round()),
        );
        features.push(viz::feature(&viz::line_geometry(&route.track), &props));
    }
    // Zones as polygons.
    for zone in &workload.net.zones {
        let mut props = Map::new();
        props.insert("zone".into(), json!(zone.name));
        props.insert("kind".into(), json!(format!("{:?}", zone.kind)));
        features.push(viz::feature(&viz::zone_geometry(&zone.geometry), &props));
    }
    // Train positions sampled every 30 s.
    let sampled: Vec<Record> = workload.records.iter().step_by(30 * 6).cloned().collect();
    features.extend(viz::records_to_features(&sampled, &schema, "pos"));
    let fig2 = viz::feature_collection(&features);
    viz::write_json(out.join("fig2_fleet.geojson"), &fig2).unwrap();
    println!(
        "Figure 2 — fleet map: {} routes, {} zones, {} position samples",
        workload.net.routes.len(),
        workload.net.zones.len(),
        sampled.len()
    );

    // ------------------------------------------------------------------
    // Figure 3 a–h: per-query alert visualizations.
    // ------------------------------------------------------------------
    // Position field in each query's *output* schema.
    let pos_fields = ["pos", "at", "pos", "pos", "pos", "at", "stop_pos", "pos"];
    let letters = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let slugs = [
        "alert_filtering",
        "noise_monitoring",
        "speed_monitoring",
        "weather_speed_zones",
        "battery_monitoring",
        "heavy_load",
        "unscheduled_stops",
        "brake_monitoring",
    ];

    for (i, query) in demo_queries().into_iter().enumerate() {
        let mut env = workload.environment();
        let (mut sink, got) = CollectingSink::new();
        let metrics = env.run(&query, &mut sink).expect("query runs");
        let out_schema = compile(&query, schema.clone(), env.registry())
            .map(|p| p.output_schema)
            .unwrap_or_else(|_| schema.clone());
        let records = got.records();
        // Cap the artifact size; figures are illustrative.
        let cap: Vec<Record> = records.iter().take(2_000).cloned().collect();
        let features = viz::records_to_features(&cap, &out_schema, pos_fields[i]);
        let n = features.len();
        let doc = json!({
            "query": PAPER_RESULTS[i].name,
            "records_in": metrics.records_in,
            "alerts": records.len(),
            "geojson": viz::feature_collection(&features),
        });
        let path = out.join(format!("fig3{}_{}.json", letters[i], slugs[i]));
        viz::write_json(&path, &doc).unwrap();
        println!(
            "Figure 3{} — {}: {} alerts ({} plotted) -> {}",
            letters[i],
            PAPER_RESULTS[i].name,
            records.len(),
            n,
            path.display()
        );
    }
    println!("done; artifacts in figures/");
}
