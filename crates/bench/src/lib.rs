//! Shared benchmark harness: the paper's reported numbers, the workload
//! builder, and the measurement loop used by `paper_table`, `figures`
//! and the criterion benches.

use nebula::prelude::*;
use sncb::{FleetConfig, FleetSimulator, RailNetwork, WeatherField};

/// One row of the paper's evaluation (§3.1–§3.2): reported throughput in
/// MB and thousands of events per second.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Query id (1–8).
    pub id: u8,
    /// Query name as in the paper.
    pub name: &'static str,
    /// Reported MB (per second of ingest).
    pub paper_mb: f64,
    /// Reported thousands of events per second.
    pub paper_keps: f64,
}

/// The paper's reported per-query throughput ("Table 1").
pub const PAPER_RESULTS: [PaperRow; 8] = [
    PaperRow {
        id: 1,
        name: "Q1 Alert Filtering",
        paper_mb: 2.24,
        paper_keps: 20.0,
    },
    PaperRow {
        id: 2,
        name: "Q2 Noise Monitoring",
        paper_mb: 2.24,
        paper_keps: 20.0,
    },
    PaperRow {
        id: 3,
        name: "Q3 Dynamic Speed Limit",
        paper_mb: 2.24,
        paper_keps: 20.0,
    },
    PaperRow {
        id: 4,
        name: "Q4 Weather Speed Zones",
        paper_mb: 2.24,
        paper_keps: 20.0,
    },
    PaperRow {
        id: 5,
        name: "Q5 Battery Monitoring",
        paper_mb: 0.61,
        paper_keps: 8.0,
    },
    PaperRow {
        id: 6,
        name: "Q6 Heavy Passenger Load",
        paper_mb: 3.68,
        paper_keps: 32.0,
    },
    PaperRow {
        id: 7,
        name: "Q7 Unscheduled Stops",
        paper_mb: 0.40,
        paper_keps: 10.0,
    },
    PaperRow {
        id: 8,
        name: "Q8 Monitoring Brakes",
        paper_mb: 2.24,
        paper_keps: 20.0,
    },
];

/// The demo queries in paper order with the standard parameterization.
pub fn demo_queries() -> Vec<Query> {
    nebulameos::all_demo_queries()
        .into_iter()
        .map(|(_, q)| q)
        .collect()
}

/// A materialized benchmark workload: one fleet dataset plus everything
/// needed to rebuild environments cheaply.
pub struct Workload {
    /// The network behind the dataset.
    pub net: std::sync::Arc<RailNetwork>,
    /// The weather field used during generation.
    pub weather: WeatherField,
    /// The records.
    pub records: Vec<Record>,
}

impl Workload {
    /// Generates `minutes` of fleet data at the given sensor tick.
    pub fn generate(minutes: i64, tick_ms: i64) -> Workload {
        let cfg = FleetConfig {
            tick: meos::time::TimeDelta::from_millis(tick_ms),
            duration: meos::time::TimeDelta::from_minutes(minutes),
            ..FleetConfig::demo_hour()
        };
        let sim = FleetSimulator::new(cfg);
        let net = sim.network();
        let weather = sim.weather().clone();
        let records = sim.into_records();
        Workload {
            net,
            weather,
            records,
        }
    }

    /// The standard measurement workload (~86k events: one demo hour at
    /// 250 ms ticks).
    pub fn standard() -> Workload {
        Workload::generate(60, 250)
    }

    /// A small workload for fast criterion iterations.
    pub fn small() -> Workload {
        Workload::generate(10, 1_000)
    }

    /// Builds an environment replaying this workload.
    pub fn environment(&self) -> StreamEnvironment {
        sncb::demo::demo_environment_with(&self.net, self.weather.clone(), self.records.clone())
    }

    /// Runs a query over the workload, discarding results into a
    /// counting sink; returns the metrics.
    pub fn run(&self, query: &Query) -> QueryMetrics {
        let mut env = self.environment();
        let (mut sink, _) = CountingSink::new();
        env.run(query, &mut sink).expect("query runs")
    }

    /// Runs a query partitioned across `parallelism` workers, discarding
    /// results into a counting sink; returns the merged metrics.
    pub fn run_partitioned(&self, query: &Query, parallelism: usize) -> QueryMetrics {
        let mut env = self.environment();
        env.config_mut().parallelism = parallelism;
        let (mut sink, _) = CountingSink::new();
        env.run_partitioned(query, &mut sink)
            .expect("partitioned query runs")
    }

    /// Builds a cluster environment over a one-train sensors→edge→cloud
    /// topology hosting this workload's records, with the demo plugins
    /// and MEOS wire codecs loaded.
    pub fn cluster_environment(&self) -> ClusterEnvironment {
        let (topo, sensors) = Topology::train_fleet(1);
        let mut env = ClusterEnvironment::new(topo);
        env.load_plugin(&nebulameos::MeosPlugin)
            .expect("meos plugin");
        env.load_plugin(
            &nebulameos::DemoContext::new(sncb::demo_zones(&self.net))
                .with_weather(std::sync::Arc::new(self.weather.clone())),
        )
        .expect("demo context");
        nebulameos::register_meos_codecs(env.wire_registry_mut());
        env.add_source(
            "fleet",
            sensors[0],
            Box::new(VecSource::new(sncb::fleet_schema(), self.records.clone())),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        env
    }

    /// Runs a query distributed under `strategy`, returning the report
    /// with measured per-link traffic ([`ClusterMetrics`]).
    pub fn run_placed(&self, query: &Query, strategy: PlacementStrategy) -> ClusterReport {
        let mut env = self.cluster_environment();
        let (mut sink, _) = CountingSink::new();
        env.run_placed(query, strategy, &mut sink)
            .expect("cluster query runs")
    }
}

/// Measured uplink bytes for a query under edge-first versus cloud-only
/// placement — the paper's "process at the edge" claim from actual wire
/// traffic rather than the analytic estimator.
#[derive(Debug, Clone, Copy)]
pub struct UplinkComparison {
    /// Uplink bytes with edge-first placement (pre-aggregation on).
    pub edge_bytes: u64,
    /// Uplink bytes shipping everything to the cloud.
    pub cloud_bytes: u64,
}

impl UplinkComparison {
    /// Cloud-over-edge byte ratio (how many times fewer uplink bytes
    /// edge processing moves).
    pub fn reduction(&self) -> f64 {
        self.cloud_bytes as f64 / self.edge_bytes.max(1) as f64
    }
}

/// Measures both placements' uplink traffic for one query.
pub fn measure_uplink(workload: &Workload, query: &Query) -> UplinkComparison {
    UplinkComparison {
        edge_bytes: workload
            .run_placed(query, PlacementStrategy::EdgeFirst)
            .cluster
            .uplink_bytes,
        cloud_bytes: workload
            .run_placed(query, PlacementStrategy::CloudOnly)
            .cluster
            .uplink_bytes,
    }
}

/// The canonical partitionable fleet query for scaling measurements: a
/// per-train tumbling-window speed/load profile, hash-partitioned by
/// `train_id` under `run_partitioned`.
pub fn keyed_window_query() -> Query {
    Query::from("fleet").window(
        vec![("train", col("train_id"))],
        WindowSpec::Tumbling {
            size: 60 * MICROS_PER_SEC,
        },
        vec![
            WindowAgg::new("n", AggSpec::Count),
            WindowAgg::new("avg_speed", AggSpec::Avg(col("speed_kmh"))),
            WindowAgg::new("max_passengers", AggSpec::Max(col("passengers"))),
        ],
    )
}

/// The sliding-window overlap factors (`size/slide`) the stream-slicing
/// sweep measures: a 64 s window sliding by 64, 16, 4 and 1 s.
pub const OVERLAP_FACTORS: [i64; 4] = [1, 4, 16, 64];

/// Window length of the overlap sweep (seconds).
pub const OVERLAP_WINDOW_S: i64 = 64;

/// A dense synthetic stream for the overlap sweep: `n` records at 100
/// events per second of event time across 6 train keys — dense enough
/// that each `gcd(size, slide)` slice aggregates many records, which is
/// where shared slices beat eager per-window accumulation.
pub fn overlap_stream(n: i64) -> (SchemaRef, Vec<Record>) {
    let schema = Schema::of(&[
        ("ts", DataType::Timestamp),
        ("train", DataType::Int),
        ("v", DataType::Float),
    ]);
    let records = (0..n)
        .map(|i| {
            Record::new(vec![
                Value::Timestamp(i * 10_000), // 100 events / simulated second
                Value::Int(i % 6),
                Value::Float(((i * 7) % 600) as f64),
            ])
        })
        .collect();
    (schema, records)
}

/// The sweep's keyed sliding-window query at one overlap factor.
pub fn overlap_query(overlap: i64) -> Query {
    Query::from("s").window(
        vec![("train", col("train"))],
        WindowSpec::Sliding {
            size: OVERLAP_WINDOW_S * MICROS_PER_SEC,
            slide: OVERLAP_WINDOW_S / overlap * MICROS_PER_SEC,
        },
        vec![
            WindowAgg::new("n", AggSpec::Count),
            WindowAgg::new("avg_v", AggSpec::Avg(col("v"))),
            WindowAgg::new("max_v", AggSpec::Max(col("v"))),
        ],
    )
}

/// One measured point of the stream-slicing overlap sweep.
#[derive(Debug, Clone, Copy)]
pub struct OverlapPoint {
    /// `size/slide`.
    pub overlap: i64,
    /// Slide step in seconds.
    pub slide_s: i64,
    /// Sustained ingest, events per second.
    pub events_per_sec: f64,
    /// Amortized cost per record in nanoseconds.
    pub ns_per_event: f64,
    /// Window rows emitted (grows with the overlap factor by design).
    pub records_out: u64,
}

/// Runs the overlap sweep over `n` records: with stream slicing each
/// record folds into exactly one slice whatever the overlap, so
/// `ns_per_event` stays roughly flat as `size/slide` grows from 1 to 64
/// — where eager per-window accumulation degrades linearly.
pub fn measure_overlap_sweep(n: i64) -> Vec<OverlapPoint> {
    let (schema, records) = overlap_stream(n);
    OVERLAP_FACTORS
        .iter()
        .map(|&overlap| {
            let mut env = StreamEnvironment::new();
            env.add_source(
                "s",
                Box::new(VecSource::new(schema.clone(), records.clone())),
                WatermarkStrategy::BoundedOutOfOrder {
                    ts_field: "ts".into(),
                    slack: 5 * MICROS_PER_SEC,
                },
            );
            let (mut sink, _) = CountingSink::new();
            let m = env
                .run(&overlap_query(overlap), &mut sink)
                .expect("sweep query runs");
            OverlapPoint {
                overlap,
                slide_s: OVERLAP_WINDOW_S / overlap,
                events_per_sec: m.events_per_sec(),
                ns_per_event: m.wall.as_nanos() as f64 / m.records_in.max(1) as f64,
                records_out: m.records_out,
            }
        })
        .collect()
}

/// A measured row next to the paper's reported numbers.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// The paper row.
    pub paper: PaperRow,
    /// Our metrics (single-threaded `run`, what the paper measures).
    pub metrics: QueryMetrics,
    /// Metrics for the same query under `run_partitioned` at
    /// parallelism 4.
    pub par4: QueryMetrics,
    /// Measured uplink bytes, edge-first vs cloud-only placement.
    pub uplink: UplinkComparison,
}

impl MeasuredRow {
    /// True iff this machine sustains at least the paper's reported
    /// ingest rate for the query.
    pub fn sustains_paper_rate(&self) -> bool {
        self.metrics.events_per_sec() >= self.paper.paper_keps * 1_000.0
    }
}

/// Runs all eight queries over one workload: single-threaded,
/// partitioned at parallelism 4, and distributed under both placements.
pub fn measure_all(workload: &Workload) -> Vec<MeasuredRow> {
    PAPER_RESULTS
        .iter()
        .zip(demo_queries())
        .map(|(paper, query)| MeasuredRow {
            paper: *paper,
            metrics: workload.run(&query),
            par4: workload.run_partitioned(&query, 4),
            uplink: measure_uplink(workload, &query),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generates() {
        let w = Workload::generate(2, 1_000);
        assert_eq!(w.records.len(), 720);
        let m = w.run(&demo_queries()[2]);
        assert_eq!(m.records_in, 720);
    }

    #[test]
    fn partitioned_run_ingests_everything() {
        let w = Workload::generate(2, 1_000);
        let reference = w.run(&keyed_window_query());
        assert_eq!(reference.records_in, 720);
        for p in [1, 2, 4] {
            let m = w.run_partitioned(&keyed_window_query(), p);
            assert_eq!(m.records_in, reference.records_in, "parallelism {p}");
            assert_eq!(m.records_out, reference.records_out, "parallelism {p}");
        }
    }

    #[test]
    fn cluster_run_matches_local_counters_and_cuts_uplink() {
        let w = Workload::generate(2, 1_000);
        let q = keyed_window_query();
        let reference = w.run(&q);
        let edge = w.run_placed(&q, PlacementStrategy::EdgeFirst);
        let cloud = w.run_placed(&q, PlacementStrategy::CloudOnly);
        assert_eq!(edge.metrics.records_in, reference.records_in);
        assert_eq!(edge.metrics.records_out, reference.records_out);
        assert_eq!(cloud.metrics.records_out, reference.records_out);
        let uplink = UplinkComparison {
            edge_bytes: edge.cluster.uplink_bytes,
            cloud_bytes: cloud.cluster.uplink_bytes,
        };
        assert!(
            uplink.reduction() > 2.0,
            "windowing at the edge must cut uplink bytes: {uplink:?}"
        );
    }

    #[test]
    fn paper_rows_ratio_sane() {
        // The paper's implied per-event payloads range from 40 B (Q7's
        // narrow stop records) to ~115 B (full sensor tuples).
        for r in PAPER_RESULTS {
            let bytes_per_event = r.paper_mb * 1e6 / (r.paper_keps * 1e3);
            assert!(
                (35.0..125.0).contains(&bytes_per_event),
                "{}: {bytes_per_event}",
                r.name
            );
        }
    }
}
