//! Temporal-float specific operations: time-weighted statistics, threshold
//! restriction with exact linear crossings, derivatives and arithmetic.

use super::instant::TInstant;
use super::seqset::TSequenceSet;
use super::sequence::TSequence;
use super::value::Interp;
use crate::time::{Period, PeriodSet, TimestampTz};

impl TSequence<f64> {
    /// Time-weighted average of the value. Linear sequences use exact
    /// trapezoidal integration; step sequences weight each value by its
    /// holding time; discrete sequences degrade to the arithmetic mean.
    pub fn twavg(&self) -> f64 {
        let n = self.num_instants();
        if n == 1 || self.interp() == Interp::Discrete {
            let sum: f64 = self.values().sum();
            return sum / n as f64;
        }
        let total = self.duration().as_secs_f64();
        if total == 0.0 {
            return self.start_value();
        }
        self.integral() / total
    }

    /// Integral of the value over time (value·seconds).
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for (a, b) in self.segments() {
            let dt = (b.t - a.t).as_secs_f64();
            acc += match self.interp() {
                Interp::Linear => (a.value + b.value) * 0.5 * dt,
                _ => a.value * dt,
            };
        }
        acc
    }

    /// Periods where the value is `>= threshold`. Exact: linear segments
    /// contribute the sub-interval up to/from the crossing time.
    pub fn at_above(&self, threshold: f64) -> PeriodSet {
        self.threshold_periods(threshold, true)
    }

    /// Periods where the value is `<= threshold`.
    pub fn at_below(&self, threshold: f64) -> PeriodSet {
        self.threshold_periods(threshold, false)
    }

    /// Time at which the value equals `v` exactly: plateaus become
    /// periods, linear crossings become degenerate instant-periods
    /// (MEOS `tnumber_at_value`). Computed as `at_above(v) ∩ at_below(v)`.
    pub fn at_value(&self, v: f64) -> PeriodSet {
        self.at_above(v).intersection(&self.at_below(v))
    }

    /// The sequence restricted to the times where the value equals `v`.
    pub fn at_value_seq(&self, v: f64) -> Vec<TSequence<f64>> {
        self.at_periodset(&self.at_value(v))
    }

    /// The sequence with the times where the value equals `v` removed
    /// (MEOS `tnumber_minus_value`).
    pub fn minus_value(&self, v: f64) -> Vec<TSequence<f64>> {
        let keep = PeriodSet::from_span(self.period()).minus(&self.at_value(v));
        self.at_periodset(&keep)
    }

    fn threshold_periods(&self, c: f64, above: bool) -> PeriodSet {
        let sat = |v: f64| if above { v >= c } else { v <= c };
        if self.interp() == Interp::Discrete || self.num_instants() == 1 {
            let pts = self
                .instants()
                .iter()
                .filter(|i| sat(i.value))
                .map(|i| Period::point(i.t))
                .collect();
            return PeriodSet::from_spans(pts);
        }
        let mut periods: Vec<Period> = Vec::new();
        for (a, b) in self.segments() {
            match self.interp() {
                Interp::Step => {
                    // a.value holds over [a.t, b.t).
                    if sat(a.value) {
                        periods.push(
                            Period::new(a.t, b.t, true, false).expect("segment period valid"),
                        );
                    }
                }
                _ => {
                    let (sa, sb) = (sat(a.value), sat(b.value));
                    match (sa, sb) {
                        (true, true) => periods.push(Period::inclusive(a.t, b.t).unwrap()),
                        (false, false) => {}
                        _ => {
                            let tc = crossing_time(a, b, c);
                            if sa {
                                periods.push(Period::inclusive(a.t, tc).unwrap());
                            } else {
                                periods.push(Period::inclusive(tc, b.t).unwrap());
                            }
                        }
                    }
                }
            }
        }
        // Final instant of a step sequence holds only at its own timestamp.
        if self.interp() == Interp::Step && sat(self.end_value()) && self.upper_inc() {
            periods.push(Period::point(self.end_timestamp()));
        }
        PeriodSet::from_spans(periods)
    }

    /// Rate of change per second as a step sequence (one rate per segment,
    /// the last instant repeating the final rate). Zero everywhere for
    /// step interpolation.
    pub fn derivative(&self) -> Option<TSequence<f64>> {
        if self.num_instants() < 2 || self.interp() == Interp::Discrete {
            return None;
        }
        let mut out = Vec::with_capacity(self.num_instants());
        let mut last_rate = 0.0;
        for (a, b) in self.segments() {
            let dt = (b.t - a.t).as_secs_f64();
            last_rate = if self.interp() == Interp::Linear && dt > 0.0 {
                (b.value - a.value) / dt
            } else {
                0.0
            };
            out.push(TInstant::new(last_rate, a.t));
        }
        out.push(TInstant::new(last_rate, self.end_timestamp()));
        Some(
            TSequence::new(out, self.lower_inc(), self.upper_inc(), Interp::Step)
                .expect("derivative sequence valid"),
        )
    }

    /// Adds a constant.
    pub fn offset(&self, c: f64) -> TSequence<f64> {
        self.map(|v| v + c)
    }

    /// Multiplies by a constant.
    pub fn scale(&self, c: f64) -> TSequence<f64> {
        self.map(|v| v * c)
    }

    /// Absolute value. NOTE: exact only when the sign is constant per
    /// segment; zero crossings of linear segments are inserted.
    pub fn abs(&self) -> TSequence<f64> {
        if self.interp() != Interp::Linear {
            return self.map(|v| v.abs());
        }
        let mut out: Vec<TInstant<f64>> = Vec::with_capacity(self.num_instants());
        out.push(TInstant::new(
            self.start_value().abs(),
            self.start_timestamp(),
        ));
        for (a, b) in self.segments() {
            if (a.value < 0.0 && b.value > 0.0) || (a.value > 0.0 && b.value < 0.0) {
                let tc = crossing_time(a, b, 0.0);
                if tc > a.t && tc < b.t {
                    out.push(TInstant::new(0.0, tc));
                }
            }
            out.push(TInstant::new(b.value.abs(), b.t));
        }
        TSequence::new(out, self.lower_inc(), self.upper_inc(), Interp::Linear)
            .expect("abs sequence valid")
    }
}

/// Time where the linear segment `a`→`b` attains value `c`.
fn crossing_time(a: &TInstant<f64>, b: &TInstant<f64>, c: f64) -> TimestampTz {
    let dv = b.value - a.value;
    if dv.abs() < f64::EPSILON {
        return a.t;
    }
    let frac = ((c - a.value) / dv).clamp(0.0, 1.0);
    let dt = (b.t - a.t).micros() as f64;
    TimestampTz::from_micros(a.t.micros() + (frac * dt).round() as i64)
}

impl TSequenceSet<f64> {
    /// Duration-weighted average across all member sequences.
    pub fn twavg(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in self.sequences() {
            let d = s.duration().as_secs_f64();
            if d > 0.0 {
                num += s.integral();
                den += d;
            }
        }
        if den == 0.0 {
            // All members are instants: plain mean.
            let (sum, n) = self.sequences().iter().fold((0.0, 0usize), |acc, s| {
                (acc.0 + s.values().sum::<f64>(), acc.1 + s.num_instants())
            });
            sum / n as f64
        } else {
            num / den
        }
    }

    /// Periods where the value is `>= threshold`, across all members.
    pub fn at_above(&self, threshold: f64) -> PeriodSet {
        self.sequences().iter().fold(PeriodSet::empty(), |acc, s| {
            acc.union(&s.at_above(threshold))
        })
    }

    /// Periods where the value is `<= threshold`, across all members.
    pub fn at_below(&self, threshold: f64) -> PeriodSet {
        self.sequences().iter().fold(PeriodSet::empty(), |acc, s| {
            acc.union(&s.at_below(threshold))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn lin(vals: &[(f64, i64)]) -> TSequence<f64> {
        TSequence::linear(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    #[test]
    fn twavg_linear_trapezoid() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        assert_eq!(s.twavg(), 5.0);
        let asym = lin(&[(0.0, 0), (10.0, 10), (10.0, 30)]);
        // 50 + 200 over 30 s.
        assert!((asym.twavg() - 250.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn twavg_step_weights_holding_time() {
        let s = TSequence::step(vec![
            TInstant::new(10.0, t(0)),
            TInstant::new(0.0, t(30)),
            TInstant::new(0.0, t(40)),
        ])
        .unwrap();
        // 10 held for 30 s, 0 for 10 s.
        assert!((s.twavg() - 300.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn at_above_exact_crossings() {
        let s = lin(&[(0.0, 0), (10.0, 10), (0.0, 20)]);
        let ps = s.at_above(5.0);
        assert_eq!(ps.num_spans(), 1);
        let p = ps.spans()[0];
        assert_eq!(p.lower(), t(5));
        assert_eq!(p.upper(), t(15));
    }

    #[test]
    fn at_above_multiple_excursions() {
        let s = lin(&[(0.0, 0), (10.0, 10), (0.0, 20), (10.0, 30)]);
        let ps = s.at_above(9.0);
        assert_eq!(ps.num_spans(), 2);
        assert_eq!(ps.spans()[0].lower(), t(9));
        assert_eq!(ps.spans()[1].upper(), t(30));
    }

    #[test]
    fn at_below_and_boundaries() {
        let s = lin(&[(10.0, 0), (0.0, 10)]);
        let ps = s.at_below(2.0);
        assert_eq!(ps.num_spans(), 1);
        assert_eq!(ps.spans()[0].lower(), t(8));
        assert_eq!(ps.spans()[0].upper(), t(10));
        // Entirely below.
        assert_eq!(s.at_below(100.0).num_spans(), 1);
        // Never below.
        assert!(s.at_below(-1.0).is_empty());
    }

    #[test]
    fn at_above_step() {
        let s = TSequence::step(vec![
            TInstant::new(1.0, t(0)),
            TInstant::new(5.0, t(10)),
            TInstant::new(1.0, t(20)),
        ])
        .unwrap();
        let ps = s.at_above(3.0);
        assert_eq!(ps.num_spans(), 1);
        assert_eq!(ps.spans()[0].lower(), t(10));
        assert_eq!(ps.spans()[0].upper(), t(20));
        assert!(!ps.spans()[0].upper_inc());
    }

    #[test]
    fn at_above_discrete() {
        let s =
            TSequence::discrete(vec![TInstant::new(1.0, t(0)), TInstant::new(5.0, t(10))]).unwrap();
        let ps = s.at_above(3.0);
        assert_eq!(ps.num_spans(), 1);
        assert!(ps.spans()[0].is_instant());
    }

    #[test]
    fn derivative_rates() {
        let s = lin(&[(0.0, 0), (10.0, 10), (10.0, 20)]);
        let d = s.derivative().unwrap();
        assert_eq!(d.interp(), Interp::Step);
        assert_eq!(d.value_at(t(5)), Some(1.0));
        assert_eq!(d.value_at(t(15)), Some(0.0));
        assert!(lin(&[(0.0, 0)]).derivative().is_none());
    }

    #[test]
    fn arithmetic_and_abs() {
        let s = lin(&[(-5.0, 0), (5.0, 10)]);
        assert_eq!(s.offset(5.0).start_value(), 0.0);
        assert_eq!(s.scale(2.0).end_value(), 10.0);
        let a = s.abs();
        assert_eq!(a.value_at(t(5)), Some(0.0), "zero crossing inserted");
        assert_eq!(a.value_at(t(0)), Some(5.0));
        assert_eq!(a.num_instants(), 3);
    }

    #[test]
    fn at_value_crossings_and_plateaus() {
        // Rises through 5, plateaus at 10, falls through 5 again.
        let s = TSequence::linear(vec![
            TInstant::new(0.0, t(0)),
            TInstant::new(10.0, t(10)),
            TInstant::new(10.0, t(20)),
            TInstant::new(0.0, t(30)),
        ])
        .unwrap();
        let at5 = s.at_value(5.0);
        assert_eq!(at5.num_spans(), 2);
        assert!(at5.spans()[0].is_instant());
        assert_eq!(at5.spans()[0].lower(), t(5));
        assert_eq!(at5.spans()[1].lower(), t(25));
        let at10 = s.at_value(10.0);
        assert_eq!(at10.num_spans(), 1);
        assert_eq!(at10.spans()[0].lower(), t(10));
        assert_eq!(at10.spans()[0].upper(), t(20));
        assert!(s.at_value(99.0).is_empty(), "never attained");
    }

    #[test]
    fn at_value_seq_and_minus_value_partition() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        let at = s.at_value_seq(5.0);
        assert_eq!(at.len(), 1);
        assert_eq!(at[0].num_instants(), 1);
        assert_eq!(at[0].start_value(), 5.0);
        let minus = s.minus_value(5.0);
        assert_eq!(minus.len(), 2);
        assert_eq!(minus[0].end_timestamp(), t(5));
        assert!(!minus[0].period().upper_inc(), "cut instant excluded");
        assert_eq!(minus[1].start_timestamp(), t(5));
        // Value never present -> identity.
        let whole = s.minus_value(99.0);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].num_instants(), 2);
    }

    #[test]
    fn at_value_step_sequence() {
        let s = TSequence::step(vec![
            TInstant::new(1.0, t(0)),
            TInstant::new(2.0, t(10)),
            TInstant::new(1.0, t(20)),
        ])
        .unwrap();
        let at1 = s.at_value(1.0);
        // Held over [0,10) and at the final instant [20,20].
        assert!(at1.contains_value(t(5)));
        assert!(!at1.contains_value(t(15)));
        assert!(at1.contains_value(t(20)));
    }

    #[test]
    fn seqset_stats() {
        let ss = TSequenceSet::new(vec![
            lin(&[(0.0, 0), (10.0, 10)]),
            lin(&[(20.0, 20), (20.0, 30)]),
        ])
        .unwrap();
        // (50 + 200) / 20s
        assert!((ss.twavg() - 12.5).abs() < 1e-12);
        let above = ss.at_above(15.0);
        assert_eq!(above.num_spans(), 1);
        assert_eq!(above.spans()[0].lower(), t(20));
    }
}
