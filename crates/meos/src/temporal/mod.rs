//! Temporal types: values that evolve over time.
//!
//! MEOS models a temporal value at three granularities:
//!
//! - [`TInstant`] — one value at one timestamp,
//! - [`TSequence`] — a run of instants with an interpolation
//!   ([`Interp::Discrete`], [`Interp::Step`] or [`Interp::Linear`]) and
//!   per-bound inclusivity,
//! - [`TSequenceSet`] — an ordered set of disjoint sequences (a value with
//!   temporal gaps).
//!
//! [`Temporal`] is the sum type used by generic code. All types are generic
//! over the base value via [`TempValue`], implemented here for `bool`,
//! `i64`, `f64`, `String` and [`crate::geo::Point`].

mod instant;
mod lifting;
mod seqset;
mod sequence;
mod tfloat;
mod value;

pub use instant::TInstant;
pub use lifting::{sync_apply, TurningFn};
pub use seqset::TSequenceSet;
pub use sequence::TSequence;
pub use value::{Interp, TempValue};

use crate::error::Result;
use crate::time::{Period, TimeDelta, TimestampTz};
use serde::{Deserialize, Serialize};

/// A temporal value at any granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Temporal<V: TempValue> {
    /// A single timestamped value.
    Instant(TInstant<V>),
    /// A contiguous evolution of the value.
    Sequence(TSequence<V>),
    /// An evolution with gaps.
    SequenceSet(TSequenceSet<V>),
}

impl<V: TempValue> Temporal<V> {
    /// Total number of instants across all components.
    pub fn num_instants(&self) -> usize {
        match self {
            Temporal::Instant(_) => 1,
            Temporal::Sequence(s) => s.num_instants(),
            Temporal::SequenceSet(ss) => ss.num_instants(),
        }
    }

    /// Tight period covering the value.
    pub fn period(&self) -> Period {
        match self {
            Temporal::Instant(i) => Period::point(i.t),
            Temporal::Sequence(s) => s.period(),
            Temporal::SequenceSet(ss) => ss.period(),
        }
    }

    /// Time over which the value is actually defined (gaps excluded).
    pub fn duration(&self) -> TimeDelta {
        match self {
            Temporal::Instant(_) => TimeDelta::ZERO,
            Temporal::Sequence(s) => s.duration(),
            Temporal::SequenceSet(ss) => ss.duration(),
        }
    }

    /// Value at timestamp `t`, if defined there.
    pub fn value_at(&self, t: TimestampTz) -> Option<V> {
        match self {
            Temporal::Instant(i) => (i.t == t).then(|| i.value.clone()),
            Temporal::Sequence(s) => s.value_at(t),
            Temporal::SequenceSet(ss) => ss.value_at(t),
        }
    }

    /// First value in time order.
    pub fn start_value(&self) -> V {
        match self {
            Temporal::Instant(i) => i.value.clone(),
            Temporal::Sequence(s) => s.start_value(),
            Temporal::SequenceSet(ss) => ss.start_value(),
        }
    }

    /// Last value in time order.
    pub fn end_value(&self) -> V {
        match self {
            Temporal::Instant(i) => i.value.clone(),
            Temporal::Sequence(s) => s.end_value(),
            Temporal::SequenceSet(ss) => ss.end_value(),
        }
    }

    /// First timestamp.
    pub fn start_timestamp(&self) -> TimestampTz {
        self.period().lower()
    }

    /// Last timestamp.
    pub fn end_timestamp(&self) -> TimestampTz {
        self.period().upper()
    }

    /// True iff the predicate holds for *some* instant value.
    ///
    /// For continuous interpolation this inspects the stored instants;
    /// exact for monotone predicates (comparisons against constants), the
    /// only kind MEOS's `ever_*` family exposes.
    pub fn ever(&self, pred: impl Fn(&V) -> bool) -> bool {
        match self {
            Temporal::Instant(i) => pred(&i.value),
            Temporal::Sequence(s) => s.ever(pred),
            Temporal::SequenceSet(ss) => ss.ever(pred),
        }
    }

    /// True iff the predicate holds for *every* instant value.
    pub fn always(&self, pred: impl Fn(&V) -> bool) -> bool {
        match self {
            Temporal::Instant(i) => pred(&i.value),
            Temporal::Sequence(s) => s.always(pred),
            Temporal::SequenceSet(ss) => ss.always(pred),
        }
    }

    /// Restricts to a period; `None` when the result is empty.
    pub fn at_period(&self, p: &Period) -> Option<Temporal<V>> {
        match self {
            Temporal::Instant(i) => p.contains_value(i.t).then(|| Temporal::Instant(i.clone())),
            Temporal::Sequence(s) => s.at_period(p).map(seq_or_instant),
            Temporal::SequenceSet(ss) => {
                let restricted = ss.at_period(p)?;
                Some(simplify_seqset(restricted))
            }
        }
    }

    /// The component sequences as a normalized view (an instant becomes a
    /// singleton sequence).
    pub fn to_sequences(&self) -> Vec<TSequence<V>> {
        match self {
            Temporal::Instant(i) => {
                vec![TSequence::singleton(i.clone(), V::default_interp())]
            }
            Temporal::Sequence(s) => vec![s.clone()],
            Temporal::SequenceSet(ss) => ss.sequences().to_vec(),
        }
    }

    /// Shifts the whole value in time.
    pub fn shift(&self, delta: TimeDelta) -> Temporal<V> {
        match self {
            Temporal::Instant(i) => Temporal::Instant(TInstant::new(i.value.clone(), i.t + delta)),
            Temporal::Sequence(s) => Temporal::Sequence(s.shift(delta)),
            Temporal::SequenceSet(ss) => Temporal::SequenceSet(ss.shift(delta)),
        }
    }

    /// Builds the simplest Temporal holding the given sequences.
    pub fn from_sequences(seqs: Vec<TSequence<V>>) -> Result<Temporal<V>> {
        let ss = TSequenceSet::new(seqs)?;
        Ok(simplify_seqset(ss))
    }
}

/// Collapses a singleton sequence into an instant where possible.
fn seq_or_instant<V: TempValue>(s: TSequence<V>) -> Temporal<V> {
    if s.num_instants() == 1 {
        Temporal::Instant(s.instants()[0].clone())
    } else {
        Temporal::Sequence(s)
    }
}

/// Collapses a one-sequence set into its sequence/instant form.
fn simplify_seqset<V: TempValue>(ss: TSequenceSet<V>) -> Temporal<V> {
    if ss.num_sequences() == 1 {
        seq_or_instant(ss.into_sequences().pop().expect("one sequence"))
    } else {
        Temporal::SequenceSet(ss)
    }
}

impl<V: TempValue> From<TInstant<V>> for Temporal<V> {
    fn from(i: TInstant<V>) -> Self {
        Temporal::Instant(i)
    }
}

impl<V: TempValue> From<TSequence<V>> for Temporal<V> {
    fn from(s: TSequence<V>) -> Self {
        Temporal::Sequence(s)
    }
}

impl<V: TempValue> From<TSequenceSet<V>> for Temporal<V> {
    fn from(ss: TSequenceSet<V>) -> Self {
        Temporal::SequenceSet(ss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{TimeDelta, TimestampTz};

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn fseq(vals: &[(f64, i64)]) -> TSequence<f64> {
        TSequence::linear(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    #[test]
    fn temporal_delegation() {
        let temp: Temporal<f64> = fseq(&[(1.0, 0), (3.0, 10)]).into();
        assert_eq!(temp.num_instants(), 2);
        assert_eq!(temp.start_value(), 1.0);
        assert_eq!(temp.end_value(), 3.0);
        assert_eq!(temp.duration(), TimeDelta::from_secs(10));
        assert_eq!(temp.value_at(t(5)), Some(2.0));
        assert!(temp.ever(|v| *v > 2.5));
        assert!(!temp.always(|v| *v > 2.5));
    }

    #[test]
    fn at_period_simplifies() {
        let temp: Temporal<f64> = fseq(&[(1.0, 0), (3.0, 10)]).into();
        let p = Period::inclusive(t(5), t(5)).unwrap();
        match temp.at_period(&p) {
            Some(Temporal::Instant(i)) => {
                assert_eq!(i.value, 2.0);
                assert_eq!(i.t, t(5));
            }
            other => panic!("expected instant, got {other:?}"),
        }
        assert!(temp
            .at_period(&Period::inclusive(t(100), t(200)).unwrap())
            .is_none());
    }

    #[test]
    fn instant_roundtrip() {
        let temp: Temporal<f64> = TInstant::new(5.0, t(7)).into();
        assert_eq!(temp.period(), Period::point(t(7)));
        assert_eq!(temp.value_at(t(7)), Some(5.0));
        assert_eq!(temp.value_at(t(8)), None);
        let shifted = temp.shift(TimeDelta::from_secs(3));
        assert_eq!(shifted.value_at(t(10)), Some(5.0));
    }

    #[test]
    fn from_sequences_builds_simplest_form() {
        let a = fseq(&[(1.0, 0), (2.0, 10)]);
        let b = fseq(&[(5.0, 20), (6.0, 30)]);
        let one = Temporal::from_sequences(vec![a.clone()]).unwrap();
        assert!(matches!(one, Temporal::Sequence(_)));
        let two = Temporal::from_sequences(vec![a, b]).unwrap();
        assert!(matches!(two, Temporal::SequenceSet(_)));
        assert_eq!(two.num_instants(), 4);
        assert_eq!(two.duration(), TimeDelta::from_secs(20));
    }
}
