//! [`TInstant`]: a single timestamped value.

use super::value::TempValue;
use crate::time::TimestampTz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One value observed at one instant — the atom of every temporal type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TInstant<V: TempValue> {
    /// The observed value.
    pub value: V,
    /// When it was observed.
    pub t: TimestampTz,
}

impl<V: TempValue> TInstant<V> {
    /// Builds an instant.
    pub fn new(value: V, t: TimestampTz) -> Self {
        TInstant { value, t }
    }

    /// Maps the value, keeping the timestamp.
    pub fn map<U: TempValue>(&self, f: impl FnOnce(&V) -> U) -> TInstant<U> {
        TInstant::new(f(&self.value), self.t)
    }
}

impl<V: TempValue + fmt::Display> fmt::Display for TInstant<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_map() {
        let t = TimestampTz::from_unix_secs(100);
        let i = TInstant::new(2.5f64, t);
        assert_eq!(i.value, 2.5);
        assert_eq!(i.t, t);
        let doubled = i.map(|v| (v * 2.0) as i64);
        assert_eq!(doubled.value, 5);
        assert_eq!(doubled.t, t);
    }

    #[test]
    fn display() {
        let t = TimestampTz::from_ymd_hms(2025, 6, 22, 10, 0, 0).unwrap();
        assert_eq!(
            TInstant::new(2.5f64, t).to_string(),
            "2.5@2025-06-22T10:00:00Z"
        );
    }
}
