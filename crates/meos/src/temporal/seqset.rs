//! [`TSequenceSet`]: a temporal value with gaps.

use super::sequence::TSequence;
use super::value::{Interp, TempValue};
use crate::error::{MeosError, Result};
use crate::time::{Period, PeriodSet, TimeDelta, TimestampTz};
use serde::{Deserialize, Serialize};

/// An ordered set of temporally disjoint sequences — the MEOS
/// representation for values observed with interruptions (tunnels,
/// connectivity gaps, parked vehicles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TSequenceSet<V: TempValue> {
    sequences: Vec<TSequence<V>>,
}

impl<V: TempValue> TSequenceSet<V> {
    /// Builds a set from sequences; sorts by start time and validates
    /// pairwise disjointness and a homogeneous interpolation.
    pub fn new(mut sequences: Vec<TSequence<V>>) -> Result<Self> {
        if sequences.is_empty() {
            return Err(MeosError::Empty("sequence set"));
        }
        sequences.sort_by_key(|s| s.start_timestamp());
        let interp = sequences[0].interp();
        for w in sequences.windows(2) {
            if w.iter().any(|s| s.interp() != interp) {
                return Err(MeosError::InvalidArgument(
                    "mixed interpolations in sequence set".into(),
                ));
            }
            if !w[0].period().is_before(&w[1].period()) {
                return Err(MeosError::InvalidArgument(format!(
                    "overlapping sequences at {}",
                    w[1].start_timestamp()
                )));
            }
        }
        Ok(TSequenceSet { sequences })
    }

    /// The member sequences in time order.
    pub fn sequences(&self) -> &[TSequence<V>] {
        &self.sequences
    }

    /// Consumes the set, yielding the member sequences.
    pub fn into_sequences(self) -> Vec<TSequence<V>> {
        self.sequences
    }

    /// Number of member sequences.
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Total number of instants.
    pub fn num_instants(&self) -> usize {
        self.sequences.iter().map(|s| s.num_instants()).sum()
    }

    /// The interpolation shared by all members.
    pub fn interp(&self) -> Interp {
        self.sequences[0].interp()
    }

    /// Bounding period from first start to last end.
    pub fn period(&self) -> Period {
        let first = self.sequences.first().expect("non-empty");
        let last = self.sequences.last().expect("non-empty");
        Period::new(
            first.start_timestamp(),
            last.end_timestamp(),
            first.lower_inc(),
            last.upper_inc(),
        )
        .expect("seqset period valid")
    }

    /// The set of periods over which the value is defined.
    pub fn period_set(&self) -> PeriodSet {
        PeriodSet::from_spans(self.sequences.iter().map(|s| s.period()).collect())
    }

    /// Summed duration of the member sequences (gaps excluded).
    pub fn duration(&self) -> TimeDelta {
        self.sequences
            .iter()
            .fold(TimeDelta::ZERO, |acc, s| acc + s.duration())
    }

    /// First value.
    pub fn start_value(&self) -> V {
        self.sequences[0].start_value()
    }

    /// Last value.
    pub fn end_value(&self) -> V {
        self.sequences.last().expect("non-empty").end_value()
    }

    /// Value at `t`, if some member sequence is defined there.
    pub fn value_at(&self, t: TimestampTz) -> Option<V> {
        let idx = self.sequences.partition_point(|s| s.start_timestamp() <= t);
        if idx == 0 {
            return self.sequences[0].value_at(t);
        }
        self.sequences[idx - 1]
            .value_at(t)
            .or_else(|| self.sequences.get(idx).and_then(|s| s.value_at(t)))
    }

    /// Restricts to a period; `None` when disjoint.
    pub fn at_period(&self, p: &Period) -> Option<TSequenceSet<V>> {
        let kept: Vec<_> = self
            .sequences
            .iter()
            .filter_map(|s| s.at_period(p))
            .collect();
        if kept.is_empty() {
            None
        } else {
            Some(TSequenceSet { sequences: kept })
        }
    }

    /// True iff the predicate holds at some instant.
    pub fn ever(&self, pred: impl Fn(&V) -> bool) -> bool {
        self.sequences.iter().any(|s| s.ever(&pred))
    }

    /// True iff the predicate holds at every instant.
    pub fn always(&self, pred: impl Fn(&V) -> bool) -> bool {
        self.sequences.iter().all(|s| s.always(&pred))
    }

    /// Shifts every member by `delta`.
    pub fn shift(&self, delta: TimeDelta) -> TSequenceSet<V> {
        TSequenceSet {
            sequences: self.sequences.iter().map(|s| s.shift(delta)).collect(),
        }
    }

    /// Maps values, preserving structure.
    pub fn map<U: TempValue>(&self, f: impl Fn(&V) -> U) -> TSequenceSet<U> {
        TSequenceSet {
            sequences: self.sequences.iter().map(|s| s.map(&f)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::TInstant;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn seq(vals: &[(f64, i64)]) -> TSequence<f64> {
        TSequence::linear(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    fn set() -> TSequenceSet<f64> {
        TSequenceSet::new(vec![
            seq(&[(0.0, 0), (10.0, 10)]),
            seq(&[(20.0, 20), (30.0, 30)]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_sorts_and_validates() {
        let ss = TSequenceSet::new(vec![
            seq(&[(20.0, 20), (30.0, 30)]),
            seq(&[(0.0, 0), (10.0, 10)]),
        ])
        .unwrap();
        assert_eq!(ss.sequences()[0].start_timestamp(), t(0));

        assert!(TSequenceSet::<f64>::new(vec![]).is_err());
        assert!(TSequenceSet::new(vec![
            seq(&[(0.0, 0), (10.0, 10)]),
            seq(&[(5.0, 5), (6.0, 15)]),
        ])
        .is_err());
    }

    #[test]
    fn rejects_mixed_interp() {
        let a = seq(&[(0.0, 0), (1.0, 10)]);
        let b =
            TSequence::step(vec![TInstant::new(2.0, t(20)), TInstant::new(3.0, t(30))]).unwrap();
        assert!(TSequenceSet::new(vec![a, b]).is_err());
    }

    #[test]
    fn accessors() {
        let ss = set();
        assert_eq!(ss.num_sequences(), 2);
        assert_eq!(ss.num_instants(), 4);
        assert_eq!(ss.duration(), TimeDelta::from_secs(20));
        assert_eq!(ss.period().duration(), TimeDelta::from_secs(30));
        assert_eq!(ss.start_value(), 0.0);
        assert_eq!(ss.end_value(), 30.0);
        assert_eq!(ss.period_set().num_spans(), 2);
    }

    #[test]
    fn value_at_handles_gaps() {
        let ss = set();
        assert_eq!(ss.value_at(t(5)), Some(5.0));
        assert_eq!(ss.value_at(t(15)), None, "inside the gap");
        assert_eq!(ss.value_at(t(20)), Some(20.0));
        assert_eq!(ss.value_at(t(30)), Some(30.0));
        assert_eq!(ss.value_at(t(31)), None);
    }

    #[test]
    fn at_period_drops_and_trims() {
        let ss = set();
        let r = ss
            .at_period(&Period::inclusive(t(5), t(25)).unwrap())
            .unwrap();
        assert_eq!(r.num_sequences(), 2);
        assert_eq!(r.sequences()[0].start_value(), 5.0);
        assert_eq!(r.sequences()[1].end_value(), 25.0);
        assert!(ss
            .at_period(&Period::inclusive(t(12), t(18)).unwrap())
            .is_none());
    }

    #[test]
    fn ever_always_shift_map() {
        let ss = set();
        assert!(ss.ever(|v| *v >= 30.0));
        assert!(!ss.always(|v| *v >= 10.0));
        let sh = ss.shift(TimeDelta::from_secs(100));
        assert_eq!(sh.period().lower(), t(100));
        let m = ss.map(|v| v > &5.0);
        assert_eq!(m.num_instants(), 4);
        assert_eq!(m.interp(), Interp::Step);
    }
}
