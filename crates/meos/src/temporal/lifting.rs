//! Lifting of binary functions over synchronized temporal values.
//!
//! To evaluate `f(a, b)` over two temporal values, MEOS synchronizes them:
//! restrict both to the common period, take the union of their instants,
//! optionally insert *turning points* (timestamps where `f` over a pair of
//! linear segments attains a local extremum — e.g. the closest approach of
//! two moving points), and evaluate `f` at every resulting timestamp.

use super::instant::TInstant;
use super::sequence::TSequence;
use super::value::{Interp, TempValue};
use crate::time::TimestampTz;

/// Computes an optional turning-point fraction in `(0, 1)` for one pair of
/// synchronized segments, given the segment endpoint values of both inputs.
pub type TurningFn<A, B> = fn(&A, &A, &B, &B) -> Option<f64>;

/// Applies `f` to two synchronized sequences, producing a sequence of the
/// result type. Returns `None` when the inputs do not overlap in time.
///
/// Both inputs must be continuous (step/linear); discrete inputs are
/// synchronized on their common timestamps only.
pub fn sync_apply<A, B, C>(
    a: &TSequence<A>,
    b: &TSequence<B>,
    f: impl Fn(&A, &B) -> C,
    turning: Option<TurningFn<A, B>>,
) -> Option<TSequence<C>>
where
    A: TempValue,
    B: TempValue,
    C: TempValue,
{
    let out_interp = if C::can_linear() {
        Interp::Linear
    } else {
        Interp::Step
    };

    if a.interp() == Interp::Discrete || b.interp() == Interp::Discrete {
        // Intersect timestamps exactly.
        let out: Vec<TInstant<C>> = a
            .instants()
            .iter()
            .filter_map(|ia| {
                b.value_at(ia.t)
                    .map(|bv| TInstant::new(f(&ia.value, &bv), ia.t))
            })
            .collect();
        return TSequence::new(out, true, true, Interp::Discrete).ok();
    }

    let int = a.period().intersection(&b.period())?;
    if int.is_instant() {
        let t = int.lower();
        let v = f(&a.value_at(t)?, &b.value_at(t)?);
        return Some(TSequence::singleton(TInstant::new(v, t), out_interp));
    }

    // Union of instants within the intersection, plus its boundaries.
    let mut times: Vec<TimestampTz> = Vec::with_capacity(a.num_instants() + b.num_instants() + 2);
    times.push(int.lower());
    for t in a.timestamps().chain(b.timestamps()) {
        if t > int.lower() && t < int.upper() {
            times.push(t);
        }
    }
    times.push(int.upper());
    times.sort_unstable();
    times.dedup();

    // Insert turning points between consecutive sync times.
    if let Some(turn) = turning {
        let mut extra: Vec<TimestampTz> = Vec::new();
        for w in times.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            let (a0, a1) = (a.ivalue(t0), a.ivalue(t1));
            let (b0, b1) = (b.ivalue(t0), b.ivalue(t1));
            if let Some(frac) = turn(&a0, &a1, &b0, &b1) {
                if frac > 0.0 && frac < 1.0 {
                    let dt = (t1 - t0).micros() as f64;
                    let tt = TimestampTz::from_micros(t0.micros() + (frac * dt).round() as i64);
                    if tt > t0 && tt < t1 {
                        extra.push(tt);
                    }
                }
            }
        }
        times.extend(extra);
        times.sort_unstable();
        times.dedup();
    }

    let out: Vec<TInstant<C>> = times
        .iter()
        .map(|&t| TInstant::new(f(&a.ivalue(t), &b.ivalue(t)), t))
        .collect();
    TSequence::new(out, int.lower_inc(), int.upper_inc(), out_interp).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn lin(vals: &[(f64, i64)]) -> TSequence<f64> {
        TSequence::linear(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    #[test]
    fn adds_two_tfloats() {
        let a = lin(&[(0.0, 0), (10.0, 10)]);
        let b = lin(&[(5.0, 5), (5.0, 20)]);
        let sum = sync_apply(&a, &b, |x, y| x + y, None).unwrap();
        // Overlap is [5, 10].
        assert_eq!(sum.start_timestamp(), t(5));
        assert_eq!(sum.end_timestamp(), t(10));
        assert_eq!(sum.value_at(t(5)), Some(10.0));
        assert_eq!(sum.value_at(t(10)), Some(15.0));
    }

    #[test]
    fn no_overlap_is_none() {
        let a = lin(&[(0.0, 0), (1.0, 5)]);
        let b = lin(&[(0.0, 10), (1.0, 15)]);
        assert!(sync_apply(&a, &b, |x, y| x + y, None).is_none());
    }

    #[test]
    fn sync_includes_union_of_instants() {
        let a = lin(&[(0.0, 0), (10.0, 10)]);
        let b = lin(&[(0.0, 0), (4.0, 4), (10.0, 10)]);
        let sum = sync_apply(&a, &b, |x, y| x + y, None).unwrap();
        assert_eq!(sum.num_instants(), 3, "instant at t=4 from b");
        assert_eq!(sum.value_at(t(4)), Some(8.0));
    }

    #[test]
    fn turning_point_inserted() {
        // |a - b| has a minimum where the linear segments cross.
        let a = lin(&[(0.0, 0), (10.0, 10)]);
        let b = lin(&[(10.0, 0), (0.0, 10)]);
        let turn: TurningFn<f64, f64> = |a0, a1, b0, b1| {
            let d0 = a0 - b0;
            let d1 = a1 - b1;
            if (d0 < 0.0) != (d1 < 0.0) {
                Some(d0.abs() / (d0 - d1).abs())
            } else {
                None
            }
        };
        let diff = sync_apply(&a, &b, |x, y| (x - y).abs(), Some(turn)).unwrap();
        assert_eq!(diff.num_instants(), 3);
        assert_eq!(diff.value_at(t(5)), Some(0.0), "crossing captured");
    }

    #[test]
    fn discrete_inputs_intersect_timestamps() {
        let a = TSequence::discrete(vec![
            TInstant::new(1.0, t(0)),
            TInstant::new(2.0, t(10)),
            TInstant::new(3.0, t(20)),
        ])
        .unwrap();
        let b = TSequence::discrete(vec![TInstant::new(10.0, t(10)), TInstant::new(10.0, t(30))])
            .unwrap();
        let sum = sync_apply(&a, &b, |x, y| x + y, None).unwrap();
        assert_eq!(sum.num_instants(), 1);
        assert_eq!(sum.value_at(t(10)), Some(12.0));
    }

    #[test]
    fn instant_overlap_yields_singleton() {
        let a = lin(&[(0.0, 0), (10.0, 10)]);
        let b = lin(&[(1.0, 10), (2.0, 20)]);
        let s = sync_apply(&a, &b, |x, y| x * y, None).unwrap();
        assert_eq!(s.num_instants(), 1);
        assert_eq!(s.value_at(t(10)), Some(10.0));
    }
}
