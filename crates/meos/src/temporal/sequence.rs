//! [`TSequence`]: a run of instants under one interpolation.

use super::instant::TInstant;
use super::value::{Interp, TempValue};
use crate::error::{MeosError, Result};
use crate::time::{Period, PeriodSet, TimeDelta, TimestampTz};
use serde::{Deserialize, Serialize};

/// A temporal sequence: at least one instant, strictly increasing
/// timestamps, an interpolation, and inclusive/exclusive period bounds.
///
/// Invariants (enforced by every constructor):
/// - `instants` is non-empty and strictly increasing in time;
/// - a single-instant sequence has both bounds inclusive;
/// - discrete sequences have both bounds inclusive;
/// - `Interp::Linear` is only used for types with meaningful interpolation
///   ([`TempValue::can_linear`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TSequence<V: TempValue> {
    instants: Vec<TInstant<V>>,
    lower_inc: bool,
    upper_inc: bool,
    interp: Interp,
}

impl<V: TempValue> TSequence<V> {
    /// Builds a sequence, validating all invariants.
    pub fn new(
        instants: Vec<TInstant<V>>,
        lower_inc: bool,
        upper_inc: bool,
        interp: Interp,
    ) -> Result<Self> {
        if instants.is_empty() {
            return Err(MeosError::Empty("sequence"));
        }
        if interp == Interp::Linear && !V::can_linear() {
            return Err(MeosError::InvalidArgument(
                "linear interpolation unsupported for this base type".into(),
            ));
        }
        for w in instants.windows(2) {
            if w[0].t >= w[1].t {
                return Err(MeosError::InvalidArgument(format!(
                    "instants not strictly increasing at {}",
                    w[1].t
                )));
            }
        }
        let (lower_inc, upper_inc) = if instants.len() == 1 || interp == Interp::Discrete {
            (true, true)
        } else {
            (lower_inc, upper_inc)
        };
        Ok(TSequence {
            instants,
            lower_inc,
            upper_inc,
            interp,
        })
    }

    /// Linear sequence with inclusive bounds.
    pub fn linear(instants: Vec<TInstant<V>>) -> Result<Self> {
        TSequence::new(instants, true, true, Interp::Linear)
    }

    /// Step sequence with inclusive bounds.
    pub fn step(instants: Vec<TInstant<V>>) -> Result<Self> {
        TSequence::new(instants, true, true, Interp::Step)
    }

    /// Discrete sequence (isolated samples).
    pub fn discrete(instants: Vec<TInstant<V>>) -> Result<Self> {
        TSequence::new(instants, true, true, Interp::Discrete)
    }

    /// Single-instant sequence.
    pub fn singleton(instant: TInstant<V>, interp: Interp) -> Self {
        TSequence {
            instants: vec![instant],
            lower_inc: true,
            upper_inc: true,
            interp,
        }
    }

    /// The instants in time order.
    pub fn instants(&self) -> &[TInstant<V>] {
        &self.instants
    }

    /// Number of instants.
    pub fn num_instants(&self) -> usize {
        self.instants.len()
    }

    /// The interpolation.
    pub fn interp(&self) -> Interp {
        self.interp
    }

    /// Whether the lower bound is inclusive.
    pub fn lower_inc(&self) -> bool {
        self.lower_inc
    }

    /// Whether the upper bound is inclusive.
    pub fn upper_inc(&self) -> bool {
        self.upper_inc
    }

    /// First instant.
    pub fn start_instant(&self) -> &TInstant<V> {
        &self.instants[0]
    }

    /// Last instant.
    pub fn end_instant(&self) -> &TInstant<V> {
        self.instants.last().expect("sequence non-empty")
    }

    /// First value.
    pub fn start_value(&self) -> V {
        self.start_instant().value.clone()
    }

    /// Last value.
    pub fn end_value(&self) -> V {
        self.end_instant().value.clone()
    }

    /// First timestamp.
    pub fn start_timestamp(&self) -> TimestampTz {
        self.start_instant().t
    }

    /// Last timestamp.
    pub fn end_timestamp(&self) -> TimestampTz {
        self.end_instant().t
    }

    /// Tight period covering the sequence, honouring bound flags.
    pub fn period(&self) -> Period {
        Period::new(
            self.start_timestamp(),
            self.end_timestamp(),
            self.lower_inc,
            self.upper_inc,
        )
        .expect("sequence period valid")
    }

    /// Elapsed time between first and last instant (zero for discrete
    /// sequences, whose value is undefined between samples).
    pub fn duration(&self) -> TimeDelta {
        if self.interp == Interp::Discrete {
            TimeDelta::ZERO
        } else {
            self.end_timestamp() - self.start_timestamp()
        }
    }

    /// The timestamps in order.
    pub fn timestamps(&self) -> impl Iterator<Item = TimestampTz> + '_ {
        self.instants.iter().map(|i| i.t)
    }

    /// The values in time order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.instants.iter().map(|i| &i.value)
    }

    /// Consecutive instant pairs (the linear/step segments).
    pub fn segments(&self) -> impl Iterator<Item = (&TInstant<V>, &TInstant<V>)> + '_ {
        self.instants.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Interpolated value at `t`, assuming
    /// `start_timestamp() <= t <= end_timestamp()`; ignores bound flags.
    pub(crate) fn ivalue(&self, t: TimestampTz) -> V {
        let idx = self.instants.partition_point(|i| i.t <= t);
        if idx == 0 {
            return self.instants[0].value.clone();
        }
        let prev = &self.instants[idx - 1];
        if prev.t == t || idx == self.instants.len() {
            return prev.value.clone();
        }
        match self.interp {
            Interp::Linear => {
                let next = &self.instants[idx];
                let total = (next.t - prev.t).micros() as f64;
                let frac = (t - prev.t).micros() as f64 / total;
                V::lerp(&prev.value, &next.value, frac)
            }
            _ => prev.value.clone(),
        }
    }

    /// Value at `t`, honouring bounds and interpolation; `None` outside
    /// the definition time.
    pub fn value_at(&self, t: TimestampTz) -> Option<V> {
        if self.interp == Interp::Discrete {
            return self
                .instants
                .binary_search_by(|i| i.t.cmp(&t))
                .ok()
                .map(|idx| self.instants[idx].value.clone());
        }
        if !self.period().contains_value(t) {
            return None;
        }
        Some(self.ivalue(t))
    }

    /// Restricts to the period `p`; `None` when disjoint.
    pub fn at_period(&self, p: &Period) -> Option<TSequence<V>> {
        if self.interp == Interp::Discrete {
            let kept: Vec<_> = self
                .instants
                .iter()
                .filter(|i| p.contains_value(i.t))
                .cloned()
                .collect();
            return if kept.is_empty() {
                None
            } else {
                Some(TSequence::discrete(kept).expect("filtered discrete valid"))
            };
        }
        let int = self.period().intersection(p)?;
        if int.is_instant() {
            let v = self.ivalue(int.lower());
            return Some(TSequence::singleton(
                TInstant::new(v, int.lower()),
                self.interp,
            ));
        }
        let mut out: Vec<TInstant<V>> = Vec::with_capacity(self.instants.len() + 2);
        out.push(TInstant::new(self.ivalue(int.lower()), int.lower()));
        for inst in &self.instants {
            if inst.t > int.lower() && inst.t < int.upper() {
                out.push(inst.clone());
            }
        }
        out.push(TInstant::new(self.ivalue(int.upper()), int.upper()));
        Some(
            TSequence::new(out, int.lower_inc(), int.upper_inc(), self.interp)
                .expect("restricted sequence valid"),
        )
    }

    /// Removes the period `p`, producing the surviving pieces in order.
    pub fn minus_period(&self, p: &Period) -> Vec<TSequence<V>> {
        self.period()
            .minus(p)
            .iter()
            .filter_map(|piece| self.at_period(piece))
            .collect()
    }

    /// Restricts to a period set.
    pub fn at_periodset(&self, ps: &PeriodSet) -> Vec<TSequence<V>> {
        ps.spans()
            .iter()
            .filter_map(|p| self.at_period(p))
            .collect()
    }

    /// True iff the predicate holds at some instant.
    pub fn ever(&self, pred: impl Fn(&V) -> bool) -> bool {
        self.instants.iter().any(|i| pred(&i.value))
    }

    /// True iff the predicate holds at every instant.
    pub fn always(&self, pred: impl Fn(&V) -> bool) -> bool {
        self.instants.iter().all(|i| pred(&i.value))
    }

    /// Appends an instant at the end (streaming build). The timestamp must
    /// be strictly after the current end.
    pub fn push(&mut self, inst: TInstant<V>) -> Result<()> {
        if inst.t <= self.end_timestamp() {
            return Err(MeosError::InvalidArgument(format!(
                "appended instant at {} not after sequence end {}",
                inst.t,
                self.end_timestamp()
            )));
        }
        self.instants.push(inst);
        Ok(())
    }

    /// Shifts every instant by `delta`.
    pub fn shift(&self, delta: TimeDelta) -> TSequence<V> {
        TSequence {
            instants: self
                .instants
                .iter()
                .map(|i| TInstant::new(i.value.clone(), i.t + delta))
                .collect(),
            lower_inc: self.lower_inc,
            upper_inc: self.upper_inc,
            interp: self.interp,
        }
    }

    /// Maps values, preserving timestamps. Linear interpolation degrades
    /// to step when the target type cannot interpolate.
    pub fn map<U: TempValue>(&self, f: impl Fn(&V) -> U) -> TSequence<U> {
        let interp = match self.interp {
            Interp::Linear if !U::can_linear() => Interp::Step,
            other => other,
        };
        TSequence {
            instants: self.instants.iter().map(|i| i.map(&f)).collect(),
            lower_inc: self.lower_inc,
            upper_inc: self.upper_inc,
            interp,
        }
    }
}

impl<V: TempValue + PartialOrd> TSequence<V> {
    /// Minimum instant value (exact for step/linear: extrema of a
    /// piecewise-linear function lie at vertices).
    pub fn min_value(&self) -> V {
        self.instants
            .iter()
            .map(|i| &i.value)
            .fold(None::<&V>, |acc, v| match acc {
                Some(m) if m <= v => Some(m),
                _ => Some(v),
            })
            .expect("sequence non-empty")
            .clone()
    }

    /// Maximum instant value.
    pub fn max_value(&self) -> V {
        self.instants
            .iter()
            .map(|i| &i.value)
            .fold(None::<&V>, |acc, v| match acc {
                Some(m) if m >= v => Some(m),
                _ => Some(v),
            })
            .expect("sequence non-empty")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn lin(vals: &[(f64, i64)]) -> TSequence<f64> {
        TSequence::linear(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    fn stp(vals: &[(i64, i64)]) -> TSequence<i64> {
        TSequence::step(vals.iter().map(|&(v, s)| TInstant::new(v, t(s))).collect()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(TSequence::<f64>::linear(vec![]).is_err());
        let unsorted = vec![TInstant::new(1.0, t(10)), TInstant::new(2.0, t(5))];
        assert!(TSequence::linear(unsorted).is_err());
        let dup = vec![TInstant::new(1.0, t(5)), TInstant::new(2.0, t(5))];
        assert!(TSequence::linear(dup).is_err());
        // bools cannot be linear
        assert!(TSequence::new(
            vec![TInstant::new(true, t(0)), TInstant::new(false, t(1))],
            true,
            true,
            Interp::Linear
        )
        .is_err());
    }

    #[test]
    fn singleton_forces_inclusive() {
        let s =
            TSequence::new(vec![TInstant::new(1.0, t(0))], false, false, Interp::Linear).unwrap();
        assert!(s.lower_inc() && s.upper_inc());
    }

    #[test]
    fn linear_value_at() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        assert_eq!(s.value_at(t(0)), Some(0.0));
        assert_eq!(s.value_at(t(5)), Some(5.0));
        assert_eq!(s.value_at(t(10)), Some(10.0));
        assert_eq!(s.value_at(t(11)), None);
    }

    #[test]
    fn step_value_at() {
        let s = stp(&[(1, 0), (2, 10), (3, 20)]);
        assert_eq!(s.value_at(t(0)), Some(1));
        assert_eq!(s.value_at(t(9)), Some(1));
        assert_eq!(s.value_at(t(10)), Some(2));
        assert_eq!(s.value_at(t(19)), Some(2));
        assert_eq!(s.value_at(t(20)), Some(3));
    }

    #[test]
    fn exclusive_upper_bound() {
        let s = TSequence::new(
            vec![TInstant::new(1.0, t(0)), TInstant::new(2.0, t(10))],
            true,
            false,
            Interp::Linear,
        )
        .unwrap();
        assert_eq!(s.value_at(t(10)), None);
        assert_eq!(s.value_at(t(9)), Some(1.9));
    }

    #[test]
    fn discrete_value_at() {
        let s =
            TSequence::discrete(vec![TInstant::new(1.0, t(0)), TInstant::new(2.0, t(10))]).unwrap();
        assert_eq!(s.value_at(t(0)), Some(1.0));
        assert_eq!(s.value_at(t(5)), None);
        assert_eq!(s.duration(), TimeDelta::ZERO);
    }

    #[test]
    fn at_period_interpolates_boundaries() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        let r = s
            .at_period(&Period::inclusive(t(2), t(8)).unwrap())
            .unwrap();
        assert_eq!(r.num_instants(), 2);
        assert_eq!(r.start_value(), 2.0);
        assert_eq!(r.end_value(), 8.0);
        assert_eq!(r.start_timestamp(), t(2));
    }

    #[test]
    fn at_period_keeps_interior_instants() {
        let s = lin(&[(0.0, 0), (10.0, 10), (0.0, 20)]);
        let r = s
            .at_period(&Period::inclusive(t(5), t(15)).unwrap())
            .unwrap();
        assert_eq!(r.num_instants(), 3);
        assert_eq!(r.instants()[1].value, 10.0);
        assert_eq!(r.start_value(), 5.0);
        assert_eq!(r.end_value(), 5.0);
    }

    #[test]
    fn at_period_disjoint_and_instant() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        assert!(s
            .at_period(&Period::inclusive(t(50), t(60)).unwrap())
            .is_none());
        let single = s.at_period(&Period::point(t(4))).unwrap();
        assert_eq!(single.num_instants(), 1);
        assert_eq!(single.start_value(), 4.0);
    }

    #[test]
    fn at_period_step_boundary_uses_held_value() {
        let s = stp(&[(1, 0), (5, 10)]);
        let r = s
            .at_period(&Period::inclusive(t(3), t(7)).unwrap())
            .unwrap();
        assert_eq!(r.start_value(), 1);
        assert_eq!(r.end_value(), 1, "step holds previous value");
    }

    #[test]
    fn minus_period_splits() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        let parts = s.minus_period(&Period::new(t(4), t(6), true, false).unwrap());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].end_timestamp(), t(4));
        assert!(!parts[0].period().upper_inc(), "cut bound flipped");
        assert_eq!(parts[1].start_timestamp(), t(6));
        assert!(parts[1].period().lower_inc());
    }

    #[test]
    fn at_periodset_multiple_pieces() {
        let s = lin(&[(0.0, 0), (10.0, 10)]);
        let ps = PeriodSet::from_spans(vec![
            Period::inclusive(t(1), t(2)).unwrap(),
            Period::inclusive(t(8), t(9)).unwrap(),
        ]);
        let parts = s.at_periodset(&ps);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].start_value(), 1.0);
        assert_eq!(parts[1].end_value(), 9.0);
    }

    #[test]
    fn ever_always_min_max() {
        let s = lin(&[(1.0, 0), (5.0, 10), (3.0, 20)]);
        assert!(s.ever(|v| *v > 4.0));
        assert!(!s.always(|v| *v > 2.0));
        assert_eq!(s.min_value(), 1.0);
        assert_eq!(s.max_value(), 5.0);
    }

    #[test]
    fn push_appends_in_order() {
        let mut s = lin(&[(1.0, 0)]);
        s.push(TInstant::new(2.0, t(10))).unwrap();
        assert_eq!(s.num_instants(), 2);
        assert!(s.push(TInstant::new(3.0, t(10))).is_err());
        assert!(s.push(TInstant::new(3.0, t(5))).is_err());
    }

    #[test]
    fn shift_and_map() {
        let s = lin(&[(1.0, 0), (2.0, 10)]);
        let sh = s.shift(TimeDelta::from_secs(5));
        assert_eq!(sh.start_timestamp(), t(5));
        assert_eq!(sh.end_timestamp(), t(15));
        let mapped: TSequence<i64> = s.map(|v| (*v as i64) * 10);
        assert_eq!(mapped.interp(), Interp::Step, "i64 cannot be linear");
        assert_eq!(mapped.start_value(), 10);
    }

    #[test]
    fn segments_iterate_pairs() {
        let s = lin(&[(0.0, 0), (1.0, 1), (2.0, 2)]);
        let segs: Vec<_> = s.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0.value, 0.0);
        assert_eq!(segs[1].1.value, 2.0);
    }
}
