//! Base-value trait for temporal types and the interpolation enum.

use crate::geo::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How values evolve between consecutive instants of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interp {
    /// Instants are isolated samples; the value is undefined between them.
    Discrete,
    /// The value holds constant until the next instant.
    Step,
    /// The value varies linearly between instants (floats, points).
    Linear,
}

impl fmt::Display for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interp::Discrete => write!(f, "Discrete"),
            Interp::Step => write!(f, "Step"),
            Interp::Linear => write!(f, "Linear"),
        }
    }
}

/// A type usable as the base value of a temporal type.
pub trait TempValue: Clone + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Interpolates between `a` and `b` at `frac ∈ [0, 1]`. The default is
    /// step semantics (returns `a`).
    fn lerp(a: &Self, b: &Self, _frac: f64) -> Self {
        let _ = b;
        a.clone()
    }

    /// Whether linear interpolation is meaningful for this type.
    fn can_linear() -> bool {
        false
    }

    /// The interpolation MEOS assigns to sequences of this type by default.
    fn default_interp() -> Interp {
        Interp::Step
    }
}

impl TempValue for bool {}

impl TempValue for i64 {}

impl TempValue for String {}

impl TempValue for f64 {
    fn lerp(a: &Self, b: &Self, frac: f64) -> Self {
        a + (b - a) * frac
    }

    fn can_linear() -> bool {
        true
    }

    fn default_interp() -> Interp {
        Interp::Linear
    }
}

impl TempValue for Point {
    fn lerp(a: &Self, b: &Self, frac: f64) -> Self {
        Point::lerp(a, b, frac)
    }

    fn can_linear() -> bool {
        true
    }

    fn default_interp() -> Interp {
        Interp::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_types_ignore_fraction() {
        assert!(!<bool as TempValue>::can_linear());
        assert!(<bool as TempValue>::lerp(&true, &false, 0.9));
        assert_eq!(<i64 as TempValue>::lerp(&1, &100, 0.5), 1);
        assert_eq!(
            <String as TempValue>::lerp(&"a".into(), &"b".into(), 0.5),
            "a"
        );
    }

    #[test]
    fn linear_types_interpolate() {
        assert_eq!(<f64 as TempValue>::lerp(&1.0, &3.0, 0.5), 2.0);
        let p = <Point as TempValue>::lerp(&Point::new(0.0, 0.0), &Point::new(10.0, 20.0), 0.25);
        assert_eq!((p.x, p.y), (2.5, 5.0));
        assert_eq!(<f64 as TempValue>::default_interp(), Interp::Linear);
        assert_eq!(<bool as TempValue>::default_interp(), Interp::Step);
    }
}
