//! Error type shared by all meos modules.

use std::fmt;

/// Errors produced by temporal-type construction, restriction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeosError {
    /// A textual literal could not be parsed; carries a human-readable
    /// description including the offending fragment.
    Parse(String),
    /// A constructor was handed arguments violating a type invariant
    /// (e.g. unsorted instants, an empty sequence, `lower > upper`).
    InvalidArgument(String),
    /// An operation that requires a non-empty temporal value received an
    /// empty one.
    Empty(&'static str),
}

impl fmt::Display for MeosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeosError::Parse(msg) => write!(f, "parse error: {msg}"),
            MeosError::InvalidArgument(msg) => {
                write!(f, "invalid argument: {msg}")
            }
            MeosError::Empty(what) => {
                write!(f, "operation requires a non-empty {what}")
            }
        }
    }
}

impl std::error::Error for MeosError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MeosError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            MeosError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            MeosError::InvalidArgument("lower > upper".into()).to_string(),
            "invalid argument: lower > upper"
        );
        assert_eq!(
            MeosError::Empty("sequence").to_string(),
            "operation requires a non-empty sequence"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MeosError::Empty("period"));
    }
}
