//! Temporal-point operations: the spatiotemporal half of MEOS.
//!
//! Free functions over `TSequence<Point>` / [`Temporal<Point>`]:
//! trajectory accessors (length, speed, azimuth, centroid), restriction
//! (`at_stbox` ≙ MEOS `tpoint_at_stbox`, `at_geometry`), the distance
//! family (`nearest_approach_distance`, `edwithin` ≙ MEOS `edwithin`,
//! `adwithin`, `tdwithin`), stop detection and Douglas–Peucker
//! simplification.
//!
//! ### Exactness notes
//! - `at_stbox` clips linear segments with Liang–Barsky: entry/exit
//!   instants are exact up to timestamp (µs) rounding.
//! - `edwithin` against static geometries is exact: the *ever within
//!   distance* predicate only depends on the spatial trajectory.
//! - `adwithin` and `tdwithin` against non-convex polygons are
//!   approximate between inserted candidate instants (distance to a
//!   non-convex set along a line is piecewise smooth); candidates include
//!   all crossings and per-edge closest approaches, which bounds the error
//!   tightly for rail-scale data.

use crate::boxes::STBox;
use crate::error::Result;
use crate::geo::{segment_intersection_params, Geometry, LineString, Metric, Point};
use crate::temporal::{Interp, TInstant, TSequence, Temporal};
use crate::time::{Period, PeriodSet, TimeDelta, TimestampTz};

/// The purely spatial trace of the sequence.
pub fn trajectory(seq: &TSequence<Point>) -> LineString {
    LineString::new(seq.values().copied().collect())
}

/// Trajectory length under `metric` (metres for haversine).
pub fn length(seq: &TSequence<Point>) -> f64 {
    length_with(seq, Metric::Haversine)
}

/// Trajectory length under an explicit metric.
pub fn length_with(seq: &TSequence<Point>, metric: Metric) -> f64 {
    if seq.interp() == Interp::Discrete {
        return 0.0;
    }
    seq.segments()
        .map(|(a, b)| metric.distance(&a.value, &b.value))
        .sum()
}

/// Cumulative travelled distance as a linear temporal float.
pub fn cumulative_length(seq: &TSequence<Point>, metric: Metric) -> TSequence<f64> {
    let mut out = Vec::with_capacity(seq.num_instants());
    let mut acc = 0.0;
    out.push(TInstant::new(0.0, seq.start_timestamp()));
    for (a, b) in seq.segments() {
        acc += metric.distance(&a.value, &b.value);
        out.push(TInstant::new(acc, b.t));
    }
    TSequence::new(out, seq.lower_inc(), seq.upper_inc(), Interp::Linear)
        .expect("cumulative length valid")
}

/// Speed as a step temporal float (metric units per second, one value per
/// segment). `None` for instants/discrete sequences.
pub fn speed(seq: &TSequence<Point>, metric: Metric) -> Option<TSequence<f64>> {
    if seq.num_instants() < 2 || seq.interp() == Interp::Discrete {
        return None;
    }
    let mut out = Vec::with_capacity(seq.num_instants());
    let mut last = 0.0;
    for (a, b) in seq.segments() {
        let dt = (b.t - a.t).as_secs_f64();
        last = if dt > 0.0 {
            metric.distance(&a.value, &b.value) / dt
        } else {
            0.0
        };
        out.push(TInstant::new(last, a.t));
    }
    out.push(TInstant::new(last, seq.end_timestamp()));
    Some(
        TSequence::new(out, seq.lower_inc(), seq.upper_inc(), Interp::Step)
            .expect("speed sequence valid"),
    )
}

/// Heading in degrees clockwise from north, per segment (step). `None`
/// for instants/discrete sequences.
pub fn azimuth(seq: &TSequence<Point>) -> Option<TSequence<f64>> {
    if seq.num_instants() < 2 || seq.interp() == Interp::Discrete {
        return None;
    }
    let mut out = Vec::with_capacity(seq.num_instants());
    let mut last = 0.0;
    for (a, b) in seq.segments() {
        last = bearing(&a.value, &b.value);
        out.push(TInstant::new(last, a.t));
    }
    out.push(TInstant::new(last, seq.end_timestamp()));
    Some(
        TSequence::new(out, seq.lower_inc(), seq.upper_inc(), Interp::Step)
            .expect("azimuth sequence valid"),
    )
}

/// Initial bearing from `a` to `b` in degrees `[0, 360)`, clockwise from
/// north (planar approximation, adequate at rail scales).
pub fn bearing(a: &Point, b: &Point) -> f64 {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let deg = dx.atan2(dy).to_degrees();
    (deg + 360.0) % 360.0
}

/// Time-weighted centroid of the trajectory.
pub fn twcentroid(seq: &TSequence<Point>) -> Point {
    let n = seq.num_instants();
    if n == 1 || seq.duration().is_zero() {
        let (mut sx, mut sy) = (0.0, 0.0);
        for p in seq.values() {
            sx += p.x;
            sy += p.y;
        }
        return Point::new(sx / n as f64, sy / n as f64);
    }
    let mut ix = 0.0;
    let mut iy = 0.0;
    for (a, b) in seq.segments() {
        let dt = (b.t - a.t).as_secs_f64();
        match seq.interp() {
            Interp::Linear => {
                ix += (a.value.x + b.value.x) * 0.5 * dt;
                iy += (a.value.y + b.value.y) * 0.5 * dt;
            }
            _ => {
                ix += a.value.x * dt;
                iy += a.value.y * dt;
            }
        }
    }
    let total = seq.duration().as_secs_f64();
    Point::new(ix / total, iy / total)
}

/// Liang–Barsky clip of the unit parameter interval of segment `a`→`b`
/// against the spatial extent of `bx`.
fn clip_params(a: &Point, b: &Point, bx: &STBox) -> Option<(f64, f64)> {
    let (mut u0, mut u1) = (0.0f64, 1.0f64);
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let checks = [
        (-dx, a.x - bx.xmin()),
        (dx, bx.xmax() - a.x),
        (-dy, a.y - bx.ymin()),
        (dy, bx.ymax() - a.y),
    ];
    for (p, q) in checks {
        if p.abs() < 1e-30 {
            if q < 0.0 {
                return None;
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                u0 = u0.max(r);
            } else {
                u1 = u1.min(r);
            }
        }
    }
    (u0 <= u1).then_some((u0, u1))
}

fn lerp_time(t0: TimestampTz, t1: TimestampTz, frac: f64) -> TimestampTz {
    let dt = (t1 - t0).micros() as f64;
    TimestampTz::from_micros(t0.micros() + (frac * dt).round() as i64)
}

/// Merges absolute-time inside-intervals and restricts the sequence to
/// each; shared by `at_stbox` / `at_geometry`.
fn restrict_to_intervals(
    seq: &TSequence<Point>,
    mut intervals: Vec<(TimestampTz, TimestampTz)>,
) -> Vec<TSequence<Point>> {
    if intervals.is_empty() {
        return Vec::new();
    }
    intervals.sort_by_key(|&(s, _)| s);
    let mut merged: Vec<(TimestampTz, TimestampTz)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
        .into_iter()
        .filter_map(|(s, e)| {
            let p = Period::inclusive(s, e).ok()?;
            seq.at_period(&p)
        })
        .collect()
}

/// Restricts a temporal point to a spatiotemporal box
/// (MEOS `tpoint_at_stbox`). Returns the surviving pieces in time order.
pub fn at_stbox(seq: &TSequence<Point>, bx: &STBox) -> Vec<TSequence<Point>> {
    // Time dimension first.
    let seq_owned;
    let seq = match &bx.t {
        Some(p) => match seq.at_period(p) {
            Some(s) => {
                seq_owned = s;
                &seq_owned
            }
            None => return Vec::new(),
        },
        None => seq,
    };

    match seq.interp() {
        Interp::Discrete => {
            let kept: Vec<_> = seq
                .instants()
                .iter()
                .filter(|i| bx.contains_point(&i.value))
                .cloned()
                .collect();
            if kept.is_empty() {
                Vec::new()
            } else {
                vec![TSequence::discrete(kept).expect("discrete restriction")]
            }
        }
        Interp::Step => {
            let mut intervals = Vec::new();
            for (a, b) in seq.segments() {
                if bx.contains_point(&a.value) {
                    intervals.push((a.t, b.t));
                }
            }
            if bx.contains_point(&seq.end_value()) {
                let t = seq.end_timestamp();
                intervals.push((t, t));
            }
            restrict_to_intervals(seq, intervals)
        }
        Interp::Linear => {
            if seq.num_instants() == 1 {
                return if bx.contains_point(&seq.start_value()) {
                    vec![seq.clone()]
                } else {
                    Vec::new()
                };
            }
            let mut intervals = Vec::new();
            for (a, b) in seq.segments() {
                if let Some((u0, u1)) = clip_params(&a.value, &b.value, bx) {
                    intervals.push((lerp_time(a.t, b.t, u0), lerp_time(a.t, b.t, u1)));
                }
            }
            restrict_to_intervals(seq, intervals)
        }
    }
}

/// Sorted candidate cut fractions of segment `a`→`b` against a polygon
/// boundary (or line), including 0 and 1.
fn polygon_cuts(a: &Point, b: &Point, edges: impl Iterator<Item = (Point, Point)>) -> Vec<f64> {
    let mut cuts = vec![0.0, 1.0];
    for (e0, e1) in edges {
        if let Some((t, _)) = segment_intersection_params(a, b, &e0, &e1) {
            cuts.push(t);
        }
    }
    cuts.sort_by(|x, y| x.partial_cmp(y).expect("finite fractions"));
    cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    cuts
}

fn geometry_edges(geom: &Geometry) -> Vec<(Point, Point)> {
    match geom {
        Geometry::Polygon(poly) => poly.edges().map(|(a, b)| (*a, *b)).collect(),
        Geometry::Line(l) => l.points.windows(2).map(|w| (w[0], w[1])).collect(),
        _ => Vec::new(),
    }
}

/// Restricts a temporal point to a geometry. Polygons and circles yield
/// the sub-sequences travelled inside; points/lines (measure-zero targets)
/// yield the crossing instants as singleton sequences.
pub fn at_geometry(
    seq: &TSequence<Point>,
    geom: &Geometry,
    metric: Metric,
) -> Vec<TSequence<Point>> {
    match seq.interp() {
        Interp::Discrete => {
            let kept: Vec<_> = seq
                .instants()
                .iter()
                .filter(|i| geom.contains(&i.value, metric))
                .cloned()
                .collect();
            return if kept.is_empty() {
                Vec::new()
            } else {
                vec![TSequence::discrete(kept).expect("discrete restriction")]
            };
        }
        Interp::Step => {
            let mut intervals = Vec::new();
            for (a, b) in seq.segments() {
                if geom.contains(&a.value, metric) {
                    intervals.push((a.t, b.t));
                }
            }
            if geom.contains(&seq.end_value(), metric) {
                let t = seq.end_timestamp();
                intervals.push((t, t));
            }
            return restrict_to_intervals(seq, intervals);
        }
        Interp::Linear => {}
    }
    if seq.num_instants() == 1 {
        return if geom.contains(&seq.start_value(), metric) {
            vec![seq.clone()]
        } else {
            Vec::new()
        };
    }
    let mut intervals: Vec<(TimestampTz, TimestampTz)> = Vec::new();
    match geom {
        Geometry::Polygon(_) | Geometry::Line(_) => {
            let edges = geometry_edges(geom);
            for (a, b) in seq.segments() {
                let cuts = polygon_cuts(&a.value, &b.value, edges.iter().copied());
                for w in cuts.windows(2) {
                    let mid = a.value.lerp(&b.value, (w[0] + w[1]) / 2.0);
                    if geom.contains(&mid, metric) {
                        intervals.push((lerp_time(a.t, b.t, w[0]), lerp_time(a.t, b.t, w[1])));
                    }
                }
                if matches!(geom, Geometry::Line(_)) {
                    // Measure-zero target: crossing instants only.
                    for &c in &cuts[1..cuts.len().saturating_sub(1)] {
                        let tc = lerp_time(a.t, b.t, c);
                        intervals.push((tc, tc));
                    }
                }
            }
        }
        Geometry::Circle { center, radius } => {
            for (a, b) in seq.segments() {
                if let Some((u0, u1)) = circle_clip(&a.value, &b.value, center, *radius, metric) {
                    intervals.push((lerp_time(a.t, b.t, u0), lerp_time(a.t, b.t, u1)));
                }
            }
        }
        Geometry::Point(target) => {
            for (a, b) in seq.segments() {
                let u = metric.closest_point_param(target, &a.value, &b.value);
                let closest = a.value.lerp(&b.value, u);
                if metric.distance(&closest, target) < 1e-9 {
                    let tc = lerp_time(a.t, b.t, u);
                    intervals.push((tc, tc));
                }
            }
        }
    }
    restrict_to_intervals(seq, intervals)
}

/// Parameter interval of segment `a`→`b` inside the circle, in the local
/// planar frame of the circle centre.
fn circle_clip(
    a: &Point,
    b: &Point,
    center: &Point,
    radius: f64,
    metric: Metric,
) -> Option<(f64, f64)> {
    let al = metric.to_local(center, a);
    let bl = metric.to_local(center, b);
    let d = Point::new(bl.x - al.x, bl.y - al.y);
    let qa = d.x * d.x + d.y * d.y;
    let qb = 2.0 * (al.x * d.x + al.y * d.y);
    let qc = al.x * al.x + al.y * al.y - radius * radius;
    if qa < 1e-30 {
        // Stationary segment.
        return (qc <= 0.0).then_some((0.0, 1.0));
    }
    let disc = qb * qb - 4.0 * qa * qc;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let u0 = ((-qb - sq) / (2.0 * qa)).max(0.0);
    let u1 = ((-qb + sq) / (2.0 * qa)).min(1.0);
    (u0 <= u1).then_some((u0, u1))
}

/// Temporal distance to a static geometry: a linear temporal float with
/// instants at the sequence vertices plus closest-approach/crossing
/// candidates per segment.
pub fn distance_to_geometry(
    seq: &TSequence<Point>,
    geom: &Geometry,
    metric: Metric,
) -> TSequence<f64> {
    let mut samples: Vec<TInstant<f64>> = Vec::with_capacity(seq.num_instants() * 2);
    let dist = |p: &Point| geom.distance_to_point(p, metric);
    samples.push(TInstant::new(
        dist(&seq.start_value()),
        seq.start_timestamp(),
    ));
    if seq.interp() != Interp::Discrete {
        for (a, b) in seq.segments() {
            let mut fracs: Vec<f64> = Vec::new();
            match geom {
                Geometry::Point(target) => {
                    fracs.push(metric.closest_point_param(target, &a.value, &b.value));
                }
                Geometry::Circle { center, .. } => {
                    fracs.push(metric.closest_point_param(center, &a.value, &b.value));
                }
                Geometry::Polygon(_) | Geometry::Line(_) => {
                    for (e0, e1) in geometry_edges(geom) {
                        if let Some((t, _)) =
                            segment_intersection_params(&a.value, &b.value, &e0, &e1)
                        {
                            fracs.push(t);
                        }
                        fracs.push(metric.closest_point_param(&e0, &a.value, &b.value));
                        fracs.push(metric.closest_point_param(&e1, &a.value, &b.value));
                    }
                }
            }
            fracs.retain(|f| *f > 1e-9 && *f < 1.0 - 1e-9);
            fracs.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            fracs.dedup_by(|x, y| (*x - *y).abs() < 1e-9);
            for f in fracs {
                let p = a.value.lerp(&b.value, f);
                samples.push(TInstant::new(dist(&p), lerp_time(a.t, b.t, f)));
            }
            samples.push(TInstant::new(dist(&b.value), b.t));
        }
    }
    samples.dedup_by(|x, y| x.t == y.t);
    let interp = if seq.interp() == Interp::Discrete {
        Interp::Discrete
    } else {
        Interp::Linear
    };
    TSequence::new(samples, seq.lower_inc(), seq.upper_inc(), interp)
        .expect("distance sequence valid")
}

/// Smallest distance ever attained between the moving point and a static
/// geometry (MEOS `nearestApproachDistance`). Exact.
pub fn nearest_approach_distance(seq: &TSequence<Point>, geom: &Geometry, metric: Metric) -> f64 {
    if seq.num_instants() == 1 || seq.interp() == Interp::Discrete {
        return seq
            .values()
            .map(|p| geom.distance_to_point(p, metric))
            .fold(f64::INFINITY, f64::min);
    }
    let mut best = f64::INFINITY;
    for (a, b) in seq.segments() {
        let d = match geom {
            Geometry::Point(target) => metric.dist_point_segment(target, &a.value, &b.value),
            Geometry::Circle { center, radius } => {
                (metric.dist_point_segment(center, &a.value, &b.value) - radius).max(0.0)
            }
            Geometry::Polygon(poly) => {
                if poly.contains(&a.value) || poly.contains(&b.value) {
                    0.0
                } else {
                    geometry_edges(geom)
                        .iter()
                        .map(|(e0, e1)| metric.dist_segment_segment(&a.value, &b.value, e0, e1))
                        .fold(f64::INFINITY, f64::min)
                }
            }
            Geometry::Line(_) => geometry_edges(geom)
                .iter()
                .map(|(e0, e1)| metric.dist_segment_segment(&a.value, &b.value, e0, e1))
                .fold(f64::INFINITY, f64::min),
        };
        best = best.min(d);
        if best == 0.0 {
            break;
        }
    }
    best
}

/// MEOS `edwithin`: true iff the moving point is *ever* within distance
/// `d` of the geometry. Exact for static targets.
pub fn edwithin(seq: &TSequence<Point>, geom: &Geometry, d: f64, metric: Metric) -> bool {
    nearest_approach_distance(seq, geom, metric) <= d
}

/// MEOS `adwithin`: true iff the moving point is *always* within distance
/// `d`. Exact for point/circle targets (distance along a segment is
/// convex, maxima at vertices); for polygons/lines midpoints are sampled
/// as a non-convexity guard.
pub fn adwithin(seq: &TSequence<Point>, geom: &Geometry, d: f64, metric: Metric) -> bool {
    let within = |p: &Point| geom.distance_to_point(p, metric) <= d;
    if !seq.values().all(&within) {
        return false;
    }
    if matches!(geom, Geometry::Polygon(_) | Geometry::Line(_)) && seq.interp() == Interp::Linear {
        for (a, b) in seq.segments() {
            let mid = a.value.lerp(&b.value, 0.5);
            if !within(&mid) {
                return false;
            }
        }
    }
    true
}

/// Periods during which the moving point is within distance `d` of the
/// geometry (temporal `tdwithin` collapsed to its true periods).
pub fn tdwithin(seq: &TSequence<Point>, geom: &Geometry, d: f64, metric: Metric) -> PeriodSet {
    distance_to_geometry(seq, geom, metric).at_below(d)
}

/// Detects stops: maximal sub-sequences whose speed stays `<=
/// max_speed_ms` for at least `min_duration`.
pub fn detect_stops(
    seq: &TSequence<Point>,
    max_speed_ms: f64,
    min_duration: TimeDelta,
    metric: Metric,
) -> Vec<TSequence<Point>> {
    let Some(sp) = speed(seq, metric) else {
        return Vec::new();
    };
    sp.at_below(max_speed_ms)
        .spans()
        .iter()
        .filter(|p| p.duration() >= min_duration)
        .filter_map(|p| seq.at_period(p))
        .collect()
}

/// Douglas–Peucker simplification with a spatial tolerance (metric units).
pub fn simplify_dp(seq: &TSequence<Point>, tolerance: f64, metric: Metric) -> TSequence<Point> {
    let pts = seq.instants();
    if pts.len() <= 2 {
        return seq.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for i in lo + 1..hi {
            let d = metric.dist_point_segment(&pts[i].value, &pts[lo].value, &pts[hi].value);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > tolerance {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    let kept: Vec<TInstant<Point>> = pts
        .iter()
        .zip(keep.iter())
        .filter(|(_, k)| **k)
        .map(|(i, _)| i.clone())
        .collect();
    TSequence::new(kept, seq.lower_inc(), seq.upper_inc(), seq.interp())
        .expect("simplified sequence valid")
}

// ---------------------------------------------------------------------------
// Temporal<Point> wrappers
// ---------------------------------------------------------------------------

/// Total trajectory length of a temporal point at any granularity.
pub fn temporal_length(tp: &Temporal<Point>, metric: Metric) -> f64 {
    tp.to_sequences()
        .iter()
        .map(|s| length_with(s, metric))
        .sum()
}

/// `tpoint_at_stbox` over any granularity; `None` when nothing survives.
pub fn temporal_at_stbox(tp: &Temporal<Point>, bx: &STBox) -> Option<Temporal<Point>> {
    let pieces: Vec<TSequence<Point>> = tp
        .to_sequences()
        .iter()
        .flat_map(|s| at_stbox(s, bx))
        .collect();
    build_temporal(pieces)
}

/// `at_geometry` over any granularity.
pub fn temporal_at_geometry(
    tp: &Temporal<Point>,
    geom: &Geometry,
    metric: Metric,
) -> Option<Temporal<Point>> {
    let pieces: Vec<TSequence<Point>> = tp
        .to_sequences()
        .iter()
        .flat_map(|s| at_geometry(s, geom, metric))
        .collect();
    build_temporal(pieces)
}

/// `edwithin` over any granularity.
pub fn temporal_edwithin(tp: &Temporal<Point>, geom: &Geometry, d: f64, metric: Metric) -> bool {
    tp.to_sequences()
        .iter()
        .any(|s| edwithin(s, geom, d, metric))
}

/// Nearest approach over any granularity.
pub fn temporal_nad(tp: &Temporal<Point>, geom: &Geometry, metric: Metric) -> f64 {
    tp.to_sequences()
        .iter()
        .map(|s| nearest_approach_distance(s, geom, metric))
        .fold(f64::INFINITY, f64::min)
}

fn build_temporal(pieces: Vec<TSequence<Point>>) -> Option<Temporal<Point>> {
    if pieces.is_empty() {
        return None;
    }
    let merged: Result<Temporal<Point>> = Temporal::from_sequences(pieces);
    merged.ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn pseq(pts: &[(f64, f64, i64)]) -> TSequence<Point> {
        TSequence::linear(
            pts.iter()
                .map(|&(x, y, s)| TInstant::new(Point::new(x, y), t(s)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn trajectory_and_length() {
        let s = pseq(&[(0.0, 0.0, 0), (3.0, 0.0, 10), (3.0, 4.0, 20)]);
        assert_eq!(trajectory(&s).len(), 3);
        assert_eq!(length_with(&s, Metric::Euclidean), 7.0);
        let cum = cumulative_length(&s, Metric::Euclidean);
        assert_eq!(cum.value_at(t(10)), Some(3.0));
        assert_eq!(cum.end_value(), 7.0);
        assert_eq!(cum.value_at(t(5)), Some(1.5));
    }

    #[test]
    fn speed_step_per_segment() {
        let s = pseq(&[(0.0, 0.0, 0), (10.0, 0.0, 10), (10.0, 0.0, 20)]);
        let sp = speed(&s, Metric::Euclidean).unwrap();
        assert_eq!(sp.value_at(t(5)), Some(1.0));
        assert_eq!(sp.value_at(t(15)), Some(0.0));
        assert!(speed(&pseq(&[(0.0, 0.0, 0)]), Metric::Euclidean).is_none());
    }

    #[test]
    fn azimuth_quadrants() {
        assert_eq!(bearing(&Point::new(0.0, 0.0), &Point::new(0.0, 1.0)), 0.0);
        assert_eq!(bearing(&Point::new(0.0, 0.0), &Point::new(1.0, 0.0)), 90.0);
        assert_eq!(
            bearing(&Point::new(0.0, 0.0), &Point::new(0.0, -1.0)),
            180.0
        );
        assert_eq!(
            bearing(&Point::new(0.0, 0.0), &Point::new(-1.0, 0.0)),
            270.0
        );
        let s = pseq(&[(0.0, 0.0, 0), (1.0, 0.0, 10), (1.0, 1.0, 20)]);
        let az = azimuth(&s).unwrap();
        assert_eq!(az.value_at(t(5)), Some(90.0));
        assert_eq!(az.value_at(t(15)), Some(0.0));
    }

    #[test]
    fn twcentroid_weighted() {
        // Spends 10s moving 0->10 on x, then 30s parked at x=10.
        let s = pseq(&[(0.0, 0.0, 0), (10.0, 0.0, 10), (10.0, 0.0, 40)]);
        let c = twcentroid(&s);
        // (5*10 + 10*30)/40 = 8.75
        assert!((c.x - 8.75).abs() < 1e-9);
        assert_eq!(c.y, 0.0);
    }

    #[test]
    fn at_stbox_clips_segments() {
        let s = pseq(&[(0.0, 0.0, 0), (10.0, 0.0, 10)]);
        let bx = STBox::from_coords(2.0, 6.0, -1.0, 1.0, None).unwrap();
        let pieces = at_stbox(&s, &bx);
        assert_eq!(pieces.len(), 1);
        let p = &pieces[0];
        assert_eq!(p.start_timestamp(), t(2));
        assert_eq!(p.end_timestamp(), t(6));
        assert!((p.start_value().x - 2.0).abs() < 1e-6);
        assert!((p.end_value().x - 6.0).abs() < 1e-6);
    }

    #[test]
    fn at_stbox_multiple_entries() {
        // Zig-zag crossing the box y∈[-1,1] twice.
        let s = pseq(&[(0.0, -5.0, 0), (0.0, 5.0, 10), (0.0, -5.0, 20)]);
        let bx = STBox::from_coords(-1.0, 1.0, -1.0, 1.0, None).unwrap();
        let pieces = at_stbox(&s, &bx);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].start_timestamp(), t(4));
        assert_eq!(pieces[0].end_timestamp(), t(6));
        assert_eq!(pieces[1].start_timestamp(), t(14));
        assert_eq!(pieces[1].end_timestamp(), t(16));
    }

    #[test]
    fn at_stbox_respects_time_dimension() {
        let s = pseq(&[(0.0, 0.0, 0), (10.0, 0.0, 10)]);
        let bx = STBox::from_coords(
            0.0,
            10.0,
            -1.0,
            1.0,
            Some(Period::inclusive(t(3), t(5)).unwrap()),
        )
        .unwrap();
        let pieces = at_stbox(&s, &bx);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].start_timestamp(), t(3));
        assert_eq!(pieces[0].end_timestamp(), t(5));
        // Disjoint time.
        let bx2 = STBox::from_coords(
            0.0,
            10.0,
            -1.0,
            1.0,
            Some(Period::inclusive(t(100), t(200)).unwrap()),
        )
        .unwrap();
        assert!(at_stbox(&s, &bx2).is_empty());
    }

    #[test]
    fn at_stbox_fully_inside_and_outside() {
        let s = pseq(&[(0.0, 0.0, 0), (1.0, 1.0, 10)]);
        let big = STBox::from_coords(-10.0, 10.0, -10.0, 10.0, None).unwrap();
        let pieces = at_stbox(&s, &big);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].num_instants(), 2);
        let far = STBox::from_coords(100.0, 110.0, 100.0, 110.0, None).unwrap();
        assert!(at_stbox(&s, &far).is_empty());
    }

    #[test]
    fn at_geometry_polygon() {
        let s = pseq(&[(-5.0, 0.5, 0), (5.0, 0.5, 10)]);
        let poly = Geometry::Polygon(crate::geo::Polygon::rect(-1.0, 0.0, 1.0, 1.0));
        let pieces = at_geometry(&s, &poly, Metric::Euclidean);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].start_timestamp(), t(4));
        assert_eq!(pieces[0].end_timestamp(), t(6));
    }

    #[test]
    fn at_geometry_circle() {
        let s = pseq(&[(-10.0, 0.0, 0), (10.0, 0.0, 20)]);
        let c = Geometry::Circle {
            center: Point::new(0.0, 0.0),
            radius: 5.0,
        };
        let pieces = at_geometry(&s, &c, Metric::Euclidean);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].start_timestamp(), t(5));
        assert_eq!(pieces[0].end_timestamp(), t(15));
    }

    #[test]
    fn distance_to_point_has_turning_point() {
        let s = pseq(&[(-10.0, 3.0, 0), (10.0, 3.0, 20)]);
        let g = Geometry::Point(Point::new(0.0, 0.0));
        let d = distance_to_geometry(&s, &g, Metric::Euclidean);
        // Closest approach at t=10, distance 3.
        let min = d.min_value();
        assert!((min - 3.0).abs() < 1e-9, "got {min}");
        assert_eq!(d.value_at(t(10)), Some(3.0));
    }

    #[test]
    fn nad_and_edwithin() {
        let s = pseq(&[(-10.0, 3.0, 0), (10.0, 3.0, 20)]);
        let g = Geometry::Point(Point::new(0.0, 0.0));
        let nad = nearest_approach_distance(&s, &g, Metric::Euclidean);
        assert!((nad - 3.0).abs() < 1e-12);
        assert!(edwithin(&s, &g, 3.0, Metric::Euclidean));
        assert!(!edwithin(&s, &g, 2.9, Metric::Euclidean));
        // Vertices alone would give sqrt(109) ≈ 10.44 — the segment
        // interior matters.
        assert!(edwithin(&s, &g, 3.5, Metric::Euclidean));
    }

    #[test]
    fn adwithin_checks_whole_path() {
        let s = pseq(&[(0.0, 1.0, 0), (10.0, 1.0, 10)]);
        let g = Geometry::Point(Point::new(5.0, 1.0));
        assert!(adwithin(&s, &g, 5.0, Metric::Euclidean));
        assert!(!adwithin(&s, &g, 4.0, Metric::Euclidean));
    }

    #[test]
    fn tdwithin_periods() {
        let s = pseq(&[(-10.0, 0.0, 0), (10.0, 0.0, 20)]);
        let g = Geometry::Point(Point::new(0.0, 0.0));
        let ps = tdwithin(&s, &g, 5.0, Metric::Euclidean);
        assert_eq!(ps.num_spans(), 1);
        let p = ps.spans()[0];
        assert_eq!(p.lower(), t(5));
        assert_eq!(p.upper(), t(15));
    }

    #[test]
    fn detect_stops_finds_dwell() {
        let s = pseq(&[
            (0.0, 0.0, 0),
            (100.0, 0.0, 10),  // 10 u/s
            (100.5, 0.0, 110), // 0.005 u/s for 100 s (stop)
            (200.0, 0.0, 120), // fast again
        ]);
        let stops = detect_stops(&s, 0.1, TimeDelta::from_secs(60), Metric::Euclidean);
        assert_eq!(stops.len(), 1);
        assert_eq!(stops[0].start_timestamp(), t(10));
        assert_eq!(stops[0].end_timestamp(), t(110));
    }

    #[test]
    fn simplify_dp_reduces_collinear() {
        let s = pseq(&[
            (0.0, 0.0, 0),
            (1.0, 0.001, 1),
            (2.0, -0.001, 2),
            (3.0, 0.0, 3),
            (3.0, 5.0, 4),
        ]);
        let simplified = simplify_dp(&s, 0.01, Metric::Euclidean);
        assert_eq!(simplified.num_instants(), 3);
        assert_eq!(simplified.end_value().y, 5.0);
        // Tolerance 0 keeps everything.
        assert_eq!(simplify_dp(&s, 0.0, Metric::Euclidean).num_instants(), 5);
    }

    #[test]
    fn temporal_wrappers() {
        let s = pseq(&[(0.0, 0.0, 0), (10.0, 0.0, 10)]);
        let tp: Temporal<Point> = s.into();
        assert_eq!(temporal_length(&tp, Metric::Euclidean), 10.0);
        let bx = STBox::from_coords(2.0, 4.0, -1.0, 1.0, None).unwrap();
        let inside = temporal_at_stbox(&tp, &bx).unwrap();
        assert_eq!(inside.period().duration(), TimeDelta::from_secs(2));
        let g = Geometry::Point(Point::new(5.0, 0.0));
        assert!(temporal_edwithin(&tp, &g, 0.1, Metric::Euclidean));
        assert_eq!(temporal_nad(&tp, &g, Metric::Euclidean), 0.0);
        let far = STBox::from_coords(50.0, 60.0, 50.0, 60.0, None).unwrap();
        assert!(temporal_at_stbox(&tp, &far).is_none());
    }
}
