//! Temporal aggregation: spatiotemporal extent, temporal count, and the
//! streaming [`SequenceBuilder`] used to assemble sequences from live
//! sensor feeds.

use crate::boxes::STBox;
use crate::geo::Point;
use crate::temporal::{Interp, TInstant, TSequence, TempValue};
use crate::time::{TimeDelta, TimestampTz};

/// Spatiotemporal extent (union box) of a collection of point sequences.
pub fn extent<'a>(seqs: impl IntoIterator<Item = &'a TSequence<Point>>) -> Option<STBox> {
    seqs.into_iter()
        .map(STBox::from_tpoint)
        .reduce(|a, b| a.union(&b))
}

/// Temporal count: a step temporal int giving, at every moment, how many
/// of the input sequences are defined. MEOS `tcount` over sequences.
pub fn tcount<V: TempValue>(seqs: &[TSequence<V>]) -> Option<TSequence<i64>> {
    if seqs.is_empty() {
        return None;
    }
    // Boundary events: +1 at each start, -1 at each end.
    let mut events: Vec<(TimestampTz, i64)> = Vec::with_capacity(seqs.len() * 2);
    for s in seqs {
        events.push((s.start_timestamp(), 1));
        events.push((s.end_timestamp(), -1));
    }
    events.sort_by_key(|&(t, delta)| (t, -delta));
    let mut out: Vec<TInstant<i64>> = Vec::with_capacity(events.len() + 1);
    let mut count = 0i64;
    for (t, delta) in events {
        count += delta;
        match out.last_mut() {
            Some(last) if last.t == t => last.value = count,
            _ => out.push(TInstant::new(count, t)),
        }
    }
    TSequence::new(out, true, true, Interp::Step).ok()
}

/// What [`SequenceBuilder::push`] did with an observation.
#[derive(Debug, Clone, PartialEq)]
pub enum PushResult<V: TempValue> {
    /// The observation extended the open sequence.
    Appended,
    /// The observation arrived at or before the current end and was
    /// dropped (late data is the caller's responsibility to reorder).
    Late,
    /// The gap/length policy closed the previous sequence; the observation
    /// opened a new one.
    Emitted(TSequence<V>),
}

/// Incremental sequence assembly for streaming data.
///
/// Observations are appended in event-time order; a new sequence is opened
/// (and the finished one emitted) whenever the inter-arrival gap exceeds
/// `max_gap` or the open sequence reaches `max_instants`. This is the MEOS
/// pattern for turning an unbounded GPS feed into a `TSequenceSet`.
#[derive(Debug, Clone)]
pub struct SequenceBuilder<V: TempValue> {
    interp: Interp,
    max_gap: Option<TimeDelta>,
    max_instants: Option<usize>,
    current: Vec<TInstant<V>>,
    late: u64,
}

impl<V: TempValue> SequenceBuilder<V> {
    /// Builds a builder with the given interpolation.
    pub fn new(interp: Interp) -> Self {
        SequenceBuilder {
            interp,
            max_gap: None,
            max_instants: None,
            current: Vec::new(),
            late: 0,
        }
    }

    /// Splits sequences when consecutive observations are more than
    /// `gap` apart (connectivity loss, tunnel, parked vehicle).
    pub fn with_max_gap(mut self, gap: TimeDelta) -> Self {
        self.max_gap = Some(gap);
        self
    }

    /// Bounds the open sequence length (memory cap on edge devices).
    pub fn with_max_instants(mut self, n: usize) -> Self {
        self.max_instants = Some(n.max(1));
        self
    }

    /// Number of instants currently buffered.
    pub fn open_len(&self) -> usize {
        self.current.len()
    }

    /// Number of observations dropped as late so far.
    pub fn late_count(&self) -> u64 {
        self.late
    }

    /// Timestamp of the last accepted observation.
    pub fn last_timestamp(&self) -> Option<TimestampTz> {
        self.current.last().map(|i| i.t)
    }

    /// Feeds one observation.
    pub fn push(&mut self, value: V, t: TimestampTz) -> PushResult<V> {
        if let Some(last) = self.current.last() {
            if t <= last.t {
                self.late += 1;
                return PushResult::Late;
            }
            let gap_exceeded = self.max_gap.is_some_and(|g| (t - last.t) > g);
            let len_exceeded = self.max_instants.is_some_and(|m| self.current.len() >= m);
            if gap_exceeded || len_exceeded {
                let done = self.take_current();
                self.current.push(TInstant::new(value, t));
                return PushResult::Emitted(done);
            }
        }
        self.current.push(TInstant::new(value, t));
        PushResult::Appended
    }

    /// Closes and returns the open sequence, if any.
    pub fn flush(&mut self) -> Option<TSequence<V>> {
        if self.current.is_empty() {
            None
        } else {
            Some(self.take_current())
        }
    }

    fn take_current(&mut self) -> TSequence<V> {
        let instants = std::mem::take(&mut self.current);
        TSequence::new(instants, true, true, self.interp)
            .expect("builder maintains ordering invariant")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::TSequenceSet;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn pseq(pts: &[(f64, f64, i64)]) -> TSequence<Point> {
        TSequence::linear(
            pts.iter()
                .map(|&(x, y, s)| TInstant::new(Point::new(x, y), t(s)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn extent_unions_boxes() {
        let a = pseq(&[(0.0, 0.0, 0), (1.0, 1.0, 10)]);
        let b = pseq(&[(5.0, -3.0, 20), (6.0, 2.0, 30)]);
        let e = extent([&a, &b]).unwrap();
        assert_eq!((e.xmin(), e.xmax()), (0.0, 6.0));
        assert_eq!((e.ymin(), e.ymax()), (-3.0, 2.0));
        assert!(extent(std::iter::empty()).is_none());
    }

    #[test]
    fn tcount_counts_overlap() {
        let a = pseq(&[(0.0, 0.0, 0), (0.0, 0.0, 10)]);
        let b = pseq(&[(0.0, 0.0, 5), (0.0, 0.0, 15)]);
        let c = tcount(&[a, b]).unwrap();
        assert_eq!(c.value_at(t(2)), Some(1));
        assert_eq!(c.value_at(t(7)), Some(2));
        assert_eq!(c.value_at(t(12)), Some(1));
        assert_eq!(c.value_at(t(15)), Some(0));
        assert!(tcount::<f64>(&[]).is_none());
    }

    #[test]
    fn builder_appends_in_order() {
        let mut b = SequenceBuilder::<f64>::new(Interp::Linear);
        assert_eq!(b.push(1.0, t(0)), PushResult::Appended);
        assert_eq!(b.push(2.0, t(10)), PushResult::Appended);
        assert_eq!(b.push(1.5, t(5)), PushResult::Late);
        assert_eq!(b.late_count(), 1);
        let seq = b.flush().unwrap();
        assert_eq!(seq.num_instants(), 2);
        assert!(b.flush().is_none(), "flush drains");
    }

    #[test]
    fn builder_splits_on_gap() {
        let mut b =
            SequenceBuilder::<f64>::new(Interp::Linear).with_max_gap(TimeDelta::from_secs(30));
        b.push(1.0, t(0));
        b.push(2.0, t(20));
        match b.push(3.0, t(100)) {
            PushResult::Emitted(done) => {
                assert_eq!(done.num_instants(), 2);
                assert_eq!(done.end_timestamp(), t(20));
            }
            other => panic!("expected emit, got {other:?}"),
        }
        assert_eq!(b.open_len(), 1);
        assert_eq!(b.last_timestamp(), Some(t(100)));
    }

    #[test]
    fn builder_splits_on_length() {
        let mut b = SequenceBuilder::<f64>::new(Interp::Linear).with_max_instants(3);
        b.push(1.0, t(0));
        b.push(2.0, t(1));
        b.push(3.0, t(2));
        match b.push(4.0, t(3)) {
            PushResult::Emitted(done) => assert_eq!(done.num_instants(), 3),
            other => panic!("expected emit, got {other:?}"),
        }
    }

    #[test]
    fn builder_output_forms_valid_seqset() {
        let mut b =
            SequenceBuilder::<Point>::new(Interp::Linear).with_max_gap(TimeDelta::from_secs(10));
        let mut done = Vec::new();
        for (i, sec) in [0i64, 5, 30, 35, 100].iter().enumerate() {
            if let PushResult::Emitted(s) = b.push(Point::new(i as f64, 0.0), t(*sec)) {
                done.push(s);
            }
        }
        done.extend(b.flush());
        assert_eq!(done.len(), 3);
        let ss = TSequenceSet::new(done).unwrap();
        assert_eq!(ss.num_instants(), 5);
    }
}
