//! # meos — a pure-Rust reimplementation of MEOS (Mobility Engine Open Source)
//!
//! MEOS is the C library underpinning [MobilityDB] that manages *temporal*
//! and *spatiotemporal* values: values that change over time, such as the
//! position of a train (a *temporal point*), its speed (a *temporal float*),
//! or whether it is inside a maintenance zone (a *temporal boolean*).
//!
//! This crate reimplements, from scratch and in safe Rust, the surface of
//! MEOS exercised by the SIGMOD 2025 demonstration *"Mobility Stream
//! Processing on NebulaStream and MEOS"*:
//!
//! - **Time types** — [`TimestampTz`], [`TimeDelta`], [`Period`],
//!   [`PeriodSet`] and the generic [`Span`]/[`SpanSet`] algebra they are
//!   built on ([`span`], [`time`]).
//! - **Geometry** — lightweight planar/geodetic geometry: [`Point`],
//!   [`LineString`], [`Polygon`], [`Geometry`] with Euclidean and haversine
//!   metrics ([`geo`]).
//! - **Temporal types** — [`TInstant`], [`TSequence`], [`TSequenceSet`] and
//!   the [`Temporal`] sum type, generic over bool / i64 / f64 / text /
//!   [`Point`] base values with step or linear interpolation
//!   ([`temporal`]).
//! - **Bounding boxes** — [`TBox`] and [`STBox`] with the topological
//!   operators used for pruning ([`boxes`]).
//! - **Temporal-point operations** — trajectory, length, speed, azimuth,
//!   distance, `edwithin`/`adwithin`, `tpoint_at_stbox`, `at_geometry`,
//!   stop detection and Douglas–Peucker simplification ([`tpoint`]).
//! - **Aggregation** — extent, temporal count, time-weighted average, and
//!   the streaming [`agg::SequenceBuilder`] ([`agg`]).
//! - **Text I/O** — MobilityDB-style literals such as
//!   `[POINT(4.35 50.85)@2025-06-22T10:00:00Z, …)` ([`wkt`]).
//!
//! [MobilityDB]: https://github.com/MobilityDB/MobilityDB
//!
//! ## Quick example
//!
//! ```
//! use meos::prelude::*;
//!
//! let t0 = TimestampTz::from_ymd_hms(2025, 6, 22, 10, 0, 0).unwrap();
//! let mk = |sec: i64, x: f64, y: f64| {
//!     TInstant::new(Point::new(x, y), t0 + TimeDelta::from_secs(sec))
//! };
//! let trip = TSequence::linear(vec![
//!     mk(0, 4.35, 50.85),
//!     mk(60, 4.36, 50.86),
//!     mk(120, 4.38, 50.86),
//! ]).unwrap();
//!
//! // Length of the trajectory in metres (haversine on lon/lat degrees).
//! let len = meos::tpoint::length(&trip);
//! assert!(len > 1000.0);
//!
//! // Restrict the trip to a spatiotemporal box.
//! let stbox = STBox::from_coords(4.34, 4.37, 50.84, 50.87, None).unwrap();
//! let inside = meos::tpoint::at_stbox(&trip, &stbox);
//! assert!(!inside.is_empty());
//! ```

pub mod agg;
pub mod boxes;
pub mod error;
pub mod geo;
pub mod span;
pub mod temporal;
pub mod time;
pub mod tpoint;
pub mod wkt;

pub use boxes::{STBox, TBox};
pub use error::{MeosError, Result};
pub use geo::{Geometry, LineString, Metric, Point, Polygon};
pub use span::{FloatSpan, IntSpan, Span, SpanSet};
pub use temporal::{Interp, TInstant, TSequence, TSequenceSet, TempValue, Temporal};
pub use time::{Period, PeriodSet, TimeDelta, TimestampSet, TimestampTz};

/// Convenience re-exports covering the types used by virtually every
/// downstream module.
pub mod prelude {
    pub use crate::agg::SequenceBuilder;
    pub use crate::boxes::{STBox, TBox};
    pub use crate::error::{MeosError, Result};
    pub use crate::geo::{Geometry, LineString, Metric, Point, Polygon};
    pub use crate::span::{Span, SpanSet};
    pub use crate::temporal::{Interp, TInstant, TSequence, TSequenceSet, TempValue, Temporal};
    pub use crate::time::{Period, PeriodSet, TimeDelta, TimestampSet, TimestampTz};
}
