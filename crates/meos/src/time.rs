//! Time types: [`TimestampTz`] (microsecond-precision UTC instants),
//! [`TimeDelta`] (signed durations), and time-specific aliases of the span
//! algebra ([`Period`], [`PeriodSet`], [`TimestampSet`]).
//!
//! MEOS (following PostgreSQL) represents `timestamptz` as a 64-bit count of
//! microseconds; we adopt the Unix epoch as origin. Calendar conversion uses
//! Howard Hinnant's `days_from_civil` algorithm, exact over the proleptic
//! Gregorian calendar, so no external date-time crate is needed.

use crate::error::{MeosError, Result};
use crate::span::{Span, SpanBound, SpanSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Microseconds per second.
pub const MICROS_PER_SEC: i64 = 1_000_000;
/// Microseconds per minute.
pub const MICROS_PER_MIN: i64 = 60 * MICROS_PER_SEC;
/// Microseconds per hour.
pub const MICROS_PER_HOUR: i64 = 60 * MICROS_PER_MIN;
/// Microseconds per day.
pub const MICROS_PER_DAY: i64 = 24 * MICROS_PER_HOUR;

/// A signed duration with microsecond precision.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// The zero-length duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Builds a delta from raw microseconds.
    pub const fn from_micros(us: i64) -> Self {
        TimeDelta(us)
    }

    /// Builds a delta from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        TimeDelta(ms * 1_000)
    }

    /// Builds a delta from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        TimeDelta(s * MICROS_PER_SEC)
    }

    /// Builds a delta from whole minutes.
    pub const fn from_minutes(m: i64) -> Self {
        TimeDelta(m * MICROS_PER_MIN)
    }

    /// Builds a delta from whole hours.
    pub const fn from_hours(h: i64) -> Self {
        TimeDelta(h * MICROS_PER_HOUR)
    }

    /// Builds a delta from whole days.
    pub const fn from_days(d: i64) -> Self {
        TimeDelta(d * MICROS_PER_DAY)
    }

    /// Builds a delta from fractional seconds (rounded to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        TimeDelta((s * MICROS_PER_SEC as f64).round() as i64)
    }

    /// Raw microseconds.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// The delta expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Absolute value.
    pub const fn abs(self) -> Self {
        TimeDelta(self.0.abs())
    }

    /// True iff this delta is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: Self) -> Self {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: Self) -> Self {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Neg for TimeDelta {
    type Output = TimeDelta;
    fn neg(self) -> Self {
        TimeDelta(-self.0)
    }
}

impl Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: i64) -> Self {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<i64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: i64) -> Self {
        TimeDelta(self.0 / rhs)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us.abs() < MICROS_PER_SEC {
            write!(f, "{}us", us)
        } else if us % MICROS_PER_SEC == 0 && us.abs() < MICROS_PER_MIN {
            write!(f, "{}s", us / MICROS_PER_SEC)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A UTC instant with microsecond precision (PostgreSQL `timestamptz`
/// analogue), stored as microseconds since the Unix epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimestampTz(i64);

/// Days from civil date, proleptic Gregorian (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // [0, 11], March == 0
    let doy = (153 * mp as i64 + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since epoch (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl TimestampTz {
    /// The Unix epoch.
    pub const EPOCH: TimestampTz = TimestampTz(0);

    /// Builds a timestamp from raw microseconds since the Unix epoch.
    pub const fn from_micros(us: i64) -> Self {
        TimestampTz(us)
    }

    /// Builds a timestamp from whole seconds since the Unix epoch.
    pub const fn from_unix_secs(s: i64) -> Self {
        TimestampTz(s * MICROS_PER_SEC)
    }

    /// Builds a UTC timestamp from calendar components. Fails on
    /// out-of-range months/days/times (leap seconds are not representable).
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Result<Self> {
        Self::from_ymd_hms_micro(year, month, day, hour, min, sec, 0)
    }

    /// Like [`TimestampTz::from_ymd_hms`] with an explicit sub-second
    /// microsecond component.
    pub fn from_ymd_hms_micro(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
        micro: u32,
    ) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(MeosError::InvalidArgument(format!(
                "month {month} out of range"
            )));
        }
        if !(1..=31).contains(&day) || day > days_in_month(year, month) {
            return Err(MeosError::InvalidArgument(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        if hour > 23 || min > 59 || sec > 59 || micro > 999_999 {
            return Err(MeosError::InvalidArgument(format!(
                "time {hour:02}:{min:02}:{sec:02}.{micro:06} out of range"
            )));
        }
        let days = days_from_civil(year, month, day);
        let us = days * MICROS_PER_DAY
            + hour as i64 * MICROS_PER_HOUR
            + min as i64 * MICROS_PER_MIN
            + sec as i64 * MICROS_PER_SEC
            + micro as i64;
        Ok(TimestampTz(us))
    }

    /// Raw microseconds since the Unix epoch.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Seconds since the Unix epoch, truncating sub-second precision.
    pub const fn unix_secs(self) -> i64 {
        self.0.div_euclid(MICROS_PER_SEC)
    }

    /// Decomposes into `(year, month, day, hour, minute, second, micros)`.
    pub fn to_civil(self) -> (i64, u32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(MICROS_PER_DAY);
        let mut rem = self.0.rem_euclid(MICROS_PER_DAY);
        let (y, mo, d) = civil_from_days(days);
        let hour = (rem / MICROS_PER_HOUR) as u32;
        rem %= MICROS_PER_HOUR;
        let min = (rem / MICROS_PER_MIN) as u32;
        rem %= MICROS_PER_MIN;
        let sec = (rem / MICROS_PER_SEC) as u32;
        let micro = (rem % MICROS_PER_SEC) as u32;
        (y, mo, d, hour, min, sec, micro)
    }

    /// Parses an ISO-8601-ish literal: `2025-06-22T10:30:00Z`,
    /// `2025-06-22 10:30:00.25+02:00`, `2025-06-22T10:30:00+02`.
    /// A missing offset means UTC (MobilityDB session default).
    pub fn parse(s: &str) -> Result<Self> {
        let s = s.trim();
        let bad = |what: &str| MeosError::Parse(format!("invalid timestamp '{s}': {what}"));
        // Split date / time on 'T' or ' '.
        let split = s
            .find(['T', 't', ' '])
            .ok_or_else(|| bad("missing time separator"))?;
        let (date, rest) = s.split_at(split);
        let rest = &rest[1..];
        let mut dp = date.splitn(3, '-');
        let year: i64 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad year"))?;
        let month: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad month"))?;
        let day: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad day"))?;

        // Find timezone suffix.
        let (time_part, offset_us) = if let Some(st) = rest.strip_suffix(['Z', 'z']) {
            (st, 0i64)
        } else if let Some(pos) = rest.rfind(['+', '-']) {
            let (tp, tz) = rest.split_at(pos);
            let sign: i64 = if tz.starts_with('-') { -1 } else { 1 };
            let tz = &tz[1..];
            let (h, m) = match tz.split_once(':') {
                Some((h, m)) => (
                    h.parse::<i64>().map_err(|_| bad("bad tz hour"))?,
                    m.parse::<i64>().map_err(|_| bad("bad tz minute"))?,
                ),
                None => (tz.parse::<i64>().map_err(|_| bad("bad tz"))?, 0),
            };
            (tp, sign * (h * MICROS_PER_HOUR + m * MICROS_PER_MIN))
        } else {
            (rest, 0)
        };

        let mut tp = time_part.splitn(3, ':');
        let hour: u32 = tp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad hour"))?;
        let min: u32 = tp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad minute"))?;
        let sec_str = tp.next().unwrap_or("0");
        let (sec, micro) = match sec_str.split_once('.') {
            Some((s_int, frac)) => {
                let sec: u32 = s_int.parse().map_err(|_| bad("bad seconds"))?;
                let mut frac = frac.to_string();
                while frac.len() < 6 {
                    frac.push('0');
                }
                frac.truncate(6);
                let micro: u32 = frac.parse().map_err(|_| bad("bad fraction"))?;
                (sec, micro)
            }
            None => (sec_str.parse().map_err(|_| bad("bad seconds"))?, 0),
        };
        let local = Self::from_ymd_hms_micro(year, month, day, hour, min, sec, micro)?;
        Ok(TimestampTz(local.0 - offset_us))
    }
}

/// Days in the given month of the (proleptic Gregorian) year.
fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for TimestampTz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s, us) = self.to_civil();
        if us == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
        } else {
            let frac = format!("{us:06}");
            let frac = frac.trim_end_matches('0');
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{frac}Z")
        }
    }
}

impl Add<TimeDelta> for TimestampTz {
    type Output = TimestampTz;
    fn add(self, rhs: TimeDelta) -> Self {
        TimestampTz(self.0 + rhs.micros())
    }
}

impl AddAssign<TimeDelta> for TimestampTz {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.micros();
    }
}

impl Sub<TimeDelta> for TimestampTz {
    type Output = TimestampTz;
    fn sub(self, rhs: TimeDelta) -> Self {
        TimestampTz(self.0 - rhs.micros())
    }
}

impl SubAssign<TimeDelta> for TimestampTz {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.micros();
    }
}

impl Sub for TimestampTz {
    type Output = TimeDelta;
    fn sub(self, rhs: Self) -> TimeDelta {
        TimeDelta::from_micros(self.0 - rhs.0)
    }
}

impl SpanBound for TimestampTz {
    fn dist(a: Self, b: Self) -> f64 {
        (b.0 - a.0) as f64
    }
}

/// A time interval: the MEOS `tstzspan` (historically `period`).
pub type Period = Span<TimestampTz>;

/// A normalized set of disjoint periods: the MEOS `tstzspanset`.
pub type PeriodSet = SpanSet<TimestampTz>;

impl Period {
    /// Duration of the period (upper − lower), ignoring bound inclusivity.
    pub fn duration(&self) -> TimeDelta {
        self.upper() - self.lower()
    }

    /// Expands the period by `delta` on both ends.
    pub fn expand_by(&self, delta: TimeDelta) -> Period {
        Span::new(
            self.lower() - delta,
            self.upper() + delta,
            self.lower_inc(),
            self.upper_inc(),
        )
        .expect("expanded period remains valid")
    }
}

impl PeriodSet {
    /// Total duration covered by all member periods.
    pub fn total_duration(&self) -> TimeDelta {
        self.spans()
            .iter()
            .fold(TimeDelta::ZERO, |acc, p| acc + p.duration())
    }
}

/// An ordered set of distinct timestamps (the MEOS `tstzset`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimestampSet {
    times: Vec<TimestampTz>,
}

impl TimestampSet {
    /// Builds a set from arbitrary timestamps: sorts and deduplicates.
    pub fn new(mut times: Vec<TimestampTz>) -> Self {
        times.sort_unstable();
        times.dedup();
        TimestampSet { times }
    }

    /// The member timestamps in ascending order.
    pub fn times(&self) -> &[TimestampTz] {
        &self.times
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True iff the set has no members.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: TimestampTz) -> bool {
        self.times.binary_search(&t).is_ok()
    }

    /// Smallest member, if any.
    pub fn start(&self) -> Option<TimestampTz> {
        self.times.first().copied()
    }

    /// Largest member, if any.
    pub fn end(&self) -> Option<TimestampTz> {
        self.times.last().copied()
    }

    /// Tight period covering the set (inclusive bounds).
    pub fn period(&self) -> Option<Period> {
        match (self.start(), self.end()) {
            (Some(a), Some(b)) => Some(Period::inclusive(a, b).unwrap()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> TimestampTz {
        TimestampTz::from_ymd_hms(y, mo, d, h, mi, s).unwrap()
    }

    #[test]
    fn epoch_is_1970() {
        assert_eq!(ts(1970, 1, 1, 0, 0, 0), TimestampTz::EPOCH);
    }

    #[test]
    fn civil_round_trip() {
        let cases = [
            (2025, 6, 22, 10, 30, 0),
            (2000, 2, 29, 23, 59, 59),
            (1969, 12, 31, 23, 59, 59),
            (1900, 1, 1, 0, 0, 0),
            (2400, 2, 29, 12, 0, 0),
        ];
        for (y, mo, d, h, mi, s) in cases {
            let t = ts(y, mo, d, h, mi, s);
            let (y2, mo2, d2, h2, mi2, s2, us2) = t.to_civil();
            assert_eq!((y, mo, d, h, mi, s, 0), (y2, mo2, d2, h2, mi2, s2, us2));
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(TimestampTz::from_ymd_hms(2025, 2, 29, 0, 0, 0).is_err());
        assert!(TimestampTz::from_ymd_hms(2025, 13, 1, 0, 0, 0).is_err());
        assert!(TimestampTz::from_ymd_hms(2025, 4, 31, 0, 0, 0).is_err());
        assert!(TimestampTz::from_ymd_hms(2025, 1, 1, 24, 0, 0).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            ts(2025, 6, 22, 10, 30, 0).to_string(),
            "2025-06-22T10:30:00Z"
        );
        let t = TimestampTz::from_ymd_hms_micro(2025, 6, 22, 10, 30, 0, 250_000).unwrap();
        assert_eq!(t.to_string(), "2025-06-22T10:30:00.25Z");
    }

    #[test]
    fn parse_variants() {
        let want = ts(2025, 6, 22, 10, 30, 0);
        for lit in [
            "2025-06-22T10:30:00Z",
            "2025-06-22 10:30:00",
            "2025-06-22T12:30:00+02",
            "2025-06-22T12:30:00+02:00",
            "2025-06-22T08:30:00-02:00",
            "2025-06-22T10:30",
        ] {
            assert_eq!(TimestampTz::parse(lit).unwrap(), want, "{lit}");
        }
        let frac = TimestampTz::parse("2025-06-22T10:30:00.5Z").unwrap();
        assert_eq!(frac - want, TimeDelta::from_millis(500));
    }

    #[test]
    fn parse_rejects_garbage() {
        for lit in ["", "not a ts", "2025-06-22", "2025-06-22Txx:30:00Z"] {
            assert!(TimestampTz::parse(lit).is_err(), "{lit}");
        }
    }

    #[test]
    fn parse_display_round_trip() {
        let t = TimestampTz::from_ymd_hms_micro(2025, 12, 31, 23, 59, 59, 123_456).unwrap();
        assert_eq!(TimestampTz::parse(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn arithmetic() {
        let t = ts(2025, 6, 22, 10, 0, 0);
        assert_eq!(t + TimeDelta::from_hours(2), ts(2025, 6, 22, 12, 0, 0));
        assert_eq!(t - TimeDelta::from_days(1), ts(2025, 6, 21, 10, 0, 0));
        assert_eq!(ts(2025, 6, 22, 12, 0, 0) - t, TimeDelta::from_hours(2));
    }

    #[test]
    fn delta_helpers() {
        assert_eq!(TimeDelta::from_minutes(2).micros(), 120 * MICROS_PER_SEC);
        assert_eq!(TimeDelta::from_secs_f64(1.5).micros(), 1_500_000);
        assert_eq!(TimeDelta::from_secs(-3).abs(), TimeDelta::from_secs(3));
        assert!((TimeDelta::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn period_duration_and_expand() {
        let p = Period::inclusive(ts(2025, 1, 1, 0, 0, 0), ts(2025, 1, 1, 1, 0, 0)).unwrap();
        assert_eq!(p.duration(), TimeDelta::from_hours(1));
        let e = p.expand_by(TimeDelta::from_minutes(30));
        assert_eq!(e.duration(), TimeDelta::from_hours(2));
    }

    #[test]
    fn timestamp_set_basics() {
        let a = ts(2025, 1, 1, 0, 0, 0);
        let b = ts(2025, 1, 2, 0, 0, 0);
        let set = TimestampSet::new(vec![b, a, b]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(a));
        assert_eq!(set.start(), Some(a));
        assert_eq!(set.end(), Some(b));
        assert_eq!(set.period().unwrap().duration(), TimeDelta::from_days(1));
        assert!(TimestampSet::new(vec![]).period().is_none());
    }
}
