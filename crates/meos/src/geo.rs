//! Lightweight geometry: points, linestrings, polygons and circles with
//! Euclidean and haversine (geodetic) metrics.
//!
//! MEOS delegates geometry to PostGIS/GEOS; this reimplementation covers the
//! subset the mobility workload needs — distances, point-in-polygon,
//! segment projection/intersection — for coordinates that are either planar
//! (Euclidean) or WGS84 lon/lat degrees (haversine). Geodetic point↔segment
//! computations use a local equirectangular projection centred on the query
//! point, exact to well under 0.1% for the sub-50 km extents of a rail
//! network.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A 2-D point. For geodetic data `x` is longitude and `y` latitude, in
/// degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (longitude in degrees for geodetic data).
    pub x: f64,
    /// Y coordinate (latitude in degrees for geodetic data).
    pub y: f64,
}

impl Point {
    /// Builds a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Linear interpolation between `self` and `other` at fraction
    /// `frac ∈ [0, 1]`.
    pub fn lerp(&self, other: &Point, frac: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * frac,
            y: self.y + (other.y - self.y) * frac,
        }
    }

    /// Planar Euclidean distance in coordinate units.
    pub fn euclidean(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Great-circle (haversine) distance in metres; coordinates are
    /// interpreted as lon/lat degrees.
    pub fn haversine(&self, other: &Point) -> f64 {
        let (lat1, lat2) = (self.y.to_radians(), other.y.to_radians());
        let dlat = (other.y - self.y).to_radians();
        let dlon = (other.x - self.x).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POINT({} {})", self.x, self.y)
    }
}

/// Distance metric selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Planar distance in coordinate units.
    Euclidean,
    /// Great-circle distance in metres over lon/lat degrees.
    Haversine,
}

impl Metric {
    /// Distance between two points under this metric.
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        match self {
            Metric::Euclidean => a.euclidean(b),
            Metric::Haversine => a.haversine(b),
        }
    }

    /// Projects `p` into a local planar frame centred at `origin`
    /// (metres for haversine; identity for Euclidean).
    pub fn to_local(&self, origin: &Point, p: &Point) -> Point {
        match self {
            Metric::Euclidean => Point::new(p.x - origin.x, p.y - origin.y),
            Metric::Haversine => {
                let k = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
                Point::new(
                    (p.x - origin.x) * k * origin.y.to_radians().cos(),
                    (p.y - origin.y) * k,
                )
            }
        }
    }

    /// Shortest distance from point `p` to segment `a`–`b`.
    pub fn dist_point_segment(&self, p: &Point, a: &Point, b: &Point) -> f64 {
        let (pl, al, bl) = (
            self.to_local(p, p),
            self.to_local(p, a),
            self.to_local(p, b),
        );
        let t = closest_param(&pl, &al, &bl);
        let c = al.lerp(&bl, t);
        pl.euclidean(&c)
    }

    /// Parameter `t ∈ [0, 1]` of the closest point to `p` along `a`–`b`.
    pub fn closest_point_param(&self, p: &Point, a: &Point, b: &Point) -> f64 {
        let (pl, al, bl) = (
            self.to_local(p, p),
            self.to_local(p, a),
            self.to_local(p, b),
        );
        closest_param(&pl, &al, &bl)
    }

    /// Shortest distance between segments `a0`–`a1` and `b0`–`b1`.
    pub fn dist_segment_segment(&self, a0: &Point, a1: &Point, b0: &Point, b1: &Point) -> f64 {
        if segments_intersect(a0, a1, b0, b1) {
            return 0.0;
        }
        self.dist_point_segment(a0, b0, b1)
            .min(self.dist_point_segment(a1, b0, b1))
            .min(self.dist_point_segment(b0, a0, a1))
            .min(self.dist_point_segment(b1, a0, a1))
    }
}

/// Closest-point parameter in planar coordinates.
fn closest_param(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    if len2 <= f64::EPSILON {
        return 0.0;
    }
    (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0)
}

/// 2-D cross product of `(b-a)` and `(c-a)`.
fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// True iff segments `p0`–`p1` and `q0`–`q1` intersect (planar test; used
/// for topology, where the metric distinction is immaterial at rail scales).
pub fn segments_intersect(p0: &Point, p1: &Point, q0: &Point, q1: &Point) -> bool {
    let d1 = cross(q0, q1, p0);
    let d2 = cross(q0, q1, p1);
    let d3 = cross(p0, p1, q0);
    let d4 = cross(p0, p1, q1);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on = |a: &Point, b: &Point, c: &Point, d: f64| {
        d == 0.0
            && c.x >= a.x.min(b.x)
            && c.x <= a.x.max(b.x)
            && c.y >= a.y.min(b.y)
            && c.y <= a.y.max(b.y)
    };
    on(q0, q1, p0, d1) || on(q0, q1, p1, d2) || on(p0, p1, q0, d3) || on(p0, p1, q1, d4)
}

/// Intersection parameters `(t, u)` such that
/// `p0 + t·(p1−p0) == q0 + u·(q1−q0)`, when the (non-collinear) segments
/// cross.
pub fn segment_intersection_params(
    p0: &Point,
    p1: &Point,
    q0: &Point,
    q1: &Point,
) -> Option<(f64, f64)> {
    let r = Point::new(p1.x - p0.x, p1.y - p0.y);
    let s = Point::new(q1.x - q0.x, q1.y - q0.y);
    let denom = r.x * s.y - r.y * s.x;
    if denom.abs() < 1e-24 {
        return None;
    }
    let qp = Point::new(q0.x - p0.x, q0.y - p0.y);
    let t = (qp.x * s.y - qp.y * s.x) / denom;
    let u = (qp.x * r.y - qp.y * r.x) / denom;
    if (-1e-12..=1.0 + 1e-12).contains(&t) && (-1e-12..=1.0 + 1e-12).contains(&u) {
        Some((t.clamp(0.0, 1.0), u.clamp(0.0, 1.0)))
    } else {
        None
    }
}

/// An open polyline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LineString {
    /// The vertices in order.
    pub points: Vec<Point>,
}

impl LineString {
    /// Builds a linestring from vertices.
    pub fn new(points: Vec<Point>) -> Self {
        LineString { points }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total length under `metric`.
    pub fn length(&self, metric: Metric) -> f64 {
        self.points
            .windows(2)
            .map(|w| metric.distance(&w[0], &w[1]))
            .sum()
    }

    /// Shortest distance from `p` to the polyline.
    pub fn distance_to_point(&self, p: &Point, metric: Metric) -> f64 {
        if self.points.len() == 1 {
            return metric.distance(p, &self.points[0]);
        }
        self.points
            .windows(2)
            .map(|w| metric.dist_point_segment(p, &w[0], &w[1]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Axis-aligned bounding box `(xmin, ymin, xmax, ymax)`.
    pub fn bbox(&self) -> Option<(f64, f64, f64, f64)> {
        bbox_of(&self.points)
    }
}

fn bbox_of(pts: &[Point]) -> Option<(f64, f64, f64, f64)> {
    let first = pts.first()?;
    let mut bb = (first.x, first.y, first.x, first.y);
    for p in &pts[1..] {
        bb.0 = bb.0.min(p.x);
        bb.1 = bb.1.min(p.y);
        bb.2 = bb.2.max(p.x);
        bb.3 = bb.3.max(p.y);
    }
    Some(bb)
}

/// A polygon with an exterior ring and optional holes. Rings are stored
/// without the closing duplicate vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// Exterior ring vertices (≥ 3, unclosed).
    pub exterior: Vec<Point>,
    /// Interior rings (holes), each ≥ 3 unclosed vertices.
    pub holes: Vec<Vec<Point>>,
}

impl Polygon {
    /// Builds a polygon; panics in debug builds when a ring has < 3
    /// vertices (the parser and constructors validate beforehand).
    pub fn new(exterior: Vec<Point>, holes: Vec<Vec<Point>>) -> Self {
        debug_assert!(exterior.len() >= 3, "polygon exterior needs >= 3 points");
        debug_assert!(holes.iter().all(|h| h.len() >= 3));
        Polygon { exterior, holes }
    }

    /// Convenience constructor without holes.
    pub fn simple(exterior: Vec<Point>) -> Self {
        Polygon::new(exterior, Vec::new())
    }

    /// An axis-aligned rectangle.
    pub fn rect(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        Polygon::simple(vec![
            Point::new(xmin, ymin),
            Point::new(xmax, ymin),
            Point::new(xmax, ymax),
            Point::new(xmin, ymax),
        ])
    }

    /// Even-odd (ray casting) point-in-ring test.
    fn ring_contains(ring: &[Point], p: &Point) -> bool {
        let mut inside = false;
        let n = ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let (pi, pj) = (&ring[i], &ring[j]);
            if ((pi.y > p.y) != (pj.y > p.y))
                && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// True iff `p` lies inside the polygon (holes excluded).
    pub fn contains(&self, p: &Point) -> bool {
        Self::ring_contains(&self.exterior, p)
            && !self.holes.iter().any(|h| Self::ring_contains(h, p))
    }

    /// Iterates the edges of every ring as vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (&Point, &Point)> {
        std::iter::once(&self.exterior)
            .chain(self.holes.iter())
            .flat_map(|ring| {
                let n = ring.len();
                (0..n).map(move |i| (&ring[i], &ring[(i + 1) % n]))
            })
    }

    /// Distance from `p` to the polygon: 0 inside, else shortest distance
    /// to any ring edge.
    pub fn distance_to_point(&self, p: &Point, metric: Metric) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        self.boundary_distance(p, metric)
    }

    /// Shortest distance from `p` to the polygon boundary (even when `p`
    /// is inside).
    pub fn boundary_distance(&self, p: &Point, metric: Metric) -> f64 {
        self.edges()
            .map(|(a, b)| metric.dist_point_segment(p, a, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// Axis-aligned bounding box of the exterior ring.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        bbox_of(&self.exterior).expect("polygon exterior non-empty")
    }
}

/// A geometry value as carried in streams and geofences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// An open polyline.
    Line(LineString),
    /// A polygon, possibly with holes.
    Polygon(Polygon),
    /// A circle around `center` with radius in metres (haversine) or
    /// coordinate units (Euclidean).
    Circle {
        /// Circle centre.
        center: Point,
        /// Radius, in the unit of the metric used at evaluation time.
        radius: f64,
    },
}

impl Geometry {
    /// True iff `p` is inside/on the geometry (points match exactly,
    /// lines never contain).
    pub fn contains(&self, p: &Point, metric: Metric) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::Line(_) => false,
            Geometry::Polygon(poly) => poly.contains(p),
            Geometry::Circle { center, radius } => metric.distance(center, p) <= *radius,
        }
    }

    /// Distance from `p` to the geometry (0 when contained).
    pub fn distance_to_point(&self, p: &Point, metric: Metric) -> f64 {
        match self {
            Geometry::Point(q) => metric.distance(p, q),
            Geometry::Line(l) => l.distance_to_point(p, metric),
            Geometry::Polygon(poly) => poly.distance_to_point(p, metric),
            Geometry::Circle { center, radius } => (metric.distance(center, p) - radius).max(0.0),
        }
    }

    /// Axis-aligned bounding box in coordinate units. For circles the
    /// radius is converted from metres when `metric` is haversine.
    pub fn bbox(&self, metric: Metric) -> (f64, f64, f64, f64) {
        match self {
            Geometry::Point(p) => (p.x, p.y, p.x, p.y),
            Geometry::Line(l) => l.bbox().unwrap_or((0.0, 0.0, 0.0, 0.0)),
            Geometry::Polygon(poly) => poly.bbox(),
            Geometry::Circle { center, radius } => {
                let (rx, ry) = match metric {
                    Metric::Euclidean => (*radius, *radius),
                    Metric::Haversine => {
                        let k = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
                        (radius / (k * center.y.to_radians().cos()), radius / k)
                    }
                };
                (center.x - rx, center.y - ry, center.x + rx, center.y + ry)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.euclidean(&b), 5.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Brussels Midi to Antwerp Central: ~41.5 km.
        let brussels = Point::new(4.3367, 50.8354);
        let antwerp = Point::new(4.4211, 51.2172);
        let d = brussels.haversine(&antwerp);
        assert!((41_000.0..43_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_zero_and_symmetry() {
        let a = Point::new(4.35, 50.85);
        let b = Point::new(4.40, 50.90);
        assert_eq!(a.haversine(&a), 0.0);
        assert!((a.haversine(&b) - b.haversine(&a)).abs() < 1e-9);
    }

    #[test]
    fn local_projection_consistent_with_haversine() {
        let a = Point::new(4.35, 50.85);
        let b = Point::new(4.37, 50.86);
        let bl = Metric::Haversine.to_local(&a, &b);
        let approx = bl.euclidean(&Point::new(0.0, 0.0));
        let exact = a.haversine(&b);
        assert!((approx - exact).abs() / exact < 1e-3, "{approx} vs {exact}");
    }

    #[test]
    fn point_segment_distance() {
        let m = Metric::Euclidean;
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(m.dist_point_segment(&Point::new(5.0, 3.0), &a, &b), 3.0);
        assert_eq!(m.dist_point_segment(&Point::new(-4.0, 3.0), &a, &b), 5.0);
        assert_eq!(m.closest_point_param(&Point::new(5.0, 3.0), &a, &b), 0.5);
        assert_eq!(m.closest_point_param(&Point::new(-1.0, 0.0), &a, &b), 0.0);
    }

    #[test]
    fn degenerate_segment() {
        let m = Metric::Euclidean;
        let a = Point::new(2.0, 2.0);
        assert_eq!(m.dist_point_segment(&Point::new(2.0, 5.0), &a, &a), 3.0);
    }

    #[test]
    fn segment_intersection() {
        let p0 = Point::new(0.0, 0.0);
        let p1 = Point::new(10.0, 10.0);
        let q0 = Point::new(0.0, 10.0);
        let q1 = Point::new(10.0, 0.0);
        assert!(segments_intersect(&p0, &p1, &q0, &q1));
        let (t, u) = segment_intersection_params(&p0, &p1, &q0, &q1).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!((u - 0.5).abs() < 1e-12);
        assert!(segment_intersection_params(
            &p0,
            &Point::new(1.0, 1.0),
            &Point::new(5.0, 0.0),
            &Point::new(5.0, 1.0)
        )
        .is_none());
    }

    #[test]
    fn segment_segment_distance() {
        let m = Metric::Euclidean;
        let d = m.dist_segment_segment(
            &Point::new(0.0, 0.0),
            &Point::new(10.0, 0.0),
            &Point::new(0.0, 5.0),
            &Point::new(10.0, 5.0),
        );
        assert_eq!(d, 5.0);
        let crossing = m.dist_segment_segment(
            &Point::new(0.0, 0.0),
            &Point::new(10.0, 10.0),
            &Point::new(0.0, 10.0),
            &Point::new(10.0, 0.0),
        );
        assert_eq!(crossing, 0.0);
    }

    #[test]
    fn linestring_length_and_distance() {
        let l = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert_eq!(l.length(Metric::Euclidean), 7.0);
        assert_eq!(
            l.distance_to_point(&Point::new(1.0, 1.0), Metric::Euclidean),
            1.0
        );
        assert_eq!(l.bbox(), Some((0.0, 0.0, 3.0, 4.0)));
    }

    #[test]
    fn polygon_contains() {
        let poly = Polygon::rect(0.0, 0.0, 10.0, 10.0);
        assert!(poly.contains(&Point::new(5.0, 5.0)));
        assert!(!poly.contains(&Point::new(15.0, 5.0)));
        let with_hole = Polygon::new(
            poly.exterior,
            vec![vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ]],
        );
        assert!(!with_hole.contains(&Point::new(5.0, 5.0)), "inside hole");
        assert!(with_hole.contains(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn polygon_distance() {
        let poly = Polygon::rect(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            poly.distance_to_point(&Point::new(5.0, 5.0), Metric::Euclidean),
            0.0
        );
        assert_eq!(
            poly.distance_to_point(&Point::new(13.0, 5.0), Metric::Euclidean),
            3.0
        );
        assert_eq!(
            poly.boundary_distance(&Point::new(5.0, 5.0), Metric::Euclidean),
            5.0
        );
    }

    #[test]
    fn circle_geometry() {
        let g = Geometry::Circle {
            center: Point::new(0.0, 0.0),
            radius: 5.0,
        };
        assert!(g.contains(&Point::new(3.0, 4.0), Metric::Euclidean));
        assert!(!g.contains(&Point::new(4.0, 4.0), Metric::Euclidean));
        assert_eq!(
            g.distance_to_point(&Point::new(0.0, 8.0), Metric::Euclidean),
            3.0
        );
        let bb = g.bbox(Metric::Euclidean);
        assert_eq!(bb, (-5.0, -5.0, 5.0, 5.0));
    }

    #[test]
    fn circle_bbox_haversine() {
        let g = Geometry::Circle {
            center: Point::new(4.35, 50.85),
            radius: 1000.0,
        };
        let (xmin, ymin, xmax, ymax) = g.bbox(Metric::Haversine);
        // 1 km in degrees latitude is ~0.009°.
        assert!((ymax - ymin) > 0.017 && (ymax - ymin) < 0.019);
        assert!((xmax - xmin) > (ymax - ymin), "lon span wider at 50°N");
    }

    #[test]
    fn geometry_dispatch() {
        let p = Geometry::Point(Point::new(1.0, 1.0));
        assert!(p.contains(&Point::new(1.0, 1.0), Metric::Euclidean));
        assert_eq!(
            p.distance_to_point(&Point::new(4.0, 5.0), Metric::Euclidean),
            5.0
        );
        let l = Geometry::Line(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        ]));
        assert!(!l.contains(&Point::new(5.0, 0.0), Metric::Euclidean));
        assert_eq!(
            l.distance_to_point(&Point::new(5.0, 2.0), Metric::Euclidean),
            2.0
        );
    }
}
