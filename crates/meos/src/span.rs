//! Generic span (interval) algebra: [`Span`] and normalized [`SpanSet`].
//!
//! MEOS builds its whole time dimension on spans with independently
//! inclusive/exclusive bounds; periods over timestamps are just
//! `Span<TimestampTz>`. The algebra here is exact: bound-flag handling
//! follows MobilityDB semantics (a span is the set of values `x` with
//! `lower < x < upper`, each comparison weakened to `<=` when the
//! corresponding flag is inclusive).

use crate::error::{MeosError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Values usable as span bounds.
///
/// `dist` returns a numeric distance used only for width/duration style
/// accessors; ordering and equality drive all set semantics.
pub trait SpanBound: Copy + PartialOrd + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Numeric distance from `a` to `b` (may be negative if `b < a`).
    fn dist(a: Self, b: Self) -> f64;
}

impl SpanBound for i64 {
    fn dist(a: Self, b: Self) -> f64 {
        (b - a) as f64
    }
}

impl SpanBound for f64 {
    fn dist(a: Self, b: Self) -> f64 {
        b - a
    }
}

/// A span of `f64` values.
pub type FloatSpan = Span<f64>;
/// A span of `i64` values.
pub type IntSpan = Span<i64>;

/// An interval over an ordered domain with per-bound inclusivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span<T: SpanBound> {
    lower: T,
    upper: T,
    lower_inc: bool,
    upper_inc: bool,
}

/// Compares two *lower* bounds; an inclusive lower bound precedes an
/// exclusive one at the same value.
fn lower_le<T: SpanBound>(av: T, ai: bool, bv: T, bi: bool) -> bool {
    av < bv || (av == bv && (ai || !bi))
}

/// Compares two *upper* bounds; an exclusive upper bound precedes an
/// inclusive one at the same value.
fn upper_le<T: SpanBound>(av: T, ai: bool, bv: T, bi: bool) -> bool {
    av < bv || (av == bv && (bi || !ai))
}

impl<T: SpanBound> Span<T> {
    /// Builds a span, validating non-emptiness: `lower < upper`, or
    /// `lower == upper` with both bounds inclusive (a degenerate "instant"
    /// span).
    pub fn new(lower: T, upper: T, lower_inc: bool, upper_inc: bool) -> Result<Self> {
        if lower > upper || (lower == upper && !(lower_inc && upper_inc)) {
            return Err(MeosError::InvalidArgument(format!(
                "empty span: {:?}{:?}, {:?}{:?}",
                if lower_inc { '[' } else { '(' },
                lower,
                upper,
                if upper_inc { ']' } else { ')' },
            )));
        }
        Ok(Span {
            lower,
            upper,
            lower_inc,
            upper_inc,
        })
    }

    /// `[lower, upper]`, both bounds inclusive.
    pub fn inclusive(lower: T, upper: T) -> Result<Self> {
        Span::new(lower, upper, true, true)
    }

    /// `[lower, upper)`, the half-open convention used for windows.
    pub fn half_open(lower: T, upper: T) -> Result<Self> {
        Span::new(lower, upper, true, false)
    }

    /// The degenerate single-value span `[v, v]`.
    pub fn point(v: T) -> Self {
        Span {
            lower: v,
            upper: v,
            lower_inc: true,
            upper_inc: true,
        }
    }

    /// Lower bound value.
    pub fn lower(&self) -> T {
        self.lower
    }

    /// Upper bound value.
    pub fn upper(&self) -> T {
        self.upper
    }

    /// Whether the lower bound is inclusive.
    pub fn lower_inc(&self) -> bool {
        self.lower_inc
    }

    /// Whether the upper bound is inclusive.
    pub fn upper_inc(&self) -> bool {
        self.upper_inc
    }

    /// Numeric width (`dist(lower, upper)`).
    pub fn width(&self) -> f64 {
        T::dist(self.lower, self.upper)
    }

    /// True iff the span is the degenerate single value.
    pub fn is_instant(&self) -> bool {
        self.lower == self.upper
    }

    /// Membership test honouring bound inclusivity.
    pub fn contains_value(&self, v: T) -> bool {
        (self.lower < v || (self.lower == v && self.lower_inc))
            && (v < self.upper || (v == self.upper && self.upper_inc))
    }

    /// True iff `other ⊆ self`.
    pub fn contains_span(&self, other: &Span<T>) -> bool {
        lower_le(self.lower, self.lower_inc, other.lower, other.lower_inc)
            && upper_le(other.upper, other.upper_inc, self.upper, self.upper_inc)
    }

    /// True iff the spans share at least one value.
    pub fn overlaps(&self, other: &Span<T>) -> bool {
        // max of lowers vs min of uppers
        let (lv, li) = if lower_le(self.lower, self.lower_inc, other.lower, other.lower_inc) {
            (other.lower, other.lower_inc)
        } else {
            (self.lower, self.lower_inc)
        };
        let (uv, ui) = if upper_le(self.upper, self.upper_inc, other.upper, other.upper_inc) {
            (self.upper, self.upper_inc)
        } else {
            (other.upper, other.upper_inc)
        };
        lv < uv || (lv == uv && li && ui)
    }

    /// True iff `self` lies entirely before `other` (no shared values).
    pub fn is_before(&self, other: &Span<T>) -> bool {
        self.upper < other.lower
            || (self.upper == other.lower && !(self.upper_inc && other.lower_inc))
    }

    /// True iff `self` lies entirely after `other`.
    pub fn is_after(&self, other: &Span<T>) -> bool {
        other.is_before(self)
    }

    /// True iff the spans touch without overlapping
    /// (e.g. `[a, b)` and `[b, c]`).
    pub fn is_adjacent(&self, other: &Span<T>) -> bool {
        (self.upper == other.lower && (self.upper_inc != other.lower_inc))
            || (other.upper == self.lower && (other.upper_inc != self.lower_inc))
    }

    /// Set intersection, `None` when disjoint.
    pub fn intersection(&self, other: &Span<T>) -> Option<Span<T>> {
        if !self.overlaps(other) {
            return None;
        }
        let (lv, li) = if lower_le(self.lower, self.lower_inc, other.lower, other.lower_inc) {
            (other.lower, other.lower_inc)
        } else {
            (self.lower, self.lower_inc)
        };
        let (uv, ui) = if upper_le(self.upper, self.upper_inc, other.upper, other.upper_inc) {
            (self.upper, self.upper_inc)
        } else {
            (other.upper, other.upper_inc)
        };
        Some(Span {
            lower: lv,
            upper: uv,
            lower_inc: li,
            upper_inc: ui,
        })
    }

    /// Set union when the spans overlap or are adjacent, else `None`.
    pub fn union(&self, other: &Span<T>) -> Option<Span<T>> {
        if !self.overlaps(other) && !self.is_adjacent(other) {
            return None;
        }
        let (lv, li) = if lower_le(self.lower, self.lower_inc, other.lower, other.lower_inc) {
            (self.lower, self.lower_inc)
        } else {
            (other.lower, other.lower_inc)
        };
        let (uv, ui) = if upper_le(self.upper, self.upper_inc, other.upper, other.upper_inc) {
            (other.upper, other.upper_inc)
        } else {
            (self.upper, self.upper_inc)
        };
        Some(Span {
            lower: lv,
            upper: uv,
            lower_inc: li,
            upper_inc: ui,
        })
    }

    /// Set difference `self \ other`, producing 0, 1 or 2 spans.
    pub fn minus(&self, other: &Span<T>) -> Vec<Span<T>> {
        if !self.overlaps(other) {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(2);
        // Left remainder: [self.lower, other.lower with flipped flag]
        if lower_le(self.lower, self.lower_inc, other.lower, other.lower_inc)
            && !(self.lower == other.lower && self.lower_inc == other.lower_inc)
        {
            if let Ok(left) = Span::new(self.lower, other.lower, self.lower_inc, !other.lower_inc) {
                out.push(left);
            }
        }
        // Right remainder.
        if upper_le(other.upper, other.upper_inc, self.upper, self.upper_inc)
            && !(self.upper == other.upper && self.upper_inc == other.upper_inc)
        {
            if let Ok(right) = Span::new(other.upper, self.upper, !other.upper_inc, self.upper_inc)
            {
                out.push(right);
            }
        }
        out
    }

    /// Shortest distance between the spans (0 when they overlap or touch).
    pub fn distance(&self, other: &Span<T>) -> f64 {
        if self.overlaps(other) || self.is_adjacent(other) {
            0.0
        } else if self.is_before(other) {
            T::dist(self.upper, other.lower)
        } else {
            T::dist(other.upper, self.lower)
        }
    }
}

impl Span<f64> {
    /// Expands the span by `by` on both sides.
    pub fn expand(&self, by: f64) -> Span<f64> {
        Span::new(
            self.lower - by,
            self.upper + by,
            self.lower_inc,
            self.upper_inc,
        )
        .expect("expanded float span remains valid")
    }
}

impl<T: SpanBound + fmt::Display> fmt::Display for Span<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lower_inc { '[' } else { '(' },
            self.lower,
            self.upper,
            if self.upper_inc { ']' } else { ')' },
        )
    }
}

/// A normalized set of pairwise-disjoint, non-adjacent spans kept in
/// ascending order. The canonical representation guarantees `PartialEq`
/// means set equality.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanSet<T: SpanBound> {
    spans: Vec<Span<T>>,
}

impl<T: SpanBound> SpanSet<T> {
    /// The empty set.
    pub fn empty() -> Self {
        SpanSet { spans: Vec::new() }
    }

    /// Builds a set from arbitrary spans, sorting and merging
    /// overlapping/adjacent members.
    pub fn from_spans(mut spans: Vec<Span<T>>) -> Self {
        spans.sort_by(|a, b| {
            a.lower()
                .partial_cmp(&b.lower())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.lower_inc().cmp(&a.lower_inc()))
        });
        let mut out: Vec<Span<T>> = Vec::with_capacity(spans.len());
        for s in spans {
            match out.last_mut() {
                Some(last) if last.overlaps(&s) || last.is_adjacent(&s) => {
                    *last = last.union(&s).expect("overlapping spans union");
                }
                _ => out.push(s),
            }
        }
        SpanSet { spans: out }
    }

    /// A set holding one span.
    pub fn from_span(span: Span<T>) -> Self {
        SpanSet { spans: vec![span] }
    }

    /// The member spans in ascending order.
    pub fn spans(&self) -> &[Span<T>] {
        &self.spans
    }

    /// Number of member spans.
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Tight bounding span, `None` when empty.
    pub fn span(&self) -> Option<Span<T>> {
        match (self.spans.first(), self.spans.last()) {
            (Some(a), Some(b)) => Some(
                Span::new(a.lower(), b.upper(), a.lower_inc(), b.upper_inc())
                    .expect("bounding span valid"),
            ),
            _ => None,
        }
    }

    /// Membership test.
    pub fn contains_value(&self, v: T) -> bool {
        // Binary search on lower bound, then check the candidate span.
        let idx = self.spans.partition_point(|s| s.lower() < v);
        // v may fall in spans[idx] (if lower == v inclusive) or spans[idx-1].
        if idx < self.spans.len() && self.spans[idx].contains_value(v) {
            return true;
        }
        idx > 0 && self.spans[idx - 1].contains_value(v)
    }

    /// True iff any member overlaps `other`.
    pub fn overlaps_span(&self, other: &Span<T>) -> bool {
        self.spans.iter().any(|s| s.overlaps(other))
    }

    /// Set union.
    pub fn union(&self, other: &SpanSet<T>) -> SpanSet<T> {
        let mut all = self.spans.clone();
        all.extend_from_slice(&other.spans);
        SpanSet::from_spans(all)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &SpanSet<T>) -> SpanSet<T> {
        let mut out = Vec::new();
        // Linear merge: both sides are sorted and disjoint.
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let (a, b) = (&self.spans[i], &other.spans[j]);
            if let Some(x) = a.intersection(b) {
                out.push(x);
            }
            if upper_le(a.upper(), a.upper_inc(), b.upper(), b.upper_inc()) {
                i += 1;
            } else {
                j += 1;
            }
        }
        SpanSet { spans: out }
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &SpanSet<T>) -> SpanSet<T> {
        let mut current: Vec<Span<T>> = self.spans.clone();
        for b in &other.spans {
            let mut next = Vec::with_capacity(current.len() + 1);
            for a in &current {
                next.extend(a.minus(b));
            }
            current = next;
        }
        SpanSet::from_spans(current)
    }

    /// Intersection with a single span.
    pub fn intersection_span(&self, other: &Span<T>) -> SpanSet<T> {
        let spans = self
            .spans
            .iter()
            .filter_map(|s| s.intersection(other))
            .collect();
        SpanSet { spans }
    }

    /// Sum of member widths.
    pub fn total_width(&self) -> f64 {
        self.spans.iter().map(|s| s.width()).sum()
    }
}

impl<T: SpanBound + fmt::Display> fmt::Display for SpanSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(l: f64, u: f64, li: bool, ui: bool) -> Span<f64> {
        Span::new(l, u, li, ui).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Span::new(2.0, 1.0, true, true).is_err());
        assert!(Span::new(1.0, 1.0, true, false).is_err());
        assert!(Span::new(1.0, 1.0, true, true).is_ok());
        assert!(Span::new(1.0, 2.0, false, false).is_ok());
    }

    #[test]
    fn contains_value_respects_bounds() {
        let s = sp(1.0, 2.0, true, false);
        assert!(s.contains_value(1.0));
        assert!(s.contains_value(1.5));
        assert!(!s.contains_value(2.0));
        assert!(!s.contains_value(0.999));
    }

    #[test]
    fn overlap_cases() {
        let a = sp(0.0, 1.0, true, false);
        let b = sp(1.0, 2.0, true, true);
        assert!(!a.overlaps(&b), "touching open/closed do not overlap");
        assert!(a.is_adjacent(&b));
        let c = sp(0.0, 1.0, true, true);
        assert!(c.overlaps(&b), "closed/closed at same point overlap");
        assert!(!c.is_adjacent(&b));
        let d = sp(5.0, 6.0, true, true);
        assert!(!a.overlaps(&d));
        assert!(a.is_before(&d));
        assert!(d.is_after(&a));
    }

    #[test]
    fn intersection_and_union() {
        let a = sp(0.0, 2.0, true, true);
        let b = sp(1.0, 3.0, false, true);
        let i = a.intersection(&b).unwrap();
        assert_eq!((i.lower(), i.upper()), (1.0, 2.0));
        assert!(!i.lower_inc());
        assert!(i.upper_inc());
        let u = a.union(&b).unwrap();
        assert_eq!((u.lower(), u.upper()), (0.0, 3.0));
        assert!(sp(0.0, 1.0, true, false)
            .union(&sp(2.0, 3.0, true, true))
            .is_none());
    }

    #[test]
    fn minus_produces_remainders() {
        let a = sp(0.0, 10.0, true, true);
        let b = sp(3.0, 5.0, true, false);
        let parts = a.minus(&b);
        assert_eq!(parts.len(), 2);
        assert_eq!((parts[0].lower(), parts[0].upper()), (0.0, 3.0));
        assert!(!parts[0].upper_inc(), "flipped flag at cut point");
        assert_eq!((parts[1].lower(), parts[1].upper()), (5.0, 10.0));
        assert!(parts[1].lower_inc());

        // Full cover -> empty.
        assert!(b.minus(&a).is_empty());
        // Disjoint -> identity.
        assert_eq!(a.minus(&sp(20.0, 30.0, true, true)), vec![a]);
    }

    #[test]
    fn distance() {
        let a = sp(0.0, 1.0, true, true);
        let b = sp(3.0, 4.0, true, true);
        assert_eq!(a.distance(&b), 2.0);
        assert_eq!(b.distance(&a), 2.0);
        assert_eq!(a.distance(&sp(0.5, 2.0, true, true)), 0.0);
    }

    #[test]
    fn spanset_normalizes() {
        let set = SpanSet::from_spans(vec![
            sp(5.0, 6.0, true, true),
            sp(0.0, 2.0, true, false),
            sp(2.0, 3.0, true, true),
            sp(1.0, 1.5, true, true),
        ]);
        // [0,2) + [2,3] merge (adjacent), [1,1.5] absorbed.
        assert_eq!(set.num_spans(), 2);
        assert_eq!(set.spans()[0].lower(), 0.0);
        assert_eq!(set.spans()[0].upper(), 3.0);
        assert!(set.contains_value(2.0));
        assert!(!set.contains_value(4.0));
        assert!(set.contains_value(5.5));
    }

    #[test]
    fn spanset_ops() {
        let a = SpanSet::from_spans(vec![sp(0.0, 4.0, true, true), sp(6.0, 8.0, true, true)]);
        let b = SpanSet::from_spans(vec![sp(3.0, 7.0, true, true)]);
        let i = a.intersection(&b);
        assert_eq!(i.num_spans(), 2);
        assert_eq!((i.spans()[0].lower(), i.spans()[0].upper()), (3.0, 4.0));
        assert_eq!((i.spans()[1].lower(), i.spans()[1].upper()), (6.0, 7.0));

        let m = a.minus(&b);
        assert_eq!(m.num_spans(), 2);
        assert_eq!((m.spans()[0].lower(), m.spans()[0].upper()), (0.0, 3.0));
        assert_eq!((m.spans()[1].lower(), m.spans()[1].upper()), (7.0, 8.0));

        let u = a.union(&b);
        assert_eq!(u.num_spans(), 1);
        assert_eq!((u.spans()[0].lower(), u.spans()[0].upper()), (0.0, 8.0));
    }

    #[test]
    fn spanset_span_and_width() {
        let a = SpanSet::from_spans(vec![sp(0.0, 1.0, true, true), sp(5.0, 7.0, true, true)]);
        let bounding = a.span().unwrap();
        assert_eq!((bounding.lower(), bounding.upper()), (0.0, 7.0));
        assert_eq!(a.total_width(), 3.0);
        assert!(SpanSet::<f64>::empty().span().is_none());
    }

    #[test]
    fn int_spans() {
        let s = Span::<i64>::half_open(0, 10).unwrap();
        assert!(s.contains_value(0));
        assert!(!s.contains_value(10));
        assert_eq!(s.width(), 10.0);
    }
}
