//! Bounding boxes: [`TBox`] (value × time) and [`STBox`] (space × time).
//!
//! Boxes are MEOS's pruning device: every temporal value carries a tight
//! box, and topological predicates (`overlaps`, `contains`) over boxes are
//! evaluated before any exact geometry work.

use crate::error::{MeosError, Result};
use crate::geo::{Geometry, Metric, Point, Polygon, EARTH_RADIUS_M};
use crate::span::Span;
use crate::temporal::{TSequence, TempValue};
use crate::time::{Period, TimeDelta};
use serde::{Deserialize, Serialize};

/// A bounding box over a numeric value dimension and an optional time
/// dimension (the MEOS `tbox`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TBox {
    /// Value extent.
    pub value: Span<f64>,
    /// Time extent, when constrained.
    pub time: Option<Period>,
}

impl TBox {
    /// Builds a box from a value span and optional period.
    pub fn new(value: Span<f64>, time: Option<Period>) -> Self {
        TBox { value, time }
    }

    /// Tight box of a float sequence.
    pub fn from_tfloat(seq: &TSequence<f64>) -> Self {
        TBox {
            value: Span::inclusive(seq.min_value(), seq.max_value()).expect("min <= max"),
            time: Some(seq.period()),
        }
    }

    /// True iff the boxes overlap in every constrained dimension.
    pub fn overlaps(&self, other: &TBox) -> bool {
        if !self.value.overlaps(&other.value) {
            return false;
        }
        match (&self.time, &other.time) {
            (Some(a), Some(b)) => a.overlaps(b),
            _ => true,
        }
    }

    /// True iff `(v, t)` falls inside the box.
    pub fn contains(&self, v: f64, t: Option<crate::time::TimestampTz>) -> bool {
        if !self.value.contains_value(v) {
            return false;
        }
        match (&self.time, t) {
            (Some(p), Some(ts)) => p.contains_value(ts),
            (Some(_), None) => false,
            _ => true,
        }
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &TBox) -> TBox {
        let value = Span::new(
            self.value.lower().min(other.value.lower()),
            self.value.upper().max(other.value.upper()),
            true,
            true,
        )
        .expect("union span valid");
        let time = match (&self.time, &other.time) {
            (Some(a), Some(b)) => Some(
                Period::new(
                    a.lower().min(b.lower()),
                    a.upper().max(b.upper()),
                    true,
                    true,
                )
                .expect("union period valid"),
            ),
            _ => None,
        };
        TBox { value, time }
    }
}

/// A spatiotemporal bounding box (the MEOS `stbox`): X/Y extents plus an
/// optional time extent. Coordinates follow the geometry convention
/// (lon/lat degrees for geodetic data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct STBox {
    /// X (longitude) extent.
    pub x: Span<f64>,
    /// Y (latitude) extent.
    pub y: Span<f64>,
    /// Time extent, when constrained.
    pub t: Option<Period>,
}

impl STBox {
    /// Builds a box from coordinate extremes and an optional period.
    pub fn from_coords(
        xmin: f64,
        xmax: f64,
        ymin: f64,
        ymax: f64,
        t: Option<Period>,
    ) -> Result<Self> {
        if !(xmin <= xmax && ymin <= ymax) {
            return Err(MeosError::InvalidArgument(format!(
                "invalid stbox extents x=[{xmin},{xmax}] y=[{ymin},{ymax}]"
            )));
        }
        Ok(STBox {
            x: Span::inclusive(xmin, xmax).expect("validated"),
            y: Span::inclusive(ymin, ymax).expect("validated"),
            t,
        })
    }

    /// Degenerate box at one point (and optional period).
    pub fn from_point(p: &Point, t: Option<Period>) -> Self {
        STBox {
            x: Span::point(p.x),
            y: Span::point(p.y),
            t,
        }
    }

    /// Tight box of a temporal-point sequence.
    pub fn from_tpoint(seq: &TSequence<Point>) -> Self {
        let mut it = seq.values();
        let first = it.next().expect("sequence non-empty");
        let mut bb = (first.x, first.y, first.x, first.y);
        for p in it {
            bb.0 = bb.0.min(p.x);
            bb.1 = bb.1.min(p.y);
            bb.2 = bb.2.max(p.x);
            bb.3 = bb.3.max(p.y);
        }
        STBox {
            x: Span::inclusive(bb.0, bb.2).expect("bbox valid"),
            y: Span::inclusive(bb.1, bb.3).expect("bbox valid"),
            t: Some(seq.period()),
        }
    }

    /// Box of a geometry (circle radii converted per `metric`), with an
    /// optional period.
    pub fn from_geometry(geom: &Geometry, metric: Metric, t: Option<Period>) -> Self {
        let (xmin, ymin, xmax, ymax) = geom.bbox(metric);
        STBox {
            x: Span::inclusive(xmin, xmax).expect("bbox valid"),
            y: Span::inclusive(ymin, ymax).expect("bbox valid"),
            t,
        }
    }

    /// Minimum X.
    pub fn xmin(&self) -> f64 {
        self.x.lower()
    }

    /// Maximum X.
    pub fn xmax(&self) -> f64 {
        self.x.upper()
    }

    /// Minimum Y.
    pub fn ymin(&self) -> f64 {
        self.y.lower()
    }

    /// Maximum Y.
    pub fn ymax(&self) -> f64 {
        self.y.upper()
    }

    /// True iff the point (ignoring time) is inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.x.contains_value(p.x) && self.y.contains_value(p.y)
    }

    /// True iff the timestamped point is inside in all constrained
    /// dimensions.
    pub fn contains(&self, p: &Point, ts: Option<crate::time::TimestampTz>) -> bool {
        if !self.contains_point(p) {
            return false;
        }
        match (&self.t, ts) {
            (Some(period), Some(ts)) => period.contains_value(ts),
            (Some(_), None) => false,
            _ => true,
        }
    }

    /// True iff the boxes overlap in every constrained dimension.
    pub fn overlaps(&self, other: &STBox) -> bool {
        if !self.x.overlaps(&other.x) || !self.y.overlaps(&other.y) {
            return false;
        }
        match (&self.t, &other.t) {
            (Some(a), Some(b)) => a.overlaps(b),
            _ => true,
        }
    }

    /// True iff `other ⊆ self` in every constrained dimension; an
    /// unconstrained time dimension contains everything.
    pub fn contains_stbox(&self, other: &STBox) -> bool {
        if !self.x.contains_span(&other.x) || !self.y.contains_span(&other.y) {
            return false;
        }
        match (&self.t, &other.t) {
            (Some(a), Some(b)) => a.contains_span(b),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &STBox) -> STBox {
        let merge = |a: &Span<f64>, b: &Span<f64>| {
            Span::inclusive(a.lower().min(b.lower()), a.upper().max(b.upper()))
                .expect("union valid")
        };
        let t = match (&self.t, &other.t) {
            (Some(a), Some(b)) => Some(
                Period::new(
                    a.lower().min(b.lower()),
                    a.upper().max(b.upper()),
                    true,
                    true,
                )
                .expect("union period valid"),
            ),
            _ => None,
        };
        STBox {
            x: merge(&self.x, &other.x),
            y: merge(&self.y, &other.y),
            t,
        }
    }

    /// Intersection, `None` when disjoint in some constrained dimension.
    pub fn intersection(&self, other: &STBox) -> Option<STBox> {
        let x = self.x.intersection(&other.x)?;
        let y = self.y.intersection(&other.y)?;
        let t = match (&self.t, &other.t) {
            (Some(a), Some(b)) => Some(a.intersection(b)?),
            (Some(a), None) | (None, Some(a)) => Some(*a),
            (None, None) => None,
        };
        Some(STBox { x, y, t })
    }

    /// Expands the spatial extents by `d` coordinate units on every side.
    pub fn expand_space(&self, d: f64) -> STBox {
        STBox {
            x: self.x.expand(d),
            y: self.y.expand(d),
            t: self.t,
        }
    }

    /// Expands the spatial extents by `metres`, converting to degrees at
    /// the box centre latitude (geodetic boxes).
    pub fn expand_meters(&self, metres: f64) -> STBox {
        let k = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let mid_lat = (self.ymin() + self.ymax()) / 2.0;
        let dx = metres / (k * mid_lat.to_radians().cos().max(1e-9));
        let dy = metres / k;
        STBox {
            x: self.x.expand(dx),
            y: self.y.expand(dy),
            t: self.t,
        }
    }

    /// Expands the time extent by `delta` on both ends (no-op when
    /// unconstrained).
    pub fn expand_time(&self, delta: TimeDelta) -> STBox {
        STBox {
            x: self.x,
            y: self.y,
            t: self.t.map(|p| p.expand_by(delta)),
        }
    }

    /// The spatial footprint as a rectangle polygon.
    pub fn to_polygon(&self) -> Polygon {
        Polygon::rect(self.xmin(), self.ymin(), self.xmax(), self.ymax())
    }
}

impl<V: TempValue> TSequence<V> {
    /// Tight period-only "box" helper shared by the generic engine side.
    pub fn temporal_extent(&self) -> Period {
        self.period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::TInstant;
    use crate::time::TimestampTz;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    fn ptseq() -> TSequence<Point> {
        TSequence::linear(vec![
            TInstant::new(Point::new(0.0, 0.0), t(0)),
            TInstant::new(Point::new(10.0, 5.0), t(10)),
            TInstant::new(Point::new(4.0, -2.0), t(20)),
        ])
        .unwrap()
    }

    #[test]
    fn stbox_from_tpoint_is_tight() {
        let b = STBox::from_tpoint(&ptseq());
        assert_eq!((b.xmin(), b.xmax()), (0.0, 10.0));
        assert_eq!((b.ymin(), b.ymax()), (-2.0, 5.0));
        let p = b.t.unwrap();
        assert_eq!(p.lower(), t(0));
        assert_eq!(p.upper(), t(20));
    }

    #[test]
    fn stbox_contains() {
        let b = STBox::from_coords(
            0.0,
            10.0,
            0.0,
            10.0,
            Some(Period::inclusive(t(0), t(100)).unwrap()),
        )
        .unwrap();
        assert!(b.contains(&Point::new(5.0, 5.0), Some(t(50))));
        assert!(!b.contains(&Point::new(5.0, 5.0), Some(t(200))));
        assert!(!b.contains(&Point::new(5.0, 5.0), None), "time-constrained");
        assert!(!b.contains(&Point::new(15.0, 5.0), Some(t(50))));
        assert!(b.contains_point(&Point::new(0.0, 10.0)), "boundary inside");
    }

    #[test]
    fn stbox_overlaps_and_contains_box() {
        let a = STBox::from_coords(0.0, 10.0, 0.0, 10.0, None).unwrap();
        let b = STBox::from_coords(5.0, 15.0, 5.0, 15.0, None).unwrap();
        let c = STBox::from_coords(20.0, 30.0, 20.0, 30.0, None).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        let inner = STBox::from_coords(2.0, 3.0, 2.0, 3.0, None).unwrap();
        assert!(a.contains_stbox(&inner));
        assert!(!inner.contains_stbox(&a));
    }

    #[test]
    fn stbox_time_dimension_semantics() {
        let no_t = STBox::from_coords(0.0, 10.0, 0.0, 10.0, None).unwrap();
        let with_t = STBox::from_coords(
            0.0,
            10.0,
            0.0,
            10.0,
            Some(Period::inclusive(t(0), t(10)).unwrap()),
        )
        .unwrap();
        assert!(no_t.overlaps(&with_t));
        assert!(no_t.contains_stbox(&with_t));
        assert!(
            !with_t.contains_stbox(&no_t),
            "cannot contain unconstrained"
        );
    }

    #[test]
    fn union_intersection() {
        let a = STBox::from_coords(0.0, 10.0, 0.0, 10.0, None).unwrap();
        let b = STBox::from_coords(5.0, 15.0, -5.0, 5.0, None).unwrap();
        let u = a.union(&b);
        assert_eq!(
            (u.xmin(), u.xmax(), u.ymin(), u.ymax()),
            (0.0, 15.0, -5.0, 10.0)
        );
        let i = a.intersection(&b).unwrap();
        assert_eq!(
            (i.xmin(), i.xmax(), i.ymin(), i.ymax()),
            (5.0, 10.0, 0.0, 5.0)
        );
        let far = STBox::from_coords(100.0, 110.0, 0.0, 1.0, None).unwrap();
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn expand_meters_lat_aware() {
        let b = STBox::from_coords(4.35, 4.35, 50.85, 50.85, None).unwrap();
        let e = b.expand_meters(1000.0);
        let dy = e.ymax() - e.ymin();
        let dx = e.xmax() - e.xmin();
        assert!((dy - 0.018).abs() < 0.002, "2 km ≈ 0.018° lat, got {dy}");
        assert!(dx > dy, "lon degrees are shorter at 50°N");
    }

    #[test]
    fn tbox_basics() {
        let seq =
            TSequence::linear(vec![TInstant::new(1.0, t(0)), TInstant::new(9.0, t(10))]).unwrap();
        let b = TBox::from_tfloat(&seq);
        assert_eq!(b.value.lower(), 1.0);
        assert_eq!(b.value.upper(), 9.0);
        assert!(b.contains(5.0, Some(t(5))));
        assert!(!b.contains(10.0, Some(t(5))));
        let other = TBox::new(Span::inclusive(8.0, 20.0).unwrap(), None);
        assert!(b.overlaps(&other));
        let u = b.union(&other);
        assert_eq!(u.value.upper(), 20.0);
        assert!(u.time.is_none(), "union drops time when one side lacks it");
    }
}
