//! MobilityDB-style text I/O for temporal literals.
//!
//! Formats follow the MEOS conventions:
//!
//! - instant: `12.5@2025-06-22T10:00:00Z`
//! - sequence: `[12.5@t1, 13@t2)` with `[`/`(` and `]`/`)` bound flags,
//!   optionally prefixed `Interp=Step;` when deviating from the type's
//!   default interpolation
//! - discrete sequence: `{12.5@t1, 13@t2}`
//! - sequence set: `{[12.5@t1, 13@t2], [14@t3, 15@t4]}`
//! - temporal points use WKT values: `POINT(4.35 50.85)@t1`

use crate::error::{MeosError, Result};
use crate::geo::Point;
use crate::temporal::{Interp, TInstant, TSequence, TSequenceSet, TempValue, Temporal};
use crate::time::TimestampTz;
use std::fmt;

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

fn fmt_instants<V: TempValue + fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    instants: &[TInstant<V>],
) -> fmt::Result {
    for (i, inst) in instants.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{inst}")?;
    }
    Ok(())
}

impl<V: TempValue + fmt::Display> fmt::Display for TSequence<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.interp() {
            Interp::Discrete => {
                write!(f, "{{")?;
                fmt_instants(f, self.instants())?;
                write!(f, "}}")
            }
            interp => {
                if interp != V::default_interp() {
                    write!(f, "Interp={interp};")?;
                }
                write!(f, "{}", if self.lower_inc() { '[' } else { '(' })?;
                fmt_instants(f, self.instants())?;
                write!(f, "{}", if self.upper_inc() { ']' } else { ')' })
            }
        }
    }
}

impl<V: TempValue + fmt::Display> fmt::Display for TSequenceSet<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.interp() != V::default_interp() && self.interp() != Interp::Discrete {
            write!(f, "Interp={};", self.interp())?;
        }
        write!(f, "{{")?;
        for (i, s) in self.sequences().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", if s.lower_inc() { '[' } else { '(' })?;
            fmt_instants(f, s.instants())?;
            write!(f, "{}", if s.upper_inc() { ']' } else { ')' })?;
        }
        write!(f, "}}")
    }
}

impl<V: TempValue + fmt::Display> fmt::Display for Temporal<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporal::Instant(i) => write!(f, "{i}"),
            Temporal::Sequence(s) => write!(f, "{s}"),
            Temporal::SequenceSet(ss) => write!(f, "{ss}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a `POINT(x y)` literal.
pub fn parse_point(s: &str) -> Result<Point> {
    let s = s.trim();
    let lower = s.to_ascii_lowercase();
    let rest = lower
        .strip_prefix("point")
        .ok_or_else(|| MeosError::Parse(format!("expected POINT(...): '{s}'")))?
        .trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| MeosError::Parse(format!("unbalanced POINT parens: '{s}'")))?;
    let mut it = inner.split_whitespace();
    let x: f64 = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| MeosError::Parse(format!("bad POINT x: '{s}'")))?;
    let y: f64 = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| MeosError::Parse(format!("bad POINT y: '{s}'")))?;
    if it.next().is_some() {
        return Err(MeosError::Parse(format!("trailing POINT coords: '{s}'")));
    }
    Ok(Point::new(x, y))
}

/// Splits `s` on commas at parenthesis depth 0.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

fn parse_instant<V: TempValue>(
    s: &str,
    parse_value: &dyn Fn(&str) -> Result<V>,
) -> Result<TInstant<V>> {
    let at = s
        .rfind('@')
        .ok_or_else(|| MeosError::Parse(format!("instant missing '@': '{s}'")))?;
    let value = parse_value(s[..at].trim())?;
    let t = TimestampTz::parse(&s[at + 1..])?;
    Ok(TInstant::new(value, t))
}

fn parse_sequence_body<V: TempValue>(
    s: &str,
    parse_value: &dyn Fn(&str) -> Result<V>,
    interp: Interp,
) -> Result<TSequence<V>> {
    let mut chars = s.chars();
    let open = chars
        .next()
        .ok_or_else(|| MeosError::Parse("empty sequence literal".into()))?;
    let close = s
        .chars()
        .last()
        .ok_or_else(|| MeosError::Parse("empty sequence literal".into()))?;
    let lower_inc = match open {
        '[' => true,
        '(' => false,
        _ => {
            return Err(MeosError::Parse(format!(
                "sequence must start with [ or (: '{s}'"
            )))
        }
    };
    let upper_inc = match close {
        ']' => true,
        ')' => false,
        _ => {
            return Err(MeosError::Parse(format!(
                "sequence must end with ] or ): '{s}'"
            )))
        }
    };
    let inner = &s[1..s.len() - 1];
    let instants = split_top_level(inner)
        .into_iter()
        .map(|tok| parse_instant(tok, parse_value))
        .collect::<Result<Vec<_>>>()?;
    TSequence::new(instants, lower_inc, upper_inc, interp)
}

/// Parses any temporal literal with a caller-provided base-value parser.
pub fn parse_temporal<V: TempValue>(
    s: &str,
    parse_value: &dyn Fn(&str) -> Result<V>,
) -> Result<Temporal<V>> {
    let mut s = s.trim();
    // Optional interpolation prefix.
    let mut interp = V::default_interp();
    if let Some(rest) = s.strip_prefix("Interp=") {
        let semi = rest
            .find(';')
            .ok_or_else(|| MeosError::Parse("Interp= prefix missing ';'".into()))?;
        interp = match &rest[..semi] {
            "Step" => Interp::Step,
            "Linear" => Interp::Linear,
            "Discrete" => Interp::Discrete,
            other => return Err(MeosError::Parse(format!("unknown interpolation '{other}'"))),
        };
        s = rest[semi + 1..].trim();
    }
    match s.chars().next() {
        Some('[') | Some('(') => Ok(Temporal::Sequence(parse_sequence_body(
            s,
            parse_value,
            interp,
        )?)),
        Some('{') => {
            let inner = s
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| MeosError::Parse(format!("unbalanced braces: '{s}'")))?
                .trim();
            match inner.chars().next() {
                Some('[') | Some('(') => {
                    let seqs = split_top_level(inner)
                        .into_iter()
                        .map(|tok| parse_sequence_body(tok, parse_value, interp))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(Temporal::SequenceSet(TSequenceSet::new(seqs)?))
                }
                Some(_) => {
                    let instants = split_top_level(inner)
                        .into_iter()
                        .map(|tok| parse_instant(tok, parse_value))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(Temporal::Sequence(TSequence::discrete(instants)?))
                }
                None => Err(MeosError::Parse("empty braces".into())),
            }
        }
        Some(_) => Ok(Temporal::Instant(parse_instant(s, parse_value)?)),
        None => Err(MeosError::Parse("empty temporal literal".into())),
    }
}

/// Parses a temporal float literal.
pub fn parse_tfloat(s: &str) -> Result<Temporal<f64>> {
    parse_temporal(s, &|v| {
        v.parse::<f64>()
            .map_err(|_| MeosError::Parse(format!("bad float '{v}'")))
    })
}

/// Parses a temporal integer literal.
pub fn parse_tint(s: &str) -> Result<Temporal<i64>> {
    parse_temporal(s, &|v| {
        v.parse::<i64>()
            .map_err(|_| MeosError::Parse(format!("bad int '{v}'")))
    })
}

/// Parses a temporal boolean literal (`t`/`f`/`true`/`false`).
pub fn parse_tbool(s: &str) -> Result<Temporal<bool>> {
    parse_temporal(s, &|v| match v.to_ascii_lowercase().as_str() {
        "t" | "true" => Ok(true),
        "f" | "false" => Ok(false),
        other => Err(MeosError::Parse(format!("bad bool '{other}'"))),
    })
}

/// Parses a temporal text literal (optionally double-quoted values).
pub fn parse_ttext(s: &str) -> Result<Temporal<String>> {
    parse_temporal(s, &|v| {
        let v = v.trim();
        let v = v
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .unwrap_or(v);
        Ok(v.to_string())
    })
}

/// Parses a temporal geometry-point literal.
pub fn parse_tgeompoint(s: &str) -> Result<Temporal<Point>> {
    parse_temporal(s, &parse_point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    fn t(sec: i64) -> TimestampTz {
        TimestampTz::from_unix_secs(sec)
    }

    #[test]
    fn point_parse() {
        let p = parse_point("POINT(4.35 50.85)").unwrap();
        assert_eq!((p.x, p.y), (4.35, 50.85));
        assert!(parse_point("POIN(1 2)").is_err());
        assert!(parse_point("POINT(1)").is_err());
        assert!(parse_point("POINT(1 2 3)").is_err());
        // Display round-trip.
        assert_eq!(parse_point(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn instant_round_trip() {
        let i: Temporal<f64> = parse_tfloat("12.5@2025-06-22T10:00:00Z").unwrap();
        assert_eq!(i.to_string(), "12.5@2025-06-22T10:00:00Z");
        assert_eq!(i.start_value(), 12.5);
    }

    #[test]
    fn sequence_round_trip() {
        let lit = "[1.5@2025-06-22T10:00:00Z, 2.5@2025-06-22T10:01:00Z)";
        let s = parse_tfloat(lit).unwrap();
        assert_eq!(s.to_string(), lit);
        match &s {
            Temporal::Sequence(seq) => {
                assert_eq!(seq.interp(), Interp::Linear);
                assert!(!seq.upper_inc());
            }
            other => panic!("expected sequence, got {other}"),
        }
    }

    #[test]
    fn step_prefix_round_trip() {
        let lit = "Interp=Step;[1@2025-06-22T10:00:00Z, 2@2025-06-22T10:01:00Z]";
        let s = parse_tfloat(lit).unwrap();
        assert_eq!(s.to_string(), lit);
        match &s {
            Temporal::Sequence(seq) => assert_eq!(seq.interp(), Interp::Step),
            other => panic!("expected sequence, got {other}"),
        }
    }

    #[test]
    fn discrete_round_trip() {
        let lit = "{1@2025-06-22T10:00:00Z, 2@2025-06-22T10:01:00Z}";
        let s = parse_tfloat(lit).unwrap();
        assert_eq!(s.to_string(), lit);
        match &s {
            Temporal::Sequence(seq) => {
                assert_eq!(seq.interp(), Interp::Discrete)
            }
            other => panic!("expected sequence, got {other}"),
        }
    }

    #[test]
    fn sequence_set_round_trip() {
        let lit = "{[1@2025-06-22T10:00:00Z, 2@2025-06-22T10:01:00Z], \
                   [5@2025-06-22T11:00:00Z, 6@2025-06-22T11:01:00Z]}";
        let s = parse_tfloat(lit).unwrap();
        match &s {
            Temporal::SequenceSet(ss) => assert_eq!(ss.num_sequences(), 2),
            other => panic!("expected seqset, got {other}"),
        }
        let printed = s.to_string();
        let reparsed = parse_tfloat(&printed).unwrap();
        assert_eq!(reparsed, s);
    }

    #[test]
    fn tpoint_round_trip() {
        let lit = "[POINT(4.35 50.85)@2025-06-22T10:00:00Z, \
                   POINT(4.4 50.9)@2025-06-22T10:10:00Z]";
        let s = parse_tgeompoint(lit).unwrap();
        assert_eq!(s.num_instants(), 2);
        assert_eq!(s.start_value(), Point::new(4.35, 50.85));
        let reparsed = parse_tgeompoint(&s.to_string()).unwrap();
        assert_eq!(reparsed, s);
    }

    #[test]
    fn tbool_and_ttext() {
        let b =
            parse_tbool("Interp=Step;[t@2025-06-22T10:00:00Z, f@2025-06-22T10:01:00Z]").unwrap();
        assert!(b.start_value());
        assert!(!b.end_value());
        let txt = parse_ttext("\"hello\"@2025-06-22T10:00:00Z").unwrap();
        assert_eq!(txt.start_value(), "hello");
        let ti = parse_tint("{7@2025-06-22T10:00:00Z}").unwrap();
        assert_eq!(ti.start_value(), 7);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_tfloat("").is_err());
        assert!(parse_tfloat("[1@bad-ts]").is_err());
        assert!(parse_tfloat("[1@2025-06-22T10:00:00Z").is_err());
        assert!(parse_tfloat("Interp=Wavy;[1@2025-06-22T10:00:00Z]").is_err());
        assert!(parse_tfloat("1 2 3").is_err());
        assert!(parse_tbool("x@2025-06-22T10:00:00Z").is_err());
    }

    #[test]
    fn parsed_values_are_usable() {
        let s = parse_tfloat("[0@2025-06-22T10:00:00Z, 10@2025-06-22T10:00:10Z]").unwrap();
        let mid = t(s.start_timestamp().unix_secs() + 5);
        assert_eq!(s.value_at(mid), Some(5.0));
        assert_eq!(s.duration(), TimeDelta::from_secs(10));
    }
}
