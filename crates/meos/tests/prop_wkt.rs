//! Property-based round-trip tests for the MobilityDB-style text I/O.

use meos::geo::Point;
use meos::temporal::{Interp, TInstant, TSequence, TSequenceSet, Temporal};
use meos::time::TimestampTz;
use meos::wkt;
use proptest::prelude::*;

/// Timestamps within a sane calendar range (year ~1970–2100).
fn ts_strategy() -> impl Strategy<Value = TimestampTz> {
    (0i64..4_000_000_000).prop_map(TimestampTz::from_unix_secs)
}

fn increasing_ts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<TimestampTz>> {
    (ts_strategy(), proptest::collection::vec(1i64..100_000, n)).prop_map(|(start, gaps)| {
        let mut t = start;
        gaps.into_iter()
            .map(|g| {
                t += meos::time::TimeDelta::from_secs(g);
                t
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn timestamp_round_trip(t in ts_strategy()) {
        let printed = t.to_string();
        let parsed = TimestampTz::parse(&printed).unwrap();
        prop_assert_eq!(parsed, t, "{}", printed);
    }

    #[test]
    fn tfloat_sequence_round_trip(
        times in increasing_ts(1..12),
        values in proptest::collection::vec(-1e6f64..1e6, 12),
        lower_inc in proptest::bool::ANY,
        upper_inc in proptest::bool::ANY,
    ) {
        let instants: Vec<TInstant<f64>> = times
            .iter()
            .zip(&values)
            .map(|(t, v)| TInstant::new(*v, *t))
            .collect();
        let seq = TSequence::new(instants, lower_inc, upper_inc, Interp::Linear)
            .unwrap();
        let printed = Temporal::Sequence(seq.clone()).to_string();
        let parsed = wkt::parse_tfloat(&printed).unwrap();
        prop_assert_eq!(parsed, Temporal::Sequence(seq), "{}", printed);
    }

    #[test]
    fn tfloat_step_round_trip(
        times in increasing_ts(2..8),
        values in proptest::collection::vec(-1e3f64..1e3, 8),
    ) {
        let instants: Vec<TInstant<f64>> = times
            .iter()
            .zip(&values)
            .map(|(t, v)| TInstant::new(*v, *t))
            .collect();
        let seq = TSequence::new(instants, true, true, Interp::Step).unwrap();
        let printed = Temporal::Sequence(seq.clone()).to_string();
        prop_assert!(printed.starts_with("Interp=Step;"), "{}", printed);
        let parsed = wkt::parse_tfloat(&printed).unwrap();
        prop_assert_eq!(parsed, Temporal::Sequence(seq));
    }

    #[test]
    fn tpoint_round_trip(
        times in increasing_ts(1..10),
        coords in proptest::collection::vec((-180.0f64..180.0, -90.0f64..90.0), 10),
    ) {
        let instants: Vec<TInstant<Point>> = times
            .iter()
            .zip(&coords)
            .map(|(t, (x, y))| TInstant::new(Point::new(*x, *y), *t))
            .collect();
        let seq = TSequence::linear(instants).unwrap();
        let printed = Temporal::Sequence(seq.clone()).to_string();
        let parsed = wkt::parse_tgeompoint(&printed).unwrap();
        prop_assert_eq!(parsed, Temporal::Sequence(seq), "{}", printed);
    }

    #[test]
    fn discrete_round_trip(
        times in increasing_ts(1..10),
        values in proptest::collection::vec(-1e3f64..1e3, 10),
    ) {
        let instants: Vec<TInstant<f64>> = times
            .iter()
            .zip(&values)
            .map(|(t, v)| TInstant::new(*v, *t))
            .collect();
        let seq = TSequence::discrete(instants).unwrap();
        let printed = Temporal::Sequence(seq.clone()).to_string();
        prop_assert!(printed.starts_with('{'), "{}", printed);
        let parsed = wkt::parse_tfloat(&printed).unwrap();
        prop_assert_eq!(parsed, Temporal::Sequence(seq));
    }

    #[test]
    fn sequence_set_round_trip(
        times in increasing_ts(4..16),
        values in proptest::collection::vec(-1e3f64..1e3, 16),
    ) {
        // Split the times into two disjoint runs.
        let n = times.len();
        if n < 4 { return Ok(()); }
        let cut = n / 2;
        let mk = |range: std::ops::Range<usize>| {
            TSequence::linear(
                times[range.clone()]
                    .iter()
                    .zip(&values[range])
                    .map(|(t, v)| TInstant::new(*v, *t))
                    .collect(),
            )
            .unwrap()
        };
        let ss = TSequenceSet::new(vec![mk(0..cut), mk(cut..n)]).unwrap();
        let printed = Temporal::SequenceSet(ss.clone()).to_string();
        let parsed = wkt::parse_tfloat(&printed).unwrap();
        prop_assert_eq!(parsed, Temporal::SequenceSet(ss), "{}", printed);
    }

    #[test]
    fn instant_round_trip(t in ts_strategy(), v in -1e9f64..1e9) {
        let inst: Temporal<f64> = TInstant::new(v, t).into();
        let parsed = wkt::parse_tfloat(&inst.to_string()).unwrap();
        prop_assert_eq!(parsed, inst);
    }

    #[test]
    fn point_round_trip(x in -180.0f64..180.0, y in -90.0f64..90.0) {
        let p = Point::new(x, y);
        let parsed = wkt::parse_point(&p.to_string()).unwrap();
        prop_assert_eq!(parsed, p);
    }
}
