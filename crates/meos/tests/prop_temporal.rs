//! Property-based tests for temporal sequences: construction invariants,
//! restriction soundness, value interpolation bounds, and the float
//! threshold restriction.

use meos::temporal::{Interp, TInstant, TSequence};
use meos::time::{Period, TimestampTz};
use proptest::prelude::*;

/// Strictly increasing timestamps with paired values.
fn samples_strategy() -> impl Strategy<Value = Vec<(f64, i64)>> {
    proptest::collection::vec((-100.0f64..100.0, 1i64..30), 1..40).prop_map(|pairs| {
        let mut t = 0i64;
        pairs
            .into_iter()
            .map(|(v, dt)| {
                t += dt;
                (v, t)
            })
            .collect()
    })
}

fn linear_seq(samples: &[(f64, i64)]) -> TSequence<f64> {
    TSequence::linear(
        samples
            .iter()
            .map(|&(v, s)| TInstant::new(v, TimestampTz::from_unix_secs(s)))
            .collect(),
    )
    .expect("strictly increasing by construction")
}

proptest! {
    #[test]
    fn value_at_within_min_max(samples in samples_strategy(), frac in 0.0f64..1.0) {
        let seq = linear_seq(&samples);
        let span = (seq.end_timestamp() - seq.start_timestamp()).micros();
        let t = TimestampTz::from_micros(
            seq.start_timestamp().micros() + (span as f64 * frac) as i64,
        );
        let v = seq.value_at(t).expect("inside period");
        prop_assert!(v >= seq.min_value() - 1e-9);
        prop_assert!(v <= seq.max_value() + 1e-9);
    }

    #[test]
    fn at_period_is_sound(samples in samples_strategy(), a in 0i64..1_200, b in 0i64..1_200) {
        let seq = linear_seq(&samples);
        let (lo, hi) = (a.min(b), a.max(b));
        let Ok(p) = Period::inclusive(
            TimestampTz::from_unix_secs(lo),
            TimestampTz::from_unix_secs(hi),
        ) else { return Ok(()); };
        match seq.at_period(&p) {
            Some(r) => {
                // Result period within both inputs.
                prop_assert!(p.contains_span(&r.period()));
                prop_assert!(seq.period().contains_span(&r.period()));
                // Values agree with the original at every instant.
                for i in r.instants() {
                    let orig = seq.value_at(i.t)
                        .or_else(|| Some(seq.ivalue_public_test(i.t)));
                    if let Some(o) = orig {
                        prop_assert!((o - i.value).abs() < 1e-9);
                    }
                }
            }
            None => prop_assert!(!seq.period().overlaps(&p)),
        }
    }

    #[test]
    fn minus_period_covers_complement(
        samples in samples_strategy(),
        a in 0i64..1_200,
        b in 0i64..1_200,
        probe in 0i64..1_200,
    ) {
        let seq = linear_seq(&samples);
        let (lo, hi) = (a.min(b), a.max(b));
        let Ok(p) = Period::inclusive(
            TimestampTz::from_unix_secs(lo),
            TimestampTz::from_unix_secs(hi),
        ) else { return Ok(()); };
        let t = TimestampTz::from_unix_secs(probe);
        let in_orig = seq.value_at(t).is_some();
        let in_at = seq.at_period(&p).and_then(|s| s.value_at(t)).is_some();
        let in_minus = seq
            .minus_period(&p)
            .iter()
            .any(|s| s.value_at(t).is_some());
        // At every probe, membership in orig == at ∪ minus (boundary
        // instants may appear in both pieces with equal values, which is
        // fine for a closure-based representation).
        prop_assert_eq!(in_orig, in_at || in_minus);
    }

    #[test]
    fn shift_preserves_shape(samples in samples_strategy(), delta in -500i64..500) {
        let seq = linear_seq(&samples);
        let d = meos::time::TimeDelta::from_secs(delta);
        let shifted = seq.shift(d);
        prop_assert_eq!(shifted.num_instants(), seq.num_instants());
        prop_assert_eq!(shifted.duration(), seq.duration());
        prop_assert_eq!(shifted.start_value(), seq.start_value());
        prop_assert_eq!(
            shifted.start_timestamp(),
            seq.start_timestamp() + d
        );
    }

    #[test]
    fn twavg_between_extremes(samples in samples_strategy()) {
        let seq = linear_seq(&samples);
        let avg = seq.twavg();
        prop_assert!(avg >= seq.min_value() - 1e-9, "{avg}");
        prop_assert!(avg <= seq.max_value() + 1e-9, "{avg}");
    }

    #[test]
    fn at_above_below_partition_time(samples in samples_strategy(), c in -120.0f64..120.0) {
        let seq = linear_seq(&samples);
        let above = seq.at_above(c);
        let below = seq.at_below(c);
        // Everywhere in the sequence period is covered by above ∪ below
        // (points exactly at c belong to both).
        let span = (seq.end_timestamp() - seq.start_timestamp()).micros();
        for k in 0..=20 {
            let t = TimestampTz::from_micros(
                seq.start_timestamp().micros() + span * k / 20,
            );
            if seq.value_at(t).is_some() {
                prop_assert!(
                    above.contains_value(t) || below.contains_value(t),
                    "uncovered instant at {t}"
                );
            }
        }
        // And the memberships agree with the actual values away from c.
        for k in 0..=20 {
            let t = TimestampTz::from_micros(
                seq.start_timestamp().micros() + span * k / 20,
            );
            if let Some(v) = seq.value_at(t) {
                if v > c + 1e-6 {
                    prop_assert!(above.contains_value(t));
                }
                if v < c - 1e-6 {
                    prop_assert!(below.contains_value(t));
                }
            }
        }
    }

    #[test]
    fn step_sequence_holds_values(samples in samples_strategy(), frac in 0.0f64..1.0) {
        let instants: Vec<TInstant<f64>> = samples
            .iter()
            .map(|&(v, s)| TInstant::new(v, TimestampTz::from_unix_secs(s)))
            .collect();
        let seq = TSequence::new(instants, true, true, Interp::Step).unwrap();
        let span = (seq.end_timestamp() - seq.start_timestamp()).micros();
        let t = TimestampTz::from_micros(
            seq.start_timestamp().micros() + (span as f64 * frac) as i64,
        );
        let v = seq.value_at(t).expect("inside period");
        // A step sequence only attains stored values.
        prop_assert!(
            seq.values().any(|x| *x == v),
            "step value {v} not among stored values"
        );
    }
}

/// Test-only access used by `at_period_is_sound`: sequences don't expose
/// interpolation outside bounds publicly, so approximate by `value_at` on
/// an inclusive-clone of the sequence.
trait IValueTest {
    fn ivalue_public_test(&self, t: TimestampTz) -> f64;
}

impl IValueTest for TSequence<f64> {
    fn ivalue_public_test(&self, t: TimestampTz) -> f64 {
        let inclusive = TSequence::new(self.instants().to_vec(), true, true, self.interp())
            .expect("same instants");
        inclusive.value_at(t).unwrap_or(f64::NAN)
    }
}
