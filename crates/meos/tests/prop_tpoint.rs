//! Property-based tests for temporal-point operations: restriction to
//! boxes is sound and tight, distances are consistent, simplification
//! preserves endpoints and tolerance.

use meos::boxes::STBox;
use meos::geo::{Geometry, Metric, Point};
use meos::temporal::{TInstant, TSequence};
use meos::time::TimestampTz;
use meos::tpoint;
use proptest::prelude::*;

/// A random planar trajectory (Euclidean metric keeps assertions exact).
fn traj_strategy() -> impl Strategy<Value = TSequence<Point>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, 1i64..20), 2..30).prop_map(
        |pts| {
            let mut t = 0i64;
            let instants = pts
                .into_iter()
                .map(|(x, y, dt)| {
                    t += dt;
                    TInstant::new(Point::new(x, y), TimestampTz::from_unix_secs(t))
                })
                .collect();
            TSequence::linear(instants).expect("increasing times")
        },
    )
}

fn box_strategy() -> impl Strategy<Value = STBox> {
    (
        -120.0f64..80.0,
        0.0f64..120.0,
        -120.0f64..80.0,
        0.0f64..120.0,
    )
        .prop_map(|(x0, w, y0, h)| STBox::from_coords(x0, x0 + w, y0, y0 + h, None).expect("valid"))
}

proptest! {
    #[test]
    fn at_stbox_pieces_inside_box(seq in traj_strategy(), bx in box_strategy()) {
        // Entry/exit instants are quantized to whole microseconds, so the
        // re-interpolated boundary position can deviate by up to
        // (coordinate span) × (0.5 µs / min segment duration) ≈ 1e-4 here.
        const TOL: f64 = 1e-4;
        for piece in tpoint::at_stbox(&seq, &bx) {
            for inst in piece.instants() {
                prop_assert!(
                    inst.value.x >= bx.xmin() - TOL
                        && inst.value.x <= bx.xmax() + TOL
                        && inst.value.y >= bx.ymin() - TOL
                        && inst.value.y <= bx.ymax() + TOL,
                    "{:?} outside {bx:?}", inst.value
                );
            }
            // Temporal soundness: pieces live within the original period.
            prop_assert!(seq.period().contains_span(&piece.period()));
        }
    }

    #[test]
    fn at_stbox_complete(seq in traj_strategy(), bx in box_strategy(), frac in 0.0f64..1.0) {
        // Any sampled instant strictly inside the box must be covered by
        // some restriction piece.
        let span = (seq.end_timestamp() - seq.start_timestamp()).micros();
        let t = TimestampTz::from_micros(
            seq.start_timestamp().micros() + (span as f64 * frac) as i64,
        );
        let Some(p) = seq.value_at(t) else { return Ok(()); };
        let strictly_inside = p.x > bx.xmin() + 1e-9
            && p.x < bx.xmax() - 1e-9
            && p.y > bx.ymin() + 1e-9
            && p.y < bx.ymax() - 1e-9;
        if strictly_inside {
            let covered = tpoint::at_stbox(&seq, &bx)
                .iter()
                .any(|piece| piece.value_at(t).is_some());
            prop_assert!(covered, "inside point at {t} not covered");
        }
    }

    #[test]
    fn nad_lower_bounds_vertex_distance(seq in traj_strategy(), x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let g = Geometry::Point(Point::new(x, y));
        let nad = tpoint::nearest_approach_distance(&seq, &g, Metric::Euclidean);
        let vertex_min = seq
            .values()
            .map(|p| p.euclidean(&Point::new(x, y)))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(nad <= vertex_min + 1e-9, "nad {nad} > vertex min {vertex_min}");
        prop_assert!(nad >= 0.0);
        // edwithin is consistent with nad.
        prop_assert!(tpoint::edwithin(&seq, &g, nad + 1e-9, Metric::Euclidean));
        if nad > 1e-9 {
            prop_assert!(!tpoint::edwithin(&seq, &g, nad - 1e-9, Metric::Euclidean));
        }
    }

    #[test]
    fn distance_sequence_attains_nad(seq in traj_strategy(), x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let g = Geometry::Point(Point::new(x, y));
        let d = tpoint::distance_to_geometry(&seq, &g, Metric::Euclidean);
        let nad = tpoint::nearest_approach_distance(&seq, &g, Metric::Euclidean);
        prop_assert!((d.min_value() - nad).abs() < 1e-6,
            "distance sequence min {} vs nad {nad}", d.min_value());
    }

    #[test]
    fn simplify_preserves_endpoints_and_tolerance(seq in traj_strategy(), tol in 0.1f64..20.0) {
        let simp = tpoint::simplify_dp(&seq, tol, Metric::Euclidean);
        prop_assert!(simp.num_instants() <= seq.num_instants());
        prop_assert_eq!(simp.start_value(), seq.start_value());
        prop_assert_eq!(simp.end_value(), seq.end_value());
        prop_assert_eq!(simp.start_timestamp(), seq.start_timestamp());
        prop_assert_eq!(simp.end_timestamp(), seq.end_timestamp());
        // Douglas–Peucker guarantee: every dropped vertex is within tol
        // of the simplified *spatial* path.
        let line = tpoint::trajectory(&simp);
        for inst in seq.instants() {
            let d = line.distance_to_point(&inst.value, Metric::Euclidean);
            prop_assert!(d <= tol + 1e-9, "dropped vertex {d} > {tol}");
        }
    }

    #[test]
    fn length_is_additive_under_time_split(seq in traj_strategy(), frac in 0.1f64..0.9) {
        let span = (seq.end_timestamp() - seq.start_timestamp()).micros();
        let mid = TimestampTz::from_micros(
            seq.start_timestamp().micros() + (span as f64 * frac) as i64,
        );
        let first = seq
            .at_period(&meos::time::Period::inclusive(seq.start_timestamp(), mid).unwrap())
            .expect("non-empty");
        let second = seq
            .at_period(&meos::time::Period::inclusive(mid, seq.end_timestamp()).unwrap())
            .expect("non-empty");
        let total = tpoint::length_with(&seq, Metric::Euclidean);
        let sum = tpoint::length_with(&first, Metric::Euclidean)
            + tpoint::length_with(&second, Metric::Euclidean);
        prop_assert!((total - sum).abs() < 1e-6 * (1.0 + total), "{total} vs {sum}");
    }

    #[test]
    fn speed_consistent_with_length(seq in traj_strategy()) {
        if let Some(sp) = tpoint::speed(&seq, Metric::Euclidean) {
            // Integrating speed over time recovers trajectory length.
            let integral = sp.integral();
            let length = tpoint::length_with(&seq, Metric::Euclidean);
            prop_assert!(
                (integral - length).abs() < 1e-6 * (1.0 + length),
                "∫speed {integral} vs length {length}"
            );
        }
    }

    #[test]
    fn stbox_bounds_trajectory(seq in traj_strategy()) {
        let bx = STBox::from_tpoint(&seq);
        for p in seq.values() {
            prop_assert!(bx.contains_point(p));
        }
        // Tightness: some vertex touches each side.
        let touches = |f: &dyn Fn(&Point) -> bool| seq.values().any(f);
        prop_assert!(touches(&|p| (p.x - bx.xmin()).abs() < 1e-12));
        prop_assert!(touches(&|p| (p.x - bx.xmax()).abs() < 1e-12));
        prop_assert!(touches(&|p| (p.y - bx.ymin()).abs() < 1e-12));
        prop_assert!(touches(&|p| (p.y - bx.ymax()).abs() < 1e-12));
    }
}
