//! Property-based tests for the span/span-set algebra: the set-semantics
//! laws every other layer (periods, sequences, boxes) builds on.

use meos::span::{Span, SpanSet};
use proptest::prelude::*;

/// Arbitrary non-empty float span with random bound flags.
fn span_strategy() -> impl Strategy<Value = Span<f64>> {
    (
        -1_000.0f64..1_000.0,
        0.0f64..500.0,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_filter_map("non-empty span", |(lo, width, li, ui)| {
            let hi = lo + width;
            if width == 0.0 && !(li && ui) {
                None
            } else {
                Span::new(lo, hi, li, ui).ok()
            }
        })
}

fn spanset_strategy() -> impl Strategy<Value = SpanSet<f64>> {
    proptest::collection::vec(span_strategy(), 0..8).prop_map(SpanSet::from_spans)
}

proptest! {
    #[test]
    fn intersection_symmetric(a in span_strategy(), b in span_strategy()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn intersection_contained_in_both(a in span_strategy(), b in span_strategy()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_span(&i), "{a:?} ⊇ {i:?}");
            prop_assert!(b.contains_span(&i));
        }
    }

    #[test]
    fn union_contains_both(a in span_strategy(), b in span_strategy()) {
        if let Some(u) = a.union(&b) {
            prop_assert!(u.contains_span(&a));
            prop_assert!(u.contains_span(&b));
        }
    }

    #[test]
    fn minus_disjoint_from_subtrahend(a in span_strategy(), b in span_strategy()) {
        for piece in a.minus(&b) {
            prop_assert!(a.contains_span(&piece));
            prop_assert!(!piece.overlaps(&b), "{piece:?} vs {b:?}");
        }
    }

    #[test]
    fn minus_plus_intersection_partitions(
        a in span_strategy(),
        b in span_strategy(),
        x in -1_200.0f64..1_200.0,
    ) {
        // Every point of `a` is either in a\b or in a∩b, never both.
        let in_a = a.contains_value(x);
        let in_minus = a.minus(&b).iter().any(|s| s.contains_value(x));
        let in_int = a.intersection(&b).is_some_and(|s| s.contains_value(x));
        prop_assert_eq!(in_a, in_minus || in_int);
        prop_assert!(!(in_minus && in_int));
    }

    #[test]
    fn contains_value_consistent_with_bounds(s in span_strategy(), x in -1_200.0f64..1_200.0) {
        if s.contains_value(x) {
            prop_assert!(x >= s.lower() && x <= s.upper());
        }
        if x > s.lower() && x < s.upper() {
            prop_assert!(s.contains_value(x));
        }
    }

    #[test]
    fn distance_zero_iff_touching(a in span_strategy(), b in span_strategy()) {
        let d = a.distance(&b);
        prop_assert!(d >= 0.0);
        if a.overlaps(&b) {
            prop_assert_eq!(d, 0.0);
        }
        prop_assert_eq!(d, b.distance(&a));
    }

    #[test]
    fn spanset_normalization_idempotent(set in spanset_strategy()) {
        let renorm = SpanSet::from_spans(set.spans().to_vec());
        prop_assert_eq!(&renorm, &set);
        // Members are strictly ordered and pairwise non-mergeable.
        for w in set.spans().windows(2) {
            prop_assert!(w[0].is_before(&w[1]));
            prop_assert!(!w[0].is_adjacent(&w[1]));
        }
    }

    #[test]
    fn spanset_union_membership(
        a in spanset_strategy(),
        b in spanset_strategy(),
        x in -1_200.0f64..1_200.0,
    ) {
        let u = a.union(&b);
        prop_assert_eq!(
            u.contains_value(x),
            a.contains_value(x) || b.contains_value(x)
        );
    }

    #[test]
    fn spanset_intersection_membership(
        a in spanset_strategy(),
        b in spanset_strategy(),
        x in -1_200.0f64..1_200.0,
    ) {
        let i = a.intersection(&b);
        prop_assert_eq!(
            i.contains_value(x),
            a.contains_value(x) && b.contains_value(x)
        );
    }

    #[test]
    fn spanset_minus_membership(
        a in spanset_strategy(),
        b in spanset_strategy(),
        x in -1_200.0f64..1_200.0,
    ) {
        let m = a.minus(&b);
        prop_assert_eq!(
            m.contains_value(x),
            a.contains_value(x) && !b.contains_value(x)
        );
    }

    #[test]
    fn spanset_total_width_additive_under_disjoint_union(set in spanset_strategy()) {
        // Width of the set equals the sum of member widths (members are
        // disjoint by construction).
        let total: f64 = set.spans().iter().map(|s| s.width()).sum();
        prop_assert!((set.total_width() - total).abs() < 1e-9);
    }
}
