//! Property suite for the columnar [`TupleBuffer`]: encode/decode
//! round-trips for every field type (fixed-width scalars, varsized WKT
//! text, opaque plugin payloads, nulls in any column), structural
//! identities (`split_at` + `concat`, `filter`, `gather` against their
//! row-level definitions), and metadata invariants (event-time bounds,
//! watermark/origin/sequence propagation) under randomly generated
//! streams. The buffer is the unit of transfer between source, operators
//! and partitions, so any representational loss here silently corrupts
//! every batched query.

use nebula::prelude::*;
use proptest::prelude::*;
use proptest::BoxedStrategy;
use std::sync::Arc;

/// A stand-in for an opaque MEOS payload (e.g. a serialized temporal
/// sequence): the engine must carry it through transpose, slicing and
/// re-materialization without inspecting it.
#[derive(Debug, PartialEq)]
struct Payload(Vec<u8>);

impl OpaqueValue for Payload {
    fn type_tag(&self) -> &'static str {
        "prop.payload"
    }
    fn est_bytes(&self) -> usize {
        self.0.len()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn opaque_eq(&self, other: &dyn OpaqueValue) -> bool {
        other
            .as_any()
            .downcast_ref::<Payload>()
            .is_some_and(|o| o == self)
    }
}

/// One column of every storable type; nulls can land anywhere.
fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("flag", DataType::Bool),
        ("n", DataType::Int),
        ("x", DataType::Float),
        ("wkt", DataType::Text),
        ("pos", DataType::Point),
        ("payload", DataType::Opaque),
    ])
}

// Int range stays within f64's exact-integer window: Value equality
// routes Int/Int through as_float for cross-type numeric comparison.
fn arb_int() -> impl Strategy<Value = i64> {
    -(1i64 << 40)..(1i64 << 40)
}

fn arb_float() -> impl Strategy<Value = f64> {
    // Finite, non-NaN: NaN breaks the reflexivity the identities assert;
    // one branch pins exact zero to keep the -0.0/0.0 family in play.
    (0u8..8, -1e9..1e9f64).prop_map(|(z, f)| if z == 0 { 0.0 } else { f })
}

/// WKT-style varsized text: points, linestrings, the empty string and
/// short non-ASCII tails — the side-arena cases.
fn arb_wkt() -> impl Strategy<Value = String> {
    (0u8..4, -180.0..180.0f64, -90.0..90.0f64, 0i64..1000).prop_map(|(kind, x, y, n)| match kind {
        0 => format!("POINT({x} {y})"),
        1 => format!("LINESTRING({x} {y}, {y} {n}, {n} {x})"),
        2 => String::new(),
        _ => format!("µ°-{n}"),
    })
}

/// A value of `dt`, null 1 time in 8 (any column, including `ts`).
fn arb_value_of(dt: DataType) -> BoxedStrategy<Value> {
    let typed: BoxedStrategy<Value> = match dt {
        DataType::Timestamp => arb_int().prop_map(Value::Timestamp).boxed(),
        DataType::Bool => proptest::bool::ANY.prop_map(Value::Bool).boxed(),
        DataType::Int => arb_int().prop_map(Value::Int).boxed(),
        DataType::Float => arb_float().prop_map(Value::Float).boxed(),
        DataType::Text => arb_wkt().prop_map(Value::text).boxed(),
        DataType::Point => (arb_float(), arb_float())
            .prop_map(|(x, y)| Value::Point { x, y })
            .boxed(),
        _ => proptest::collection::vec(0u16..256, 0..32)
            .prop_map(|b| {
                Value::Opaque(Arc::new(Payload(b.into_iter().map(|x| x as u8).collect()))
                    as Arc<dyn OpaqueValue>)
            })
            .boxed(),
    };
    (0u8..8, typed)
        .prop_map(|(k, v)| if k == 0 { Value::Null } else { v })
        .boxed()
}

fn arb_record() -> impl Strategy<Value = Record> {
    let f = |i: usize| arb_value_of(schema().fields()[i].dtype);
    (f(0), f(1), f(2), f(3), f(4), f(5), f(6))
        .prop_map(|(a, b, c, d, e, f, g)| Record::new(vec![a, b, c, d, e, f, g]))
}

fn arb_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(), 0..max)
}

fn arb_opt_ts() -> impl Strategy<Value = Option<EventTime>> {
    (proptest::bool::ANY, arb_int()).prop_map(|(some, t)| some.then_some(t))
}

fn arb_meta() -> impl Strategy<Value = BufferMeta> {
    (
        0u64..1 << 16,
        0u64..1 << 16,
        arb_opt_ts(),
        arb_opt_ts(),
        arb_opt_ts(),
    )
        .prop_map(|(origin, sequence, min_ts, max_ts, watermark)| {
            let (min_ts, max_ts) = match (min_ts, max_ts) {
                (Some(a), Some(b)) => (Some(a.min(b)), Some(a.max(b))),
                other => other,
            };
            BufferMeta {
                origin,
                sequence,
                min_ts,
                max_ts,
                watermark,
            }
        })
}

fn rows_of(tb: &TupleBuffer) -> Vec<Record> {
    (0..tb.len()).map(|i| tb.row(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Transpose then re-materialize is the identity, field by field,
    // through all three read paths (row, value_at, to_record_buffer).
    #[test]
    fn round_trip_all_types(recs in arb_records(64)) {
        let tb = TupleBuffer::from_records(schema(), &recs, BufferMeta::default());
        prop_assert_eq!(tb.len(), recs.len());
        prop_assert_eq!(tb.is_empty(), recs.is_empty());
        for (i, rec) in recs.iter().enumerate() {
            prop_assert_eq!(&tb.row(i), rec, "row {}", i);
            for c in 0..schema().len() {
                let got = tb.value_at(i, c);
                prop_assert_eq!(got.as_ref(), rec.get(c), "value_at({}, {})", i, c);
            }
        }
        let rb = tb.to_record_buffer();
        prop_assert_eq!(rb.records(), &recs[..]);
        prop_assert_eq!(rb.schema().len(), schema().len());
    }

    // `split_at` then `concat` reconstructs the original buffer exactly:
    // same rows, same length, same metadata.
    #[test]
    fn split_concat_identity(recs in arb_records(64), at in 0usize..80, meta in arb_meta()) {
        let tb = TupleBuffer::from_records(schema(), &recs, meta);
        let (head, tail) = tb.split_at(at);
        prop_assert_eq!(head.len() + tail.len(), tb.len());
        prop_assert_eq!(head.len(), at.min(tb.len()));
        prop_assert_eq!(head.meta(), &meta);
        prop_assert_eq!(tail.meta(), &meta);
        let glued = TupleBuffer::concat(schema(), &[head, tail]);
        prop_assert_eq!(rows_of(&glued), recs);
        prop_assert_eq!(glued.meta(), &meta);
    }

    // Concatenating any chunking of a stream reproduces the unchunked
    // transpose, and the merged metadata is the union of time bounds
    // (min of mins, max of maxes) with a *conservative* watermark —
    // min across chunks, and no watermark at all if any chunk lacks
    // one — plus origin/sequence from the head.
    #[test]
    fn chunked_concat_matches_whole(
        recs in arb_records(96),
        cuts in proptest::collection::vec(0usize..96, 0..4),
        metas in proptest::collection::vec(arb_meta(), 5),
    ) {
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(recs.len())).collect();
        cuts.sort_unstable();
        let mut chunks = Vec::new();
        let mut prev = 0;
        for c in cuts.into_iter().chain([recs.len()]) {
            chunks.push((prev, c.max(prev)));
            prev = prev.max(c);
        }
        let bufs: Vec<TupleBuffer> = chunks
            .iter()
            .zip(&metas)
            .map(|(&(a, b), &m)| TupleBuffer::from_records(schema(), &recs[a..b], m))
            .collect();
        let glued = TupleBuffer::concat(schema(), &bufs);
        prop_assert_eq!(rows_of(&glued), recs);

        let used = &metas[..bufs.len()];
        let fold = |sel: fn(&BufferMeta) -> Option<EventTime>, pick: fn(i64, i64) -> i64| {
            used.iter().filter_map(sel).reduce(pick)
        };
        prop_assert_eq!(glued.meta().min_ts, fold(|m| m.min_ts, i64::min));
        prop_assert_eq!(glued.meta().max_ts, fold(|m| m.max_ts, i64::max));
        let conservative_wm = used
            .iter()
            .map(|m| m.watermark)
            .reduce(|a, c| match (a, c) {
                (Some(a), Some(c)) => Some(a.min(c)),
                _ => None,
            })
            .flatten();
        prop_assert_eq!(glued.meta().watermark, conservative_wm);
        prop_assert_eq!(glued.meta().origin, used[0].origin);
        prop_assert_eq!(glued.meta().sequence, used[0].sequence);
    }

    // `filter` equals the row-level definition: keep row i iff mask[i].
    #[test]
    fn filter_matches_row_reference(recs in arb_records(64), seed in 0u64..u64::MAX) {
        let mask: Vec<bool> = (0..recs.len())
            .map(|i| (seed.rotate_left(i as u32)) & 1 == 1)
            .collect();
        let tb = TupleBuffer::from_records(schema(), &recs, BufferMeta::default());
        let kept = tb.filter(&mask);
        let expect: Vec<Record> = recs
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(r, _)| r.clone())
            .collect();
        prop_assert_eq!(rows_of(&kept), expect);
        prop_assert_eq!(kept.meta(), tb.meta());
    }

    // `gather` equals indexed row selection, including duplicates and
    // arbitrary permutation order.
    #[test]
    fn gather_matches_row_reference(
        recs in proptest::collection::vec(arb_record(), 1..48),
        picks in proptest::collection::vec(0usize..4096, 0..96),
    ) {
        let idx: Vec<usize> = picks.into_iter().map(|p| p % recs.len()).collect();
        let tb = TupleBuffer::from_records(schema(), &recs, BufferMeta::default());
        let got = tb.gather(&idx);
        let expect: Vec<Record> = idx.iter().map(|&i| recs[i].clone()).collect();
        prop_assert_eq!(rows_of(&got), expect);
    }

    // `recompute_time_bounds` agrees with a scalar scan over the rows'
    // event times, treating null timestamps as absent.
    #[test]
    fn time_bounds_match_rows(recs in arb_records(64)) {
        let mut tb = TupleBuffer::from_records(schema(), &recs, BufferMeta::default());
        tb.recompute_time_bounds(0);
        let times: Vec<EventTime> = recs
            .iter()
            .filter_map(|r| r.get(0).and_then(Value::as_timestamp))
            .collect();
        prop_assert_eq!(tb.meta().min_ts, times.iter().copied().min());
        prop_assert_eq!(tb.meta().max_ts, times.iter().copied().max());
        for (i, rec) in recs.iter().enumerate() {
            prop_assert_eq!(tb.event_time(i, 0), rec.get(0).and_then(Value::as_timestamp));
            if let Some(t) = tb.event_time(i, 0) {
                prop_assert!(tb.meta().min_ts.unwrap() <= t && t <= tb.meta().max_ts.unwrap());
            }
        }
        prop_assert_eq!(tb.min_event_time(0), tb.meta().min_ts);
        prop_assert_eq!(tb.max_event_time(0), tb.meta().max_ts);
    }

    // Size accounting: non-empty buffers report nonzero size, filtering
    // all rows away cannot grow the estimate, and the all-true filter is
    // a faithful copy.
    #[test]
    fn est_bytes_is_monotone(recs in arb_records(64)) {
        let tb = TupleBuffer::from_records(schema(), &recs, BufferMeta::default());
        if !recs.is_empty() {
            prop_assert!(tb.est_bytes() > 0);
        }
        let none = tb.filter(&vec![false; recs.len()]);
        prop_assert!(none.est_bytes() <= tb.est_bytes());
        let all = tb.filter(&vec![true; recs.len()]);
        prop_assert_eq!(rows_of(&all), recs);
    }
}
