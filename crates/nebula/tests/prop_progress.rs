//! Property suite for the per-origin punctuated progress model
//! ([`ProgressTracker`]): under random origin counts, sequence gaps,
//! duplicated deliveries and arbitrary cross-origin interleavings, the
//! global frontier must stay monotone, never outrun what any live
//! origin has contiguously promised, and — once every buffer has
//! arrived — agree exactly with an in-order single-pass reference.
//! The tracker is the engine's only clock: a violation here silently
//! closes windows over data still in flight in *every* execution mode.

use nebula::prelude::*;
use proptest::prelude::*;

/// One origin's punctuated feed: the per-sequence watermark stamps a
/// source would emit (`None` = an unpunctuated buffer).
#[derive(Debug, Clone)]
struct OriginFeed {
    punctuation: Vec<Option<EventTime>>,
}

/// Roughly one buffer in four goes unpunctuated.
fn origin_feed(max_len: usize) -> impl Strategy<Value = OriginFeed> {
    proptest::collection::vec(
        (0i64..500, 0u32..4).prop_map(|(w, tag)| (tag > 0).then_some(w * MICROS_PER_SEC)),
        1..=max_len,
    )
    .prop_map(|punctuation| OriginFeed { punctuation })
}

/// What the frontier must converge to once all feeds are fully
/// delivered: min over origins of each origin's max punctuation
/// (`None` if any origin never punctuates).
fn reference_frontier(feeds: &[OriginFeed]) -> Option<EventTime> {
    feeds
        .iter()
        .map(|f| f.punctuation.iter().flatten().copied().max())
        .reduce(|a, b| match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        })
        .flatten()
}

/// Seeded Fisher–Yates over an index schedule.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = XorShift::new(seed | 1);
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i + 1);
        items.swap(i, j);
    }
}

/// Replays every (origin, sequence) pair in `order`, asserting frontier
/// monotonicity at each step, and returns the final frontier.
fn replay(
    feeds: &[OriginFeed],
    order: &[(usize, usize)],
    duplicate_every: usize,
) -> std::result::Result<Option<EventTime>, String> {
    let mut t = ProgressTracker::with_origins(feeds.len() as u64);
    let mut last = None;
    for (i, &(origin, idx)) in order.iter().enumerate() {
        let p = feeds[origin].punctuation[idx];
        // Sequences are 1-based: the tracker drains from processed+1.
        t.observe(origin as u64, idx as u64 + 1, p);
        if duplicate_every > 0 && i % duplicate_every == 0 {
            // Redelivery of the same sequence must be a no-op.
            prop_assert_eq!(t.observe(origin as u64, idx as u64 + 1, p), None);
        }
        let f = t.frontier();
        prop_assert!(
            f >= last,
            "frontier regressed: {:?} after {:?} at step {}",
            f,
            last,
            i
        );
        // No intermediate frontier may exceed the final converged
        // value: punctuation for parked (gapped) sequences must not
        // leak into the clock early.
        if let (Some(f), Some(bound)) = (f, reference_frontier(feeds)) {
            prop_assert!(f <= bound, "frontier {} beyond final bound {}", f, bound);
        }
        last = f;
    }
    Ok(t.frontier())
}

proptest! {
    // Any delivery interleaving — per-origin reorderings interleaved
    // arbitrarily across origins, with duplicated deliveries — ends at
    // exactly the in-order single-pass reference frontier, and the
    // frontier is monotone throughout.
    #[test]
    fn frontier_converges_and_is_monotone(
        feeds in proptest::collection::vec(origin_feed(12), 1..5),
        seed in 0u64..u64::MAX,
        duplicate_every in 0usize..4,
    ) {
        let mut order: Vec<(usize, usize)> = feeds
            .iter()
            .enumerate()
            .flat_map(|(o, f)| (0..f.punctuation.len()).map(move |i| (o, i)))
            .collect();
        shuffle(&mut order, seed);
        let final_frontier = replay(&feeds, &order, duplicate_every)?;
        prop_assert_eq!(final_frontier, reference_frontier(&feeds));
    }

    // A sequence gap freezes the clock: however loud later sequences
    // punctuate, the frontier holds until the missing buffer lands.
    #[test]
    fn gap_holds_the_frontier(
        pre in 1usize..5,
        gap_len in 1usize..5,
        loud in 1_000i64..100_000,
    ) {
        let mut t = ProgressTracker::with_origins(1);
        for s in 1..=pre {
            t.observe(0, s as u64, Some(s as i64));
        }
        prop_assert_eq!(t.frontier(), Some(pre as i64));
        // Deliver sequences pre+2 .. pre+1+gap_len (skipping pre+1),
        // each punctuating far ahead.
        for k in 0..gap_len {
            t.observe(0, (pre + 2 + k) as u64, Some(loud));
            prop_assert_eq!(t.frontier(), Some(pre as i64), "gap must hold the clock");
        }
        // The straggler closes the gap: everything parked applies.
        t.observe(0, pre as u64 + 1, None);
        prop_assert_eq!(t.frontier(), Some(loud));
    }

    // With a single origin fed in order, the tracker is exactly the
    // old scalar watermark clock: frontier = running max punctuation.
    #[test]
    fn single_origin_in_order_matches_scalar_clock(
        feed in origin_feed(24),
    ) {
        let mut t = ProgressTracker::with_origins(1);
        let mut scalar: Option<EventTime> = None;
        for (i, p) in feed.punctuation.iter().enumerate() {
            t.observe(0, i as u64 + 1, *p);
            if let Some(w) = p {
                scalar = Some(scalar.map_or(*w, |s: i64| s.max(*w)));
            }
            prop_assert_eq!(t.frontier(), scalar);
        }
    }

    // Finishing origins only ever raises the frontier, and finishing
    // the last live origin freezes it (end-of-stream carries the
    // rest) — the idle-input regression the cluster fan-in fixed.
    #[test]
    fn finish_is_monotone_in_any_order(
        feeds in proptest::collection::vec(origin_feed(8), 2..5),
        seed in 0u64..u64::MAX,
    ) {
        let mut t = ProgressTracker::with_origins(feeds.len() as u64);
        for (o, f) in feeds.iter().enumerate() {
            for (i, p) in f.punctuation.iter().enumerate() {
                t.observe(o as u64, i as u64 + 1, *p);
            }
        }
        let mut finish_order: Vec<usize> = (0..feeds.len()).collect();
        shuffle(&mut finish_order, seed);
        let mut last = t.frontier();
        for (k, &o) in finish_order.iter().enumerate() {
            let advanced = t.finish(o as u64);
            let f = t.frontier();
            prop_assert!(f >= last, "finish({}) regressed {:?} -> {:?}", o, last, f);
            if k + 1 == finish_order.len() {
                prop_assert_eq!(advanced, None, "last finish freezes the clock");
                prop_assert_eq!(f, last, "no live origin may move the frontier");
            } else if let Some(a) = advanced {
                prop_assert_eq!(Some(a), f);
                prop_assert!(Some(a) > last, "advance must be strict");
            }
            last = f;
        }
        prop_assert!(t.all_done());
    }
}

/// Deterministic companion to the suite: the satellite-1 scenario end
/// to end. Concatenating a fast chunk (watermark 100 s) with a slow one
/// (watermark 50 s) must yield a buffer whose stamp cannot close the
/// window (50 s, 100 s] — under the old max-combining, feeding the
/// merged stamp to the tracker closed it with the slow chunk's records
/// still in flight.
#[test]
fn concat_stamp_cannot_close_straddled_window() {
    let schema = Schema::of(&[("ts", DataType::Timestamp)]);
    let chunk = |ts: EventTime, wm: EventTime, sequence: u64| {
        let rb = RecordBuffer::new(
            schema.clone(),
            vec![Record::new(vec![Value::Timestamp(ts)])],
        );
        let mut tb = TupleBuffer::from_record_buffer(&rb, Some(0), 0, sequence);
        tb.meta_mut().watermark = Some(wm);
        tb
    };
    let fast = chunk(99 * MICROS_PER_SEC, 100 * MICROS_PER_SEC, 1);
    let slow = chunk(51 * MICROS_PER_SEC, 50 * MICROS_PER_SEC, 2);
    let merged = TupleBuffer::concat(schema.clone(), &[fast, slow]);
    assert_eq!(merged.meta().watermark, Some(50 * MICROS_PER_SEC));

    let mut t = ProgressTracker::with_origins(1);
    t.observe(0, 1, merged.meta().watermark);
    // A tumbling window [60 s, 120 s) holding the slow chunk's record
    // must stay open: frontier 50 s < 120 s.
    assert!(t.frontier().unwrap() < 120 * MICROS_PER_SEC);
}
