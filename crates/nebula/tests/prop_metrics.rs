//! Property-based tests for the bounded log-bucketed [`Histogram`]:
//! bucketed percentiles stay within one bucket width (2^(1/8) ≈ 1.09×)
//! of the exact nearest-rank sample, merging partial histograms is
//! lossless at bucket granularity, and the exact sidecars (count, sum,
//! min, max) survive any split of the sample stream.

use nebula::prelude::*;
use proptest::prelude::*;

/// One bucket spans a 2^(1/8) factor; a bucketed percentile may be off
/// by at most that ratio (plus float fuzz) for samples >= 1.0.
const BUCKET_WIDTH: f64 = 1.090507732665258; // 2^(1/8)

/// Exact nearest-rank percentile over the raw samples — the reference
/// the bucketed answer is compared against.
fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Samples spanning bucket 0 (sub-1.0 values), the realistic latency
/// range in µs, and the far octaves — the selector die picks the band,
/// the mantissa draw places the sample inside it.
fn sample_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        (0u8..10, 0.0..1.0f64).prop_map(|(band, m)| match band {
            // Bucket 0: everything below 1.0 collapses together.
            0 | 1 => m,
            // The latency range the engine actually records (µs).
            2..=7 => 1.0 + m * 1e7,
            // Far octaves, exercising the index clamp.
            _ => 1e7 + m * 1e15,
        }),
        1..200,
    )
}

proptest! {
    // For every percentile, the bucketed answer is within one bucket
    // width of the exact nearest-rank sample — and exact at p0/p100.
    #[test]
    fn percentile_within_one_bucket_width(samples in sample_strategy()) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(h.percentile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(
            h.percentile(100.0).unwrap(),
            *sorted.last().unwrap()
        );
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            let exact = exact_percentile(&sorted, p);
            let got = h.percentile(p).unwrap();
            if exact < 1.0 {
                // Bucket 0 holds every sub-1.0 sample; the answer must
                // stay inside the exact observed range, which is all
                // the bucket can promise below the log-spaced floor.
                prop_assert!(
                    got >= sorted[0] && got <= *sorted.last().unwrap(),
                    "p{p}: {got} outside observed range"
                );
            } else {
                let ratio = got / exact;
                prop_assert!(
                    (1.0 / BUCKET_WIDTH - 1e-9..=BUCKET_WIDTH + 1e-9).contains(&ratio),
                    "p{p}: bucketed {got} vs exact {exact} (ratio {ratio})"
                );
            }
        }
    }

    // Splitting the sample stream across any number of partial
    // histograms and merging is indistinguishable from recording
    // everything into one histogram directly — the property that makes
    // per-partition and per-site service profiles safe to combine.
    #[test]
    fn merge_is_lossless_at_bucket_granularity(
        samples in sample_strategy(),
        cut in 0usize..200,
        parts in 2usize..5,
    ) {
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }

        // A two-way split at an arbitrary cut...
        let cut = cut.min(samples.len());
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &v in &samples[..cut] {
            left.record(v);
        }
        for &v in &samples[cut..] {
            right.record(v);
        }
        left.merge(&right);

        // ...and a round-robin split across `parts` histograms.
        let mut shards = vec![Histogram::new(); parts];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % parts].record(v);
        }
        let mut rr = Histogram::new();
        for shard in &shards {
            rr.merge(shard);
        }

        for merged in [&left, &rr] {
            prop_assert_eq!(merged.len(), whole.len());
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
            let (m, w) = (merged.mean().unwrap(), whole.mean().unwrap());
            prop_assert!((m - w).abs() <= 1e-6 * w.abs().max(1.0), "mean {m} vs {w}");
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
                prop_assert_eq!(
                    merged.percentile(p),
                    whole.percentile(p),
                    "p{} diverges after merge",
                    p
                );
            }
        }
    }

    // Merging into an empty histogram copies, merging an empty one is
    // a no-op, and percentiles never step outside the observed range.
    #[test]
    fn merge_identities_and_range(samples in sample_strategy()) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut from_empty = Histogram::new();
        from_empty.merge(&h);
        prop_assert_eq!(from_empty.percentile(50.0), h.percentile(50.0));
        let before = h.percentile(50.0);
        h.merge(&Histogram::new());
        prop_assert_eq!(h.percentile(50.0), before);
        for p in [0.0, 33.3, 66.6, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
        }
    }
}
