//! Property-based tests for the cluster wire codec: encode/decode
//! round-trips over arbitrary value trees, records and control frames,
//! byte accounting against the analytic estimator, and the no-panic
//! guarantee on corrupted frames.

use nebula::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The column pool: one of each wire-encodable primitive type, doubled
/// so records mix null and non-null per type.
fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("id", DataType::Int),
        ("v", DataType::Float),
        ("name", DataType::Text),
        ("ok", DataType::Bool),
        ("pos", DataType::Point),
        ("ts2", DataType::Timestamp),
        ("id2", DataType::Int),
        ("v2", DataType::Float),
        ("name2", DataType::Text),
    ])
}

/// Arbitrary records over the column pool: each field draws its typed
/// value (multi-byte UTF-8 text, full-range ints/floats) or null with
/// ~1/5 probability.
fn record_strategy() -> impl Strategy<Value = Record> {
    let s = schema();
    let cols: Vec<DataType> = s.fields().iter().map(|f| f.dtype).collect();
    proptest::collection::vec(
        (0u8..5, i64::MIN..i64::MAX, -1e12f64..1e12, 0usize..12),
        cols.len(),
    )
    .prop_map(move |draws| {
        let values = cols
            .iter()
            .zip(draws)
            .map(|(dtype, (null_die, i, f, len))| {
                if null_die == 0 {
                    return Value::Null;
                }
                match dtype {
                    DataType::Timestamp => Value::Timestamp(i),
                    DataType::Int => Value::Int(i),
                    DataType::Float => Value::Float(if f.is_nan() { 0.25 } else { f }),
                    DataType::Text => {
                        let s: String = "αβ7 train-£".chars().cycle().take(len).collect();
                        Value::text(s)
                    }
                    DataType::Bool => Value::Bool(i % 2 == 0),
                    DataType::Point => Value::Point {
                        x: i as f64 * 0.5,
                        y: if f.is_finite() { f } else { 1.0 },
                    },
                    _ => Value::Null,
                }
            })
            .collect();
        Record::new(values)
    })
}

fn batch_strategy() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(record_strategy(), 0..20)
}

/// NaN-tolerant value comparison (NaN floats round-trip bit-exactly but
/// compare unequal under `PartialEq`).
fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Point { x: ax, y: ay }, Value::Point { x: bx, y: by }) => {
            ax.to_bits() == bx.to_bits() && ay.to_bits() == by.to_bits()
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn data_frames_round_trip(records in batch_strategy()) {
        let reg = WireRegistry::new();
        let s = schema();
        let bytes = encode_frame(&Frame::Data(records.clone()), &s, &reg).expect("encode");
        match decode_frame(&bytes, &s, &reg).expect("decode") {
            Frame::Data(got) => {
                prop_assert_eq!(got.len(), records.len());
                for (a, b) in records.iter().zip(&got) {
                    prop_assert_eq!(a.len(), b.len());
                    for (va, vb) in a.values().iter().zip(b.values()) {
                        prop_assert!(values_eq(va, vb), "{} != {}", va, vb);
                    }
                }
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    #[test]
    fn control_frames_round_trip(wm in i64::MIN..i64::MAX) {
        let reg = WireRegistry::new();
        let s = schema();
        for frame in [Frame::Watermark(wm), Frame::Eos, Frame::Handoff] {
            let bytes = encode_frame(&frame, &s, &reg).expect("encode");
            let back = decode_frame(&bytes, &s, &reg).expect("decode");
            match (&frame, &back) {
                (Frame::Watermark(a), Frame::Watermark(b)) => prop_assert_eq!(a, b),
                (Frame::Eos, Frame::Eos) | (Frame::Handoff, Frame::Handoff) => {}
                other => prop_assert!(false, "{:?}", other),
            }
        }
    }

    #[test]
    fn wire_bytes_stay_near_the_estimator(records in batch_strategy()) {
        // The reconciliation contract behind `network_cost`: encoded
        // bytes exceed `est_bytes` only by framing (9 per frame) plus
        // field-count + bitmap (3 per record here), and fall below it
        // only where nulls pay 1 byte in the estimate but 0 on the wire.
        let reg = WireRegistry::new();
        let s = schema();
        let est: usize = records.iter().map(Record::est_bytes).sum();
        let nulls: usize = records
            .iter()
            .flat_map(|r| r.values())
            .filter(|v| v.is_null())
            .count();
        let text_estimate_floor = est.saturating_sub(nulls);
        let bytes = encode_frame(&Frame::Data(records.clone()), &s, &reg).expect("encode");
        let overhead = 9 + records.len() * (1 + s.len().div_ceil(8));
        prop_assert_eq!(bytes.len(), text_estimate_floor + overhead);
    }

    #[test]
    fn envelope_rejects_any_corruption(
        payload in proptest::collection::vec(0u8..255, 0..256),
        seq in 0u64..u64::MAX,
        pos in 0usize..4096,
        xor in 1u8..255,
        cut in 0usize..4096,
    ) {
        // The resilient link's integrity floor: CRC32 over kind + seq +
        // payload detects every single-byte corruption (burst errors up
        // to 32 bits are guaranteed caught), and truncation at any
        // length short of the full envelope never decodes.
        let env = encode_envelope(0, seq, &payload);
        let back = decode_envelope(&env).expect("clean envelope decodes");
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(&back.payload, &payload);

        let mut bad = env.clone();
        let pos = pos % bad.len();
        bad[pos] ^= xor;
        prop_assert!(
            decode_envelope(&bad).is_err(),
            "flipped byte {} must fail the checksum", pos
        );

        let cut = cut % env.len();
        prop_assert!(
            decode_envelope(&env[..cut]).is_err(),
            "truncated envelope ({} of {} bytes) must not decode", cut, env.len()
        );
    }

    #[test]
    fn sequence_reassembly_is_dedup_idempotent(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..255, 0..32), 1..24),
        dup_picks in proptest::collection::vec(0usize..24, 0..24),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // The exactly-once delivery contract the receiver builds on:
        // envelopes carry unique sequence numbers, so an arrival stream
        // with arbitrary duplication and reordering reassembles (keyed
        // by seq, first write wins) into exactly the original payload
        // sequence — reprocessing a duplicate is a no-op.
        let envelopes: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| encode_envelope(0, i as u64, p))
            .collect();
        let mut deliveries: Vec<Vec<u8>> = envelopes.clone();
        for pick in dup_picks {
            deliveries.push(envelopes[pick % envelopes.len()].clone());
        }
        // Deterministic shuffle.
        let mut state = shuffle_seed | 1;
        for i in (1..deliveries.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            deliveries.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut slots: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
        let mut duplicates = 0usize;
        for raw in &deliveries {
            let env = decode_envelope(raw).expect("uncorrupted envelope");
            if let Some(prev) = slots.get(&env.seq) {
                prop_assert_eq!(prev, &env.payload, "duplicate must carry identical bytes");
                duplicates += 1;
            } else {
                slots.insert(env.seq, env.payload);
            }
        }
        prop_assert_eq!(duplicates, deliveries.len() - payloads.len());
        let reassembled: Vec<Vec<u8>> = slots.into_values().collect();
        prop_assert_eq!(reassembled, payloads);
    }

    #[test]
    fn corrupted_frames_error_instead_of_panicking(
        records in batch_strategy(),
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
        cut in 0usize..4096,
    ) {
        let reg = WireRegistry::new();
        let s = schema();
        let good = encode_frame(&Frame::Data(records), &s, &reg).expect("encode");
        // Truncation at an arbitrary length: Ok only for the full frame.
        let cut = cut % (good.len() + 1);
        let truncated = decode_frame(&good[..cut], &s, &reg);
        if cut < good.len() {
            prop_assert!(truncated.is_err(), "truncated frame must not decode");
        }
        // Byte flips: decode must return (any) result without panicking,
        // and an intact length prefix with a mangled body must never be
        // accepted as a *different-length* record batch.
        let mut bad = good;
        for (pos, xor) in flips {
            let pos = pos % bad.len();
            bad[pos] ^= xor;
        }
        let _ = decode_frame(&bad, &s, &reg);
    }
}

#[test]
fn opaque_round_trip_through_registered_codec() {
    // The plugin seam end-to-end with a toy codec: an opaque payload
    // survives the frame, and a corrupted payload errors.
    #[derive(Debug, PartialEq)]
    struct Blob(Vec<u8>);
    impl OpaqueValue for Blob {
        fn type_tag(&self) -> &'static str {
            "test.blob"
        }
        fn est_bytes(&self) -> usize {
            self.0.len()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn opaque_eq(&self, other: &dyn OpaqueValue) -> bool {
            other
                .as_any()
                .downcast_ref::<Blob>()
                .is_some_and(|b| b.0 == self.0)
        }
    }
    struct BlobCodec;
    impl OpaqueWireCodec for BlobCodec {
        fn tag(&self) -> &'static str {
            "test.blob"
        }
        fn encode(&self, value: &dyn OpaqueValue, out: &mut Vec<u8>) -> Result<()> {
            let blob = value
                .as_any()
                .downcast_ref::<Blob>()
                .ok_or_else(|| NebulaError::Wire("not a blob".into()))?;
            out.extend_from_slice(&blob.0);
            Ok(())
        }
        fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn OpaqueValue>> {
            if bytes.first() == Some(&0xFF) {
                return Err(NebulaError::Wire("poisoned blob".into()));
            }
            Ok(Arc::new(Blob(bytes.to_vec())))
        }
    }

    let mut reg = WireRegistry::new();
    reg.register(Arc::new(BlobCodec));
    let s = Schema::of(&[("o", DataType::Opaque)]);
    let v = Value::Opaque(Arc::new(Blob(vec![1, 2, 3, 4])));
    let bytes = encode_frame(&Frame::Data(vec![Record::new(vec![v.clone()])]), &s, &reg).unwrap();
    match decode_frame(&bytes, &s, &reg).unwrap() {
        Frame::Data(recs) => assert_eq!(recs[0].get(0), Some(&v)),
        other => panic!("{other:?}"),
    }
    // A codec-level decode error propagates as a wire error.
    let poisoned = Value::Opaque(Arc::new(Blob(vec![0xFF, 9])));
    let bytes = encode_frame(&Frame::Data(vec![Record::new(vec![poisoned])]), &s, &reg).unwrap();
    assert!(decode_frame(&bytes, &s, &reg).is_err());
}
