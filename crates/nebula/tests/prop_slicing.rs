//! Property suite for stream slicing: the slice-based window operator
//! must be observationally identical to a naive per-window reference —
//! one eager accumulator per (key, window), updated on every overlapping
//! window per record — across random window geometries (including
//! coprime size/slide and `slide > size` coverage gaps), random jitter,
//! key cardinalities, watermark schedules and negative event times
//! (`div_euclid` slice assignment). The split pipeline (edge
//! `WindowPartialOp` → cloud `WindowMergeOp`) must match too, for every
//! splittable aggregate including the decomposed `avg` and the
//! order-dependent `first`/`last`.

use nebula::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const U: i64 = 1_000; // one time unit in µs — keeps geometries readable

fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("key", DataType::Int),
        ("v", DataType::Float),
    ])
}

fn all_aggs() -> Vec<WindowAgg> {
    vec![
        WindowAgg::new("n", AggSpec::Count),
        WindowAgg::new("sum_v", AggSpec::Sum(col("v"))),
        WindowAgg::new("min_v", AggSpec::Min(col("v"))),
        WindowAgg::new("max_v", AggSpec::Max(col("v"))),
        WindowAgg::new("avg_v", AggSpec::Avg(col("v"))),
        WindowAgg::new("first_v", AggSpec::First(col("v"))),
        WindowAgg::new("last_v", AggSpec::Last(col("v"))),
    ]
}

fn keys() -> Vec<(String, Expr)> {
    vec![("key".to_string(), col("key"))]
}

/// One generated scenario: a window geometry, a record stream (possibly
/// out of order, possibly with negative timestamps), and a watermark
/// schedule interleaved every `wm_every` records.
#[derive(Debug, Clone)]
struct Scenario {
    spec: WindowSpec,
    /// (ts µs, key, value) in arrival order.
    records: Vec<(i64, i64, f64)>,
    wm_every: usize,
    slack: i64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (1i64..7, 1i64..7),
        proptest::collection::vec((-60i64..60, 0i64..4, -9i64..9, 0i64..2), 0..200),
        (1usize..8, 0i64..12),
    )
        .prop_map(|((size_u, slide_u), rows, (wm_every, slack_u))| {
            let spec = if size_u == slide_u {
                WindowSpec::Tumbling { size: size_u * U }
            } else {
                WindowSpec::Sliding {
                    size: size_u * U,
                    slide: slide_u * U,
                }
            };
            // Sub-slice offsets (t * U/2) exercise non-aligned events.
            let records = rows
                .into_iter()
                .map(|(t, k, v, half)| (t * U + half * U / 2, k, v as f64))
                .collect();
            Scenario {
                spec,
                records,
                wm_every,
                slack: slack_u * U,
            }
        })
}

/// The event feed a scenario produces: data batches interleaved with
/// bounded-out-of-orderness watermarks, exactly like the runtime's
/// ingest loop generates them.
fn messages(sc: &Scenario) -> Vec<StreamMessage> {
    let mut out = Vec::new();
    let mut max_ts = i64::MIN;
    for chunk in sc.records.chunks(sc.wm_every.max(1)) {
        let recs: Vec<Record> = chunk
            .iter()
            .map(|&(ts, k, v)| {
                Record::new(vec![Value::Timestamp(ts), Value::Int(k), Value::Float(v)])
            })
            .collect();
        for r in chunk {
            max_ts = max_ts.max(r.0);
        }
        out.push(StreamMessage::Data(RecordBuffer::new(schema(), recs)));
        if max_ts != i64::MIN {
            out.push(StreamMessage::Watermark(max_ts - sc.slack));
        }
    }
    out.push(StreamMessage::Eos);
    out
}

fn drive(op: &mut dyn Operator, feed: Vec<StreamMessage>) -> Vec<Record> {
    let mut got = Vec::new();
    let mut out = Vec::new();
    for msg in feed {
        match msg {
            StreamMessage::Data(b) => op.process(b, &mut out).unwrap(),
            StreamMessage::Columnar(b) => op.process_columnar(b, &mut out).unwrap(),
            StreamMessage::Watermark(w) => op.on_watermark(w, &mut out).unwrap(),
            StreamMessage::Eos => op.on_eos(&mut out).unwrap(),
        }
    }
    for msg in out {
        if let StreamMessage::Data(b) = msg {
            got.extend(b.records().iter().cloned());
        }
    }
    got
}

/// The naive reference: one eager accumulator set per (key, window),
/// every record updates every overlapping open window, windows emit when
/// the watermark passes their end. This is exactly the seed engine's
/// O(size/slide)-per-record evaluation strategy.
struct NaiveWindows {
    spec: WindowSpec,
    size: i64,
    registry: FunctionRegistry,
    state: HashMap<(i64, i64), Vec<Box<dyn Aggregator>>>,
    wm: i64,
    late: u64,
    emitted: Vec<Record>,
}

impl NaiveWindows {
    fn new(spec: WindowSpec) -> Self {
        let size = spec.size().expect("time window");
        NaiveWindows {
            spec,
            size,
            registry: FunctionRegistry::with_builtins(),
            state: HashMap::new(),
            wm: i64::MIN,
            late: 0,
            emitted: Vec::new(),
        }
    }

    fn record(&mut self, ts: i64, key: i64, v: f64) {
        let rec = Record::new(vec![Value::Timestamp(ts), Value::Int(key), Value::Float(v)]);
        let starts = self.spec.assign(ts);
        if starts.is_empty() {
            return; // coverage gap: no window, not late either
        }
        if starts.iter().all(|s| s + self.size <= self.wm) {
            self.late += 1; // late for every window: one drop
            return;
        }
        for start in starts {
            if start + self.size <= self.wm {
                continue; // closed window: silently skip, still absorbed elsewhere
            }
            let aggs = self.state.entry((key, start)).or_insert_with(|| {
                all_aggs()
                    .iter()
                    .map(|a| {
                        a.spec
                            .create(&schema(), &self.registry, "ts")
                            .expect("create")
                    })
                    .collect()
            });
            for agg in aggs {
                agg.update(&rec).expect("update");
            }
        }
    }

    fn watermark(&mut self, wm: i64) {
        self.wm = self.wm.max(wm);
        let due: Vec<(i64, i64)> = self
            .state
            .keys()
            .filter(|(_, start)| start + self.size <= self.wm)
            .cloned()
            .collect();
        for key in due {
            let mut aggs = self.state.remove(&key).expect("due");
            let mut values = vec![
                Value::Int(key.0),
                Value::Timestamp(key.1),
                Value::Timestamp(key.1 + self.size),
            ];
            for agg in &mut aggs {
                values.push(agg.finish().expect("finish"));
            }
            self.emitted.push(Record::new(values));
        }
    }

    fn eos(&mut self) {
        let due: Vec<(i64, i64)> = self.state.keys().cloned().collect();
        for key in due {
            let mut aggs = self.state.remove(&key).expect("due");
            let mut values = vec![
                Value::Int(key.0),
                Value::Timestamp(key.1),
                Value::Timestamp(key.1 + self.size),
            ];
            for agg in &mut aggs {
                values.push(agg.finish().expect("finish"));
            }
            self.emitted.push(Record::new(values));
        }
    }
}

fn run_naive(sc: &Scenario) -> (Vec<Record>, u64) {
    let mut naive = NaiveWindows::new(sc.spec.clone());
    for msg in messages(sc) {
        match msg {
            StreamMessage::Data(b) => {
                for r in b.records() {
                    naive.record(
                        r.get(0).unwrap().as_timestamp().unwrap(),
                        r.get(1).unwrap().as_int().unwrap(),
                        r.get(2).unwrap().as_float().unwrap(),
                    );
                }
            }
            StreamMessage::Columnar(_) => unreachable!("messages() emits row buffers only"),
            StreamMessage::Watermark(w) => naive.watermark(w),
            StreamMessage::Eos => naive.eos(),
        }
    }
    (naive.emitted, naive.late)
}

fn normalized(mut recs: Vec<Record>) -> Vec<Record> {
    recs.sort_by_cached_key(record_sort_key);
    recs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Slice-based aggregation ≡ naive per-window accumulation, bit for
    // bit, over every aggregate at once.
    #[test]
    fn slicing_equals_naive_per_window_reference(sc in scenario_strategy()) {
        let reg = FunctionRegistry::with_builtins();
        let mut op = WindowOp::new("ts", &keys(), sc.spec.clone(), all_aggs(), schema(), &reg)
            .expect("window op");
        let got = drive(&mut op, messages(&sc));
        let (expect, naive_late) = run_naive(&sc);
        prop_assert_eq!(normalized(got), normalized(expect));
        prop_assert_eq!(op.late_drops(), naive_late);
    }

    // The edge/cloud split — per-slice partials shipped at watermark
    // boundaries, merged cloud-side — matches the single-process slice
    // operator exactly, covering the decomposed `avg` and the
    // timestamped `first`/`last` partials.
    #[test]
    fn split_pipeline_equals_local_window(sc in scenario_strategy()) {
        let reg = FunctionRegistry::with_builtins();
        let mut local = WindowOp::new("ts", &keys(), sc.spec.clone(), all_aggs(), schema(), &reg)
            .expect("window op");
        let expect = drive(&mut local, messages(&sc));

        let mut edge = WindowPartialOp::new(
            "ts", &keys(), &sc.spec, all_aggs(), schema(), &reg,
        ).expect("partial op");
        let mut cloud = WindowMergeOp::new(
            "ts", &keys(), &sc.spec, all_aggs(), schema(), &reg,
        ).expect("merge op");
        let mut crossing = Vec::new();
        for msg in messages(&sc) {
            match msg {
                StreamMessage::Data(b) => edge.process(b, &mut crossing).unwrap(),
                StreamMessage::Columnar(b) => edge.process_columnar(b, &mut crossing).unwrap(),
                StreamMessage::Watermark(w) => edge.on_watermark(w, &mut crossing).unwrap(),
                StreamMessage::Eos => edge.on_eos(&mut crossing).unwrap(),
            }
        }
        let mut out = Vec::new();
        for msg in crossing {
            match msg {
                StreamMessage::Data(b) => cloud.process(b, &mut out).unwrap(),
                StreamMessage::Columnar(b) => cloud.process_columnar(b, &mut out).unwrap(),
                StreamMessage::Watermark(w) => cloud.on_watermark(w, &mut out).unwrap(),
                StreamMessage::Eos => cloud.on_eos(&mut out).unwrap(),
            }
        }
        let mut got = Vec::new();
        for msg in out {
            if let StreamMessage::Data(b) = msg {
                got.extend(b.records().iter().cloned());
            }
        }
        prop_assert_eq!(normalized(got), normalized(expect));
        prop_assert_eq!(cloud.late_partials(), 0);
        prop_assert_eq!(edge.late_drops(), local.late_drops());
    }

    // Sharding records across two edges and merging both partial
    // streams reproduces the union run — the multi-train fan-in.
    #[test]
    fn two_edge_fan_in_equals_union(sc in scenario_strategy()) {
        let reg = FunctionRegistry::with_builtins();
        let mut local = WindowOp::new("ts", &keys(), sc.spec.clone(), all_aggs(), schema(), &reg)
            .expect("window op");
        let expect = drive(&mut local, messages(&sc));

        let mut edges = [
            WindowPartialOp::new("ts", &keys(), &sc.spec, all_aggs(), schema(), &reg)
                .expect("edge 0"),
            WindowPartialOp::new("ts", &keys(), &sc.spec, all_aggs(), schema(), &reg)
                .expect("edge 1"),
        ];
        let mut cloud = WindowMergeOp::new(
            "ts", &keys(), &sc.spec, all_aggs(), schema(), &reg,
        ).expect("merge op");
        // Key-shard the feed and broadcast watermarks. Like the cluster
        // fan-in's min-combined watermark, the cloud only advances once
        // BOTH edges have flushed and forwarded a given watermark — so
        // per round, both edges' data reaches the merge before the
        // shared watermark does.
        let mut out = Vec::new();
        for msg in messages(&sc) {
            let mut crossing = Vec::new();
            let mut is_wm = None;
            let mut is_eos = false;
            match msg {
                StreamMessage::Data(b) => {
                    let mut shards: [Vec<Record>; 2] = [Vec::new(), Vec::new()];
                    for r in b.records() {
                        let k = r.get(1).unwrap().as_int().unwrap();
                        shards[(k.rem_euclid(2)) as usize].push(r.clone());
                    }
                    for (e, shard) in edges.iter_mut().zip(shards) {
                        if !shard.is_empty() {
                            e.process(RecordBuffer::new(schema(), shard), &mut crossing)
                                .unwrap();
                        }
                    }
                }
                StreamMessage::Columnar(_) => {
                    unreachable!("messages() emits row buffers only")
                }
                StreamMessage::Watermark(w) => {
                    is_wm = Some(w);
                    for e in &mut edges {
                        e.on_watermark(w, &mut crossing).unwrap();
                    }
                }
                StreamMessage::Eos => {
                    is_eos = true;
                    for e in &mut edges {
                        e.on_eos(&mut crossing).unwrap();
                    }
                }
            }
            for m in crossing {
                if let StreamMessage::Data(b) = m {
                    cloud.process(b, &mut out).unwrap();
                }
            }
            if let Some(w) = is_wm {
                cloud.on_watermark(w, &mut out).unwrap();
            }
            if is_eos {
                cloud.on_eos(&mut out).unwrap();
            }
        }
        let mut got = Vec::new();
        for msg in out {
            if let StreamMessage::Data(b) = msg {
                got.extend(b.records().iter().cloned());
            }
        }
        prop_assert_eq!(normalized(got), normalized(expect));
        prop_assert_eq!(cloud.late_partials(), 0);
    }
}
