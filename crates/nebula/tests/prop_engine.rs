//! Property-based tests for the engine: window completeness (every event
//! lands in exactly the right number of windows), filter/map algebraic
//! laws, watermark-order independence under sufficient slack, and
//! expression evaluation invariants.

use nebula::prelude::*;
use proptest::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("key", DataType::Int),
        ("v", DataType::Float),
    ])
}

fn rec(ts: i64, key: i64, v: f64) -> Record {
    Record::new(vec![Value::Timestamp(ts), Value::Int(key), Value::Float(v)])
}

/// Random event streams: bounded timestamps so windows stay countable.
fn stream_strategy() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec((0i64..600, 0i64..4, -100.0f64..100.0), 1..300).prop_map(
        |mut rows| {
            rows.sort_by_key(|r| r.0);
            rows.into_iter()
                .map(|(s, k, v)| rec(s * MICROS_PER_SEC, k, v))
                .collect()
        },
    )
}

fn run(query: &Query, records: Vec<Record>, slack_s: i64) -> Vec<Record> {
    let mut env = StreamEnvironment::with_config(EnvConfig {
        buffer_size: 64,
        watermark_every: 2,
        ..EnvConfig::default()
    });
    env.add_source(
        "s",
        Box::new(VecSource::new(schema(), records)),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: slack_s * MICROS_PER_SEC,
        },
    );
    let (mut sink, got) = CollectingSink::new();
    env.run(query, &mut sink).expect("query runs");
    got.records()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tumbling_window_counts_every_event_once(records in stream_strategy()) {
        let n = records.len() as i64;
        let q = Query::from("s").window(
            vec![],
            WindowSpec::Tumbling { size: 60 * MICROS_PER_SEC },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let out = run(&q, records, 5);
        let total: i64 = out.iter().map(|r| r.get(2).unwrap().as_int().unwrap()).sum();
        prop_assert_eq!(total, n, "event conservation");
        // Window bounds aligned and non-overlapping.
        let mut starts: Vec<i64> = out
            .iter()
            .map(|r| r.get(0).unwrap().as_timestamp().unwrap())
            .collect();
        starts.sort_unstable();
        for w in starts.windows(2) {
            prop_assert!(w[1] - w[0] >= 60 * MICROS_PER_SEC);
        }
        for s in starts {
            prop_assert_eq!(s % (60 * MICROS_PER_SEC), 0, "aligned");
        }
    }

    #[test]
    fn sliding_window_multiplicity(records in stream_strategy()) {
        // size/slide = 3 -> every event counted exactly 3 times.
        let n = records.len() as i64;
        let q = Query::from("s").window(
            vec![],
            WindowSpec::Sliding {
                size: 60 * MICROS_PER_SEC,
                slide: 20 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let out = run(&q, records, 5);
        let total: i64 = out.iter().map(|r| r.get(2).unwrap().as_int().unwrap()).sum();
        prop_assert_eq!(total, 3 * n);
    }

    #[test]
    fn keyed_windows_partition_events(records in stream_strategy()) {
        let n = records.len() as i64;
        let q = Query::from("s").window(
            vec![("key", col("key"))],
            WindowSpec::Tumbling { size: 30 * MICROS_PER_SEC },
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("min_v", AggSpec::Min(col("v"))),
                WindowAgg::new("max_v", AggSpec::Max(col("v"))),
            ],
        );
        let out = run(&q, records, 5);
        let total: i64 = out.iter().map(|r| r.get(3).unwrap().as_int().unwrap()).sum();
        prop_assert_eq!(total, n);
        for r in &out {
            let lo = r.get(4).unwrap().as_float().unwrap();
            let hi = r.get(5).unwrap().as_float().unwrap();
            prop_assert!(lo <= hi);
        }
    }

    #[test]
    fn filter_partition_law(records in stream_strategy(), c in -100.0f64..100.0) {
        // |filter(p)| + |filter(!p)| == |input| (p never null here).
        let keep = Query::from("s").filter(col("v").ge(lit(c)));
        let drop = Query::from("s").filter(col("v").ge(lit(c)).not());
        let n = records.len();
        let a = run(&keep, records.clone(), 5).len();
        let b = run(&drop, records, 5).len();
        prop_assert_eq!(a + b, n);
    }

    #[test]
    fn map_preserves_cardinality_and_values(records in stream_strategy(), m in -5.0f64..5.0) {
        let q = Query::from("s").map_extend(vec![("scaled", col("v").mul(lit(m)))]);
        let out = run(&q, records.clone(), 5);
        prop_assert_eq!(out.len(), records.len());
        for (orig, mapped) in records.iter().zip(&out) {
            let v = orig.get(2).unwrap().as_float().unwrap();
            let s = mapped.get(3).unwrap().as_float().unwrap();
            prop_assert!((s - v * m).abs() < 1e-9);
        }
    }

    #[test]
    fn jitter_with_slack_is_lossless(records in stream_strategy(), seed in 1u64..1000) {
        // Windowed counts are identical between in-order and jittered
        // delivery when the slack covers the jitter window.
        let q = Query::from("s").window(
            vec![("key", col("key"))],
            WindowSpec::Tumbling { size: 60 * MICROS_PER_SEC },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let ordered = run(&q, records.clone(), 700);
        let mut env = StreamEnvironment::new();
        env.add_source(
            "s",
            Box::new(JitterSource::new(
                VecSource::new(schema(), records),
                16,
                seed,
            )),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 700 * MICROS_PER_SEC,
            },
        );
        let (mut sink, got) = CollectingSink::new();
        env.run(&q, &mut sink).expect("runs");
        let mut a: Vec<String> = ordered.iter().map(|r| r.to_string()).collect();
        let mut b: Vec<String> =
            got.records().iter().map(|r| r.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn threshold_windows_respect_min_count(records in stream_strategy(), c in -50.0f64..50.0) {
        let q = Query::from("s").window(
            vec![("key", col("key"))],
            WindowSpec::Threshold { predicate: col("v").gt(lit(c)), min_count: 3 },
            vec![WindowAgg::new("n", AggSpec::Count), WindowAgg::new("min_v", AggSpec::Min(col("v")))],
        );
        for r in run(&q, records, 5) {
            let n = r.get(3).unwrap().as_int().unwrap();
            prop_assert!(n >= 3, "min_count respected, got {n}");
            let lo = r.get(4).unwrap().as_float().unwrap();
            prop_assert!(lo > c, "window only holds satisfying records");
        }
    }

    #[test]
    fn cep_matches_within_bound(records in stream_strategy(), within_s in 1i64..120) {
        let pattern = Pattern::new(
            "hi-lo",
            vec![
                PatternStep::new("hi", col("v").gt(lit(50.0))),
                PatternStep::new("lo", col("v").lt(lit(-50.0))),
            ],
            within_s * MICROS_PER_SEC,
        )
        .keyed_by(col("key"));
        let q = Query::from("s").cep(pattern);
        for r in run(&q, records, 5) {
            let start = r.get(4).unwrap().as_timestamp().unwrap();
            let end = r.get(5).unwrap().as_timestamp().unwrap();
            prop_assert!(end >= start);
            prop_assert!(end - start <= within_s * MICROS_PER_SEC);
            // The completing record really is a 'lo'.
            let v = r.get(2).unwrap().as_float().unwrap();
            prop_assert!(v < -50.0);
        }
    }

    #[test]
    fn windowed_counts_invariant_under_parallelism_and_buffer_size(
        records in stream_strategy(),
        parallelism in 1usize..5,
        buffer_size in 8usize..128,
    ) {
        // The keyed windowed count profile is an execution-invariant:
        // however the stream is sharded and batched, every (key, window)
        // pair must report the same count.
        let q = Query::from("s").window(
            vec![("key", col("key"))],
            WindowSpec::Tumbling { size: 60 * MICROS_PER_SEC },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let reference = {
            let mut out = run(&q, records.clone(), 5);
            normalize_records(&mut out);
            out
        };
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size,
            watermark_every: 2,
            parallelism,
            ..EnvConfig::default()
        });
        env.add_source(
            "s",
            Box::new(VecSource::new(schema(), records)),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let m = env.run_partitioned(&q, &mut sink).expect("partitioned runs");
        let mut out = got.records();
        normalize_records(&mut out);
        prop_assert_eq!(out, reference);
        prop_assert_eq!(m.records_out as usize, got.len());
    }

    #[test]
    fn partitioned_stateless_invariant(
        records in stream_strategy(),
        parallelism in 1usize..5,
        c in -100.0f64..100.0,
    ) {
        // Round-robin sharding of a stateless plan preserves the result
        // multiset and the in/out counters exactly.
        let q = Query::from("s")
            .filter(col("v").ge(lit(c)))
            .map_extend(vec![("double", col("v").mul(lit(2.0)))]);
        let mut reference = run(&q, records.clone(), 5);
        normalize_records(&mut reference);
        let n = records.len() as u64;
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 32,
            parallelism,
            ..EnvConfig::default()
        });
        env.add_source(
            "s",
            Box::new(VecSource::new(schema(), records)),
            WatermarkStrategy::None,
        );
        let (mut sink, got) = CollectingSink::new();
        let m = env.run_partitioned(&q, &mut sink).expect("partitioned runs");
        let mut out = got.records();
        normalize_records(&mut out);
        prop_assert_eq!(out, reference);
        prop_assert_eq!(m.records_in, n);
    }

    #[test]
    fn histogram_merge_matches_concatenation(
        parts in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10_000.0, 0..40),
            1..6,
        ),
        p in 0.0f64..100.0,
    ) {
        // Quantiles of per-worker histograms merged == quantiles of one
        // histogram over the concatenated samples: metric merging loses
        // nothing.
        let mut merged = Histogram::new();
        let mut single = Histogram::new();
        for part in &parts {
            let mut h = Histogram::new();
            for &v in part {
                h.record(v);
                single.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.len(), single.len());
        prop_assert_eq!(merged.percentile(p), single.percentile(p));
        prop_assert_eq!(merged.percentile(50.0), single.percentile(50.0));
        prop_assert_eq!(merged.mean().is_some(), !merged.is_empty());
    }

    #[test]
    fn threaded_matches_sync(records in stream_strategy()) {
        let q = Query::from("s")
            .filter(col("v").gt(lit(0.0)))
            .map_extend(vec![("double", col("v").mul(lit(2.0)))]);
        let sync_out = run(&q, records.clone(), 5);

        let mut env = StreamEnvironment::new();
        env.add_source(
            "s",
            Box::new(VecSource::new(schema(), records)),
            WatermarkStrategy::None,
        );
        let (mut sink, got) = CollectingSink::new();
        env.run_threaded(&q, &mut sink).expect("threaded runs");
        prop_assert_eq!(got.records(), sync_out);
    }
}
