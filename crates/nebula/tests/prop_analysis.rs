//! Property-based soundness tests for the pre-flight static analyzer.
//!
//! Random plans — including deliberately broken ones (unknown columns,
//! type mismatches, degenerate window geometry, narrowing projections
//! that drop the event-time field) — are analyzed and then actually
//! compiled and executed. The pinned properties:
//!
//! 1. **Soundness**: an analyzer-accepted plan compiles and runs clean
//!    in every single-process mode (`run`, `run_threaded`,
//!    `run_partitioned`).
//! 2. **Rejections are real**: an analyzer-rejected plan either fails
//!    to compile or crashes at runtime — never runs clean end to end.
//! 3. **Warnings never reject** and never change results.

use nebula::analysis::{analyze, AnalysisContext, AnalysisReport};
use nebula::prelude::*;
use proptest::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(&[
        ("ts", DataType::Timestamp),
        ("key", DataType::Int),
        ("v", DataType::Float),
        ("name", DataType::Text),
    ])
}

fn records() -> Vec<Record> {
    (0..120)
        .map(|i| {
            Record::new(vec![
                Value::Timestamp(i * MICROS_PER_SEC),
                Value::Int(i % 4),
                Value::Float((i % 17) as f64 - 8.0),
                Value::Text(format!("n{}", i % 3).into()),
            ])
        })
        .collect()
}

/// A deterministic decision tape: random plans are decoded from a
/// vector of seeds, so every shape is reachable and reproducible.
struct Tape {
    vals: Vec<u64>,
    pos: usize,
}

impl Tape {
    fn new(vals: Vec<u64>) -> Tape {
        Tape { vals, pos: 0 }
    }

    fn next(&mut self) -> u64 {
        let v = self.vals[self.pos % self.vals.len()];
        // Wrap with a stride so reuse of a short tape still varies.
        self.pos += 1;
        v.wrapping_add(self.pos as u64 * 0x9e37_79b9)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random column reference; one in five names a missing column.
fn rand_col(t: &mut Tape) -> Expr {
    match t.pick(5) {
        0 => col("ts"),
        1 => col("key"),
        2 => col("v"),
        3 => col("name"),
        _ => col("missing"),
    }
}

fn rand_literal(t: &mut Tape) -> Expr {
    match t.pick(4) {
        0 => lit(t.pick(100) as i64),
        1 => lit(t.pick(100) as f64 / 7.0),
        2 => lit(t.pick(2) == 0),
        _ => lit("zone"),
    }
}

/// Random expressions, type errors included by construction.
fn rand_expr(t: &mut Tape, depth: u32) -> Expr {
    if depth == 0 {
        return if t.pick(2) == 0 {
            rand_col(t)
        } else {
            rand_literal(t)
        };
    }
    let l = rand_expr(t, depth - 1);
    let r = rand_expr(t, depth - 1);
    match t.pick(8) {
        0 => l.add(r),
        1 => l.sub(r),
        2 => l.mul(r),
        3 => l.gt(r),
        4 => l.lt(r),
        5 => l.eq(r),
        6 => l.and(r),
        _ => l.or(r),
    }
}

fn rand_agg(t: &mut Tape, i: usize) -> WindowAgg {
    let name = format!("a{i}");
    match t.pick(4) {
        0 => WindowAgg::new(name, AggSpec::Count),
        1 => WindowAgg::new(name, AggSpec::Sum(rand_col(t))),
        2 => WindowAgg::new(name, AggSpec::Avg(rand_col(t))),
        _ => WindowAgg::new(name, AggSpec::Max(rand_col(t))),
    }
}

/// Decodes a random 1–3 operator plan from the tape.
fn rand_query(t: &mut Tape) -> Query {
    let mut q = Query::from("s");
    let n_ops = 1 + t.pick(3);
    for _ in 0..n_ops {
        q = match t.pick(6) {
            0 | 1 => q.filter(rand_expr(t, 1)),
            2 => q.map_extend(vec![("x", rand_expr(t, 1))]),
            // A narrowing map: may drop "ts" ahead of a window (E008)
            // or the key columns ahead of a keyed stage.
            3 => q.map(vec![("key", col("key")), ("y", rand_expr(t, 1))]),
            4 => {
                let keys = if t.pick(2) == 0 {
                    vec![("key", col("key"))]
                } else {
                    vec![]
                };
                let spec = match t.pick(3) {
                    // size 0 is reachable: E007 territory.
                    0 => WindowSpec::Tumbling {
                        size: t.pick(3) as i64 * 30 * MICROS_PER_SEC,
                    },
                    1 => WindowSpec::Sliding {
                        size: 60 * MICROS_PER_SEC,
                        slide: (1 + t.pick(3)) as i64 * 30 * MICROS_PER_SEC,
                    },
                    _ => WindowSpec::Threshold {
                        predicate: rand_expr(t, 1),
                        min_count: 1 + t.pick(3) as usize,
                    },
                };
                let aggs = (0..1 + t.pick(2) as usize)
                    .map(|i| rand_agg(t, i))
                    .collect();
                q.window(keys, spec, aggs)
            }
            _ => q.cep(Pattern::new(
                "p",
                vec![PatternStep::new("step", rand_expr(t, 1))],
                t.pick(2) as i64 * 30 * MICROS_PER_SEC, // 0 reachable: E007.
            )),
        };
    }
    q
}

fn env() -> StreamEnvironment {
    let mut env = StreamEnvironment::with_config(EnvConfig {
        buffer_size: 32,
        watermark_every: 2,
        parallelism: 2,
        ..EnvConfig::default()
    });
    env.add_source(
        "s",
        Box::new(VecSource::new(schema(), records())),
        WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        },
    );
    env
}

fn analyze_local(q: &Query) -> AnalysisReport {
    let ctx = AnalysisContext::local().with_watermark(WatermarkStrategy::BoundedOutOfOrder {
        ts_field: "ts".into(),
        slack: 5 * MICROS_PER_SEC,
    });
    analyze(q, schema(), &FunctionRegistry::with_builtins(), &ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accepted_plans_run_clean_in_every_mode(seeds in proptest::collection::vec(0u64..u64::MAX, 4..24)) {
        let q = rand_query(&mut Tape::new(seeds));
        let report = analyze_local(&q);
        if report.has_errors() {
            return Ok(());
        }
        for mode in ["run", "run_threaded", "run_partitioned"] {
            let mut e = env();
            let (mut sink, _) = CollectingSink::new();
            let result = match mode {
                "run" => e.run(&q, &mut sink),
                "run_threaded" => e.run_threaded(&q, &mut sink),
                _ => e.run_partitioned(&q, &mut sink),
            };
            prop_assert!(
                result.is_ok(),
                "analyzer accepted {q:?} but {mode} failed: {:?}\nreport: {}",
                result.err(),
                report.render()
            );
        }
    }

    #[test]
    fn rejected_plans_never_run_clean(seeds in proptest::collection::vec(0u64..u64::MAX, 4..24)) {
        let q = rand_query(&mut Tape::new(seeds));
        let report = analyze_local(&q);
        if !report.has_errors() {
            return Ok(());
        }
        let mut e = env();
        let (mut sink, _) = CollectingSink::new();
        let result = e.run(&q, &mut sink);
        prop_assert!(
            result.is_err(),
            "analyzer rejected {q:?} but it ran clean\nreport: {}",
            report.render()
        );
    }

    #[test]
    fn preflight_rejection_is_the_analysis_error(seeds in proptest::collection::vec(0u64..u64::MAX, 4..24)) {
        // The run entry points reject with the typed AnalysisError and
        // the offline analyzer agrees with the preflight verdict.
        let q = rand_query(&mut Tape::new(seeds));
        let e = env();
        let preflight = e.analyze(&q).expect("source registered");
        let offline = analyze_local(&q);
        prop_assert_eq!(preflight.has_errors(), offline.has_errors());
        if preflight.has_errors() {
            let mut e = env();
            let (mut sink, _) = CollectingSink::new();
            match e.run(&q, &mut sink) {
                Err(NebulaError::Analysis(ae)) => prop_assert!(!ae.diagnostics.is_empty()),
                other => prop_assert!(false, "expected Analysis rejection, got {other:?}"),
            }
        }
    }
}

#[test]
fn warnings_do_not_reject_or_change_results() {
    // A keyless window under partitioned execution: W010 fires, the
    // plan still runs, and results match the single-threaded run.
    let q = Query::from("s").window(
        vec![],
        WindowSpec::Tumbling {
            size: 60 * MICROS_PER_SEC,
        },
        vec![WindowAgg::new("n", AggSpec::Count)],
    );
    let mut e1 = env();
    e1.config_mut().telemetry.enabled = true;
    let (mut s1, r1) = CollectingSink::new();
    e1.run_partitioned(&q, &mut s1).expect("warned plan runs");
    let report = e1.last_report().expect("telemetry on");
    assert!(
        report
            .analysis
            .iter()
            .any(|d| d.code == Code::PartitionFallback),
        "W010 lands in the query report: {:?}",
        report.analysis
    );

    let mut e2 = env();
    let (mut s2, r2) = CollectingSink::new();
    e2.run(&q, &mut s2).expect("baseline runs");
    let mut partitioned = r1.records();
    normalize_records(&mut partitioned);
    let mut baseline = r2.records();
    normalize_records(&mut baseline);
    assert_eq!(partitioned, baseline, "warning changed nothing");
}
