//! Complex event processing: keyed sequence-pattern detection with a
//! time bound — the substrate for the paper's geospatial CEP queries.
//!
//! Semantics: *skip-till-next-match*. Per key, a partial match advances by
//! at most one step per record; non-matching records in between are
//! skipped. A match must complete within `within` microseconds of its
//! first event. Partial-match count per key is capped to bound memory on
//! edge devices.

use super::{GroupKey, Operator};
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, Expr, FunctionRegistry};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::schema::{Field, SchemaRef};
use crate::value::{DataType, DurationUs, EventTime, Value};
use std::collections::HashMap;

/// One step of a pattern.
#[derive(Debug, Clone)]
pub struct PatternStep {
    /// Step name (diagnostics).
    pub name: String,
    /// Condition a record must satisfy to take this step.
    pub predicate: Expr,
}

impl PatternStep {
    /// Builds a step.
    pub fn new(name: impl Into<String>, predicate: Expr) -> Self {
        PatternStep {
            name: name.into(),
            predicate,
        }
    }
}

/// A sequence pattern over a keyed stream.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Pattern name; emitted in the output's `pattern` column.
    pub name: String,
    /// The ordered steps.
    pub steps: Vec<PatternStep>,
    /// Maximum event-time span from first to last matched event (µs).
    pub within: DurationUs,
    /// Optional partitioning expression (e.g. the train id).
    pub key: Option<Expr>,
    /// Upper bound on concurrent partial matches per key.
    pub max_partials: usize,
}

impl Pattern {
    /// Builds a pattern with the default partial-match cap.
    pub fn new(name: impl Into<String>, steps: Vec<PatternStep>, within: DurationUs) -> Self {
        Pattern {
            name: name.into(),
            steps,
            within,
            key: None,
            max_partials: 256,
        }
    }

    /// Partitions matching by `key`.
    pub fn keyed_by(mut self, key: Expr) -> Self {
        self.key = Some(key);
        self
    }

    /// Overrides the partial-match cap.
    pub fn with_max_partials(mut self, cap: usize) -> Self {
        self.max_partials = cap.max(1);
        self
    }
}

struct Partial {
    next_step: usize,
    first_ts: EventTime,
}

/// The CEP operator. Output schema: the input columns of the *final*
/// matching record, plus `pattern` (TEXT), `match_start` and `match_end`
/// (TIMESTAMP).
pub struct CepOp {
    pattern_name: String,
    steps: Vec<BoundExpr>,
    within: DurationUs,
    key_expr: Option<BoundExpr>,
    max_partials: usize,
    ts_col: usize,
    output: SchemaRef,
    state: HashMap<GroupKey, Vec<Partial>>,
    matches: u64,
}

impl CepOp {
    /// Binds the pattern against the input schema. `ts_field` names the
    /// event-time column.
    pub fn new(
        pattern: &Pattern,
        ts_field: &str,
        input: &SchemaRef,
        registry: &FunctionRegistry,
    ) -> Result<Self> {
        if pattern.steps.is_empty() {
            return Err(NebulaError::Plan("pattern needs >= 1 step".into()));
        }
        if pattern.within <= 0 {
            return Err(NebulaError::Plan(
                "pattern 'within' must be positive".into(),
            ));
        }
        let ts_col = input
            .index_of(ts_field)
            .ok_or_else(|| NebulaError::Plan(format!("cep: unknown ts field '{ts_field}'")))?;
        let mut steps = Vec::with_capacity(pattern.steps.len());
        for s in &pattern.steps {
            let (b, t) = s.predicate.bind(input, registry)?;
            if t != DataType::Bool {
                return Err(NebulaError::Type(format!(
                    "pattern step '{}' predicate must be BOOL, got {t}",
                    s.name
                )));
            }
            steps.push(b);
        }
        let key_expr = match &pattern.key {
            Some(k) => Some(k.bind(input, registry)?.0),
            None => None,
        };
        let output = input.extend(vec![
            Field::new("pattern", DataType::Text),
            Field::new("match_start", DataType::Timestamp),
            Field::new("match_end", DataType::Timestamp),
        ]);
        Ok(CepOp {
            pattern_name: pattern.name.clone(),
            steps,
            within: pattern.within,
            key_expr,
            max_partials: pattern.max_partials,
            ts_col,
            output,
            state: HashMap::new(),
            matches: 0,
        })
    }

    /// Total matches emitted so far.
    pub fn match_count(&self) -> u64 {
        self.matches
    }

    fn key_of(&self, rec: &Record) -> Result<GroupKey> {
        match &self.key_expr {
            Some(e) => {
                let (k, _) = GroupKey::evaluate(std::slice::from_ref(e), rec)?;
                Ok(k)
            }
            None => Ok(GroupKey::evaluate(&[], rec)?.0),
        }
    }
}

impl Operator for CepOp {
    fn name(&self) -> &str {
        "cep"
    }

    fn output_schema(&self) -> SchemaRef {
        self.output.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let mut emitted: Vec<Record> = Vec::new();
        for rec in buf.records() {
            let ts = rec
                .get(self.ts_col)
                .and_then(Value::as_timestamp)
                .ok_or_else(|| NebulaError::Eval("cep: record missing event time".into()))?;
            let key = self.key_of(rec)?;
            // Evaluate step predicates once per record.
            let mut sat = Vec::with_capacity(self.steps.len());
            for s in &self.steps {
                sat.push(s.eval_predicate(rec)?);
            }

            let partials = self.state.entry(key).or_default();
            // Expire partials that can no longer complete.
            partials.retain(|p| ts - p.first_ts <= self.within);

            let mut completed: Vec<EventTime> = Vec::new();
            // Advance existing partials (each at most one step).
            for p in partials.iter_mut() {
                if sat[p.next_step] {
                    p.next_step += 1;
                    if p.next_step == self.steps.len() {
                        completed.push(p.first_ts);
                    }
                }
            }
            partials.retain(|p| p.next_step < self.steps.len());

            // Open a new partial (or complete immediately for unary
            // patterns).
            if sat[0] {
                if self.steps.len() == 1 {
                    completed.push(ts);
                } else if partials.len() < self.max_partials {
                    partials.push(Partial {
                        next_step: 1,
                        first_ts: ts,
                    });
                }
            }

            for first_ts in completed {
                self.matches += 1;
                let mut values = rec.values().to_vec();
                values.push(Value::text(self.pattern_name.clone()));
                values.push(Value::Timestamp(first_ts));
                values.push(Value::Timestamp(ts));
                emitted.push(Record::new(values));
            }
        }
        if !emitted.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.output.clone(),
                emitted,
            )));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut Vec<StreamMessage>) -> Result<()> {
        // Garbage-collect partials that can no longer complete.
        for partials in self.state.values_mut() {
            partials.retain(|p| wm - p.first_ts <= self.within);
        }
        self.state.retain(|_, v| !v.is_empty());
        out.push(StreamMessage::Watermark(wm));
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        // Open partials: key map entries plus 16 bytes per partial
        // (step index + first timestamp).
        self.state
            .values()
            .map(|partials| 64 + partials.len() * 16)
            .sum()
    }

    fn snapshot(&self) -> Option<Box<dyn Operator>> {
        let state = self
            .state
            .iter()
            .map(|(k, partials)| {
                (
                    k.clone(),
                    partials
                        .iter()
                        .map(|p| Partial {
                            next_step: p.next_step,
                            first_ts: p.first_ts,
                        })
                        .collect(),
                )
            })
            .collect();
        Some(Box::new(CepOp {
            pattern_name: self.pattern_name.clone(),
            steps: self.steps.clone(),
            within: self.within,
            key_expr: self.key_expr.clone(),
            max_partials: self.max_partials,
            ts_col: self.ts_col,
            output: self.output.clone(),
            state,
            matches: self.matches,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::Schema;
    use crate::value::MICROS_PER_SEC;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("v", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, v: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(v),
        ])
    }

    fn run(op: &mut CepOp, rows: Vec<Record>) -> Vec<Record> {
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), rows), &mut out)
            .unwrap();
        out.iter()
            .filter_map(|m| match m {
                StreamMessage::Data(b) => Some(b.records().to_vec()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    fn high_low_pattern(within_s: i64) -> Pattern {
        Pattern::new(
            "spike-then-drop",
            vec![
                PatternStep::new("high", col("v").gt(lit(10.0))),
                PatternStep::new("low", col("v").lt(lit(1.0))),
            ],
            within_s * MICROS_PER_SEC,
        )
        .keyed_by(col("train"))
    }

    #[test]
    fn detects_two_step_sequence() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = CepOp::new(&high_low_pattern(60), "ts", &schema(), &reg).unwrap();
        let got = run(
            &mut op,
            vec![rec(1, 1, 20.0), rec(2, 1, 5.0), rec(3, 1, 0.5)],
        );
        assert_eq!(got.len(), 1);
        let r = &got[0];
        assert_eq!(r.get(3), Some(&Value::text("spike-then-drop")));
        assert_eq!(r.get(4), Some(&Value::Timestamp(MICROS_PER_SEC)));
        assert_eq!(r.get(5), Some(&Value::Timestamp(3 * MICROS_PER_SEC)));
        assert_eq!(op.match_count(), 1);
    }

    #[test]
    fn skip_till_next_match_ignores_noise() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = CepOp::new(&high_low_pattern(60), "ts", &schema(), &reg).unwrap();
        // Noise (v=5) records between the high and the low don't kill it.
        let got = run(
            &mut op,
            vec![
                rec(1, 1, 20.0),
                rec(2, 1, 5.0),
                rec(3, 1, 5.0),
                rec(4, 1, 0.2),
            ],
        );
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn within_bound_expires_partials() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = CepOp::new(&high_low_pattern(10), "ts", &schema(), &reg).unwrap();
        let got = run(&mut op, vec![rec(1, 1, 20.0), rec(100, 1, 0.5)]);
        assert!(got.is_empty(), "low arrived past the within bound");
    }

    #[test]
    fn keys_partition_matching() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = CepOp::new(&high_low_pattern(60), "ts", &schema(), &reg).unwrap();
        // High on train 1, low on train 2: no match.
        let got = run(&mut op, vec![rec(1, 1, 20.0), rec(2, 2, 0.5)]);
        assert!(got.is_empty());
        // Completing per key works independently.
        let got = run(&mut op, vec![rec(3, 2, 30.0), rec(4, 2, 0.1)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(1), Some(&Value::Int(2)));
    }

    #[test]
    fn unary_pattern_matches_each_record() {
        let reg = FunctionRegistry::with_builtins();
        let p = Pattern::new(
            "over-limit",
            vec![PatternStep::new("hot", col("v").gt(lit(10.0)))],
            MICROS_PER_SEC,
        );
        let mut op = CepOp::new(&p, "ts", &schema(), &reg).unwrap();
        let got = run(
            &mut op,
            vec![rec(1, 1, 20.0), rec(2, 1, 5.0), rec(3, 1, 30.0)],
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn three_step_sequence_and_overlapping_partials() {
        let reg = FunctionRegistry::with_builtins();
        let p = Pattern::new(
            "ramp",
            vec![
                PatternStep::new("a", col("v").ge(lit(1.0)).and(col("v").lt(lit(2.0)))),
                PatternStep::new("b", col("v").ge(lit(2.0)).and(col("v").lt(lit(3.0)))),
                PatternStep::new("c", col("v").ge(lit(3.0))),
            ],
            60 * MICROS_PER_SEC,
        );
        let mut op = CepOp::new(&p, "ts", &schema(), &reg).unwrap();
        let got = run(
            &mut op,
            vec![
                rec(1, 1, 1.5),
                rec(2, 1, 1.5), // second partial opens
                rec(3, 1, 2.5), // both advance? no: each record advances each partial once
                rec(4, 1, 3.5),
            ],
        );
        // Partial 1: a@1, b@3, c@4 => match. Partial 2: a@2, b@3? A record
        // can advance multiple *different* partials: partial2 also takes
        // b@3 then c@4.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn watermark_gc_and_cap() {
        let reg = FunctionRegistry::with_builtins();
        let p = high_low_pattern(10).with_max_partials(2);
        let mut op = CepOp::new(&p, "ts", &schema(), &reg).unwrap();
        // 5 highs but cap 2 partials.
        let rows: Vec<Record> = (0..5).map(|i| rec(i, 1, 20.0)).collect();
        run(&mut op, rows);
        let mut out = Vec::new();
        op.on_watermark(1_000 * MICROS_PER_SEC, &mut out).unwrap();
        assert!(op.state.is_empty(), "expired partials collected");
    }

    #[test]
    fn rejects_bad_patterns() {
        let reg = FunctionRegistry::with_builtins();
        let empty = Pattern::new("x", vec![], MICROS_PER_SEC);
        assert!(CepOp::new(&empty, "ts", &schema(), &reg).is_err());
        let nonbool = Pattern::new(
            "x",
            vec![PatternStep::new("s", col("v").add(lit(1.0)))],
            MICROS_PER_SEC,
        );
        assert!(CepOp::new(&nonbool, "ts", &schema(), &reg).is_err());
        let badwithin = Pattern::new("x", vec![PatternStep::new("s", col("v").gt(lit(1.0)))], 0);
        assert!(CepOp::new(&badwithin, "ts", &schema(), &reg).is_err());
    }
}
