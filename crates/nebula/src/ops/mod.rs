//! Physical operators: push-based, buffer-batched, watermark-aware.
//!
//! An operator consumes [`StreamMessage`]s and pushes results into an
//! output vector; the runtime threads messages through the operator chain.
//! Custom operators enter plans through [`OperatorFactory`] — the second
//! half of the plugin mechanism (functions extend expressions, factories
//! extend the operator set).

mod cep;
mod window_op;

pub use cep::{CepOp, Pattern, PatternStep};
pub use window_op::WindowOp;
pub(crate) use window_op::{sort_emission, SliceStore};

use crate::buffer::TupleBuffer;
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, Expr, FunctionRegistry};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::{EventTime, Value};

/// A physical streaming operator.
pub trait Operator: Send {
    /// Operator name for plans and diagnostics.
    fn name(&self) -> &str;

    /// Output schema.
    fn output_schema(&self) -> SchemaRef;

    /// Processes one data buffer, pushing zero or more messages.
    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()>;

    /// True iff the operator has a native columnar kernel. The runtimes
    /// only build [`TupleBuffer`]s at the source when the chain's first
    /// operator opts in; everything else rides the default conversion.
    fn supports_columnar(&self) -> bool {
        false
    }

    /// Processes one columnar buffer. The default converts to the row
    /// layout and delegates to [`Operator::process`], so the per-record
    /// path stays the reference implementation every operator falls
    /// back to — and the batched kernels stay differentially testable
    /// against it.
    fn process_columnar(&mut self, buf: TupleBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        self.process(buf.to_record_buffer(), out)
    }

    /// True iff columnar input actually buys this operator vectorized
    /// work (as opposed to merely being accepted and evaluated per
    /// row). Drives [`crate::runtime::ColumnarMode::Auto`]'s decision
    /// whether transposing at the source pays for itself; a filter
    /// whose predicate is one opaque-geometry call accepts buffers but
    /// reports no benefit.
    fn columnar_benefit(&self) -> bool {
        false
    }

    /// Whether columnar buffers keep flowing out of this operator. Windows
    /// accept buffers but emit row aggregates, so the `Auto` gate stops
    /// scanning for downstream benefit past them.
    fn propagates_columnar(&self) -> bool {
        true
    }

    /// Handles a watermark; the default forwards it downstream. Stateful
    /// operators emit closed windows/matches first.
    fn on_watermark(&mut self, wm: EventTime, out: &mut Vec<StreamMessage>) -> Result<()> {
        out.push(StreamMessage::Watermark(wm));
        Ok(())
    }

    /// Handles end-of-stream; the default forwards it. Stateful operators
    /// flush remaining state first.
    fn on_eos(&mut self, out: &mut Vec<StreamMessage>) -> Result<()> {
        out.push(StreamMessage::Eos);
        Ok(())
    }

    /// Records this operator dropped because they arrived after the
    /// watermark had closed every window that could have held them
    /// (stateless operators report 0). Each dropped record counts once,
    /// however many windows it missed; the runtimes sum the chain into
    /// [`crate::metrics::QueryMetrics::late_drops`].
    fn late_drops(&self) -> u64 {
        0
    }

    /// An estimate of the bytes of mutable state this operator currently
    /// holds (window slice stores, open CEP partials, …). Stateless
    /// operators report 0. The telemetry layer polls this as a gauge, so
    /// it should be cheap — an O(state entries) walk over container
    /// lengths, not a deep serialization.
    fn state_bytes(&self) -> usize {
        0
    }

    /// A deep copy of this operator including all mutable state, used by
    /// the cluster runtime's checkpoint barriers. `None` (the default)
    /// means the operator cannot be snapshotted — e.g. it owns an
    /// arbitrary closure — in which case crash recovery falls back to a
    /// full replay from the start of the stream instead of resuming from
    /// the last checkpoint.
    fn snapshot(&self) -> Option<Box<dyn Operator>> {
        None
    }
}

/// Sums the late-record drops of a compiled operator chain — how every
/// runtime folds per-operator counters into
/// [`crate::metrics::QueryMetrics::late_drops`].
pub(crate) fn chain_late_drops(ops: &[Box<dyn Operator>]) -> u64 {
    ops.iter().map(|o| o.late_drops()).sum()
}

/// Creates operators from an input schema — how plugins contribute whole
/// operators (trajectory assembly, geofencing, imputation) to query plans.
pub trait OperatorFactory: Send + Sync {
    /// Factory/operator name.
    fn name(&self) -> &str;
    /// Instantiates the operator against the upstream schema.
    fn create(&self, input: SchemaRef, registry: &FunctionRegistry) -> Result<Box<dyn Operator>>;
}

/// A canonical, hashable grouping key built from evaluated expressions.
/// Floats are encoded by bit pattern, so `-0.0` and `0.0` group apart —
/// acceptable for key use (keys are IDs, not measures).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey(Box<[u8]>);

impl GroupKey {
    /// Evaluates `exprs` on `rec` and encodes the results.
    pub fn evaluate(exprs: &[BoundExpr], rec: &Record) -> Result<(GroupKey, Vec<Value>)> {
        let mut values = Vec::with_capacity(exprs.len());
        let mut bytes = Vec::with_capacity(exprs.len() * 9);
        for e in exprs {
            let v = e.eval(rec)?;
            encode_value(&v, &mut bytes);
            values.push(v);
        }
        Ok((GroupKey(bytes.into_boxed_slice()), values))
    }

    /// Evaluates `exprs` on row `row` of a columnar buffer and encodes
    /// the results — same key bytes as [`GroupKey::evaluate`] on the
    /// materialized record, without building the record.
    pub fn evaluate_row(
        exprs: &[BoundExpr],
        buf: &TupleBuffer,
        row: usize,
    ) -> Result<(GroupKey, Vec<Value>)> {
        let mut values = Vec::with_capacity(exprs.len());
        let mut bytes = Vec::with_capacity(exprs.len() * 9);
        for e in exprs {
            let v = e.eval_row(buf, row)?;
            encode_value(&v, &mut bytes);
            values.push(v);
        }
        Ok((GroupKey(bytes.into_boxed_slice()), values))
    }

    /// Builds a key directly from already-evaluated values — how the
    /// cloud-side window merge regroups partial rows whose key columns
    /// arrive materialized instead of as expressions.
    pub fn from_values(values: &[Value]) -> GroupKey {
        let mut bytes = Vec::with_capacity(values.len() * 9);
        for v in values {
            encode_value(v, &mut bytes);
        }
        GroupKey(bytes.into_boxed_slice())
    }

    /// The canonical byte encoding — the hash input for partitioning.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Canonical byte encoding of a whole record: a total, deterministic sort
/// key so result sets from differently-ordered executions (threaded,
/// partitioned) can be order-normalized and compared.
///
/// Caveat: [`Value::Opaque`] encodes by type tag only (plugin payloads
/// have no stable byte form), so records that differ *only* in an opaque
/// payload tie under this key and keep their arrival order. Order
/// normalization is exact for primitive-typed columns; result sets
/// carrying opaque columns normalize up to those ties.
pub fn record_sort_key(rec: &Record) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(rec.len() * 9);
    for v in rec.values() {
        encode_value(v, &mut bytes);
    }
    bytes
}

pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            out.push(5);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Value::Point { x, y } => {
            out.push(6);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
            out.extend_from_slice(&y.to_bits().to_le_bytes());
        }
        Value::Opaque(o) => {
            out.push(7);
            out.extend_from_slice(o.type_tag().as_bytes());
        }
    }
}

/// Selection: keeps records satisfying a predicate.
pub struct FilterOp {
    predicate: BoundExpr,
    schema: SchemaRef,
}

impl FilterOp {
    /// Binds `predicate` against `input`.
    pub fn new(predicate: &Expr, input: SchemaRef, registry: &FunctionRegistry) -> Result<Self> {
        let (bound, dt) = predicate.bind(&input, registry)?;
        if dt != crate::value::DataType::Bool && dt != crate::value::DataType::Null {
            return Err(NebulaError::Type(format!(
                "filter predicate must be BOOL, got {dt}"
            )));
        }
        Ok(FilterOp {
            predicate: bound,
            schema: input,
        })
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        "filter"
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let schema = buf.schema().clone();
        let mut kept = Vec::with_capacity(buf.len());
        for rec in buf.into_records() {
            if self.predicate.eval_predicate(&rec)? {
                kept.push(rec);
            }
        }
        if !kept.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(schema, kept)));
        }
        Ok(())
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn columnar_benefit(&self) -> bool {
        self.predicate.vectorizes()
    }

    fn process_columnar(&mut self, buf: TupleBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let mask = self.predicate.eval_mask(&buf)?;
        if mask.iter().any(|&k| k) {
            let kept = if mask.iter().all(|&k| k) {
                buf
            } else {
                buf.filter(&mask)
            };
            out.push(StreamMessage::Columnar(kept));
        }
        Ok(())
    }

    fn snapshot(&self) -> Option<Box<dyn Operator>> {
        // Stateless: a field-by-field copy is a complete snapshot.
        Some(Box::new(FilterOp {
            predicate: self.predicate.clone(),
            schema: self.schema.clone(),
        }))
    }
}

/// Projection: computes named expressions, optionally keeping the input
/// columns (`extend` mode, NebulaStream's `map` that adds attributes).
pub struct MapOp {
    projections: Vec<BoundExpr>,
    extend: bool,
    schema: SchemaRef,
}

impl MapOp {
    /// Binds the projection list against `input`.
    pub fn new(
        projections: &[(String, Expr)],
        extend: bool,
        input: &SchemaRef,
        registry: &FunctionRegistry,
    ) -> Result<Self> {
        let mut bound = Vec::with_capacity(projections.len());
        let mut fields: Vec<Field> = if extend {
            input.fields().to_vec()
        } else {
            Vec::new()
        };
        for (name, e) in projections {
            let (b, t) = e.bind(input, registry)?;
            bound.push(b);
            fields.push(Field::new(name.clone(), t));
        }
        Ok(MapOp {
            projections: bound,
            extend,
            schema: Schema::new(fields),
        })
    }
}

impl Operator for MapOp {
    fn name(&self) -> &str {
        "map"
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let mut mapped = Vec::with_capacity(buf.len());
        for rec in buf.into_records() {
            let mut values = if self.extend {
                let mut v = rec.values().to_vec();
                v.reserve(self.projections.len());
                v
            } else {
                Vec::with_capacity(self.projections.len())
            };
            for p in &self.projections {
                values.push(p.eval(&rec)?);
            }
            mapped.push(Record::new(values));
        }
        if !mapped.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.schema.clone(),
                mapped,
            )));
        }
        Ok(())
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn columnar_benefit(&self) -> bool {
        self.projections.iter().any(BoundExpr::vectorizes)
    }

    fn process_columnar(&mut self, buf: TupleBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let mut projected = Vec::with_capacity(
            self.projections.len() + if self.extend { buf.columns().len() } else { 0 },
        );
        for p in &self.projections {
            projected.push(p.eval_column(&buf)?);
        }
        let (_, input_columns, meta) = buf.into_parts();
        let columns = if self.extend {
            // Extend mode reuses the input columns wholesale — the win
            // over the row path's per-record value-vector clone.
            let mut cols = input_columns;
            cols.extend(projected);
            cols
        } else {
            projected
        };
        out.push(StreamMessage::Columnar(TupleBuffer::new(
            self.schema.clone(),
            columns,
            meta,
        )));
        Ok(())
    }

    fn snapshot(&self) -> Option<Box<dyn Operator>> {
        Some(Box::new(MapOp {
            projections: self.projections.clone(),
            extend: self.extend,
            schema: self.schema.clone(),
        }))
    }
}

/// Stateless record-to-records expansion driven by a closure; the generic
/// escape hatch custom operators build on.
pub struct FlatMapOp {
    name: String,
    schema: SchemaRef,
    #[allow(clippy::type_complexity)]
    f: Box<dyn FnMut(&Record, &mut Vec<Record>) -> Result<()> + Send>,
}

impl FlatMapOp {
    /// Builds a flat-map with an explicit output schema.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        f: impl FnMut(&Record, &mut Vec<Record>) -> Result<()> + Send + 'static,
    ) -> Self {
        FlatMapOp {
            name: name.into(),
            schema,
            f: Box::new(f),
        }
    }
}

impl Operator for FlatMapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let mut produced = Vec::new();
        for rec in buf.records() {
            (self.f)(rec, &mut produced)?;
        }
        if !produced.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.schema.clone(),
                produced,
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int), ("v", DataType::Float)])
    }

    fn buf(rows: &[(i64, f64)]) -> RecordBuffer {
        RecordBuffer::new(
            schema(),
            rows.iter()
                .map(|&(id, v)| Record::new(vec![Value::Int(id), Value::Float(v)]))
                .collect(),
        )
    }

    fn data_records(msgs: &[StreamMessage]) -> Vec<Record> {
        msgs.iter()
            .filter_map(|m| match m {
                StreamMessage::Data(b) => Some(b.records().to_vec()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn filter_keeps_matching() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = FilterOp::new(&col("v").gt(lit(1.0)), schema(), &reg).unwrap();
        let mut out = Vec::new();
        op.process(buf(&[(1, 0.5), (2, 1.5), (3, 2.5)]), &mut out)
            .unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get(0), Some(&Value::Int(2)));
    }

    #[test]
    fn filter_empty_result_emits_nothing() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = FilterOp::new(&col("v").gt(lit(100.0)), schema(), &reg).unwrap();
        let mut out = Vec::new();
        op.process(buf(&[(1, 0.5)]), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn filter_rejects_non_bool_predicate() {
        let reg = FunctionRegistry::with_builtins();
        assert!(FilterOp::new(&col("v").add(lit(1.0)), schema(), &reg).is_err());
    }

    #[test]
    fn map_projects() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = MapOp::new(
            &[("double".into(), col("v").mul(lit(2.0)))],
            false,
            &schema(),
            &reg,
        )
        .unwrap();
        assert_eq!(op.output_schema().to_string(), "(double: FLOAT)");
        let mut out = Vec::new();
        op.process(buf(&[(1, 1.5)]), &mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs[0].get(0), Some(&Value::Float(3.0)));
        assert_eq!(recs[0].len(), 1);
    }

    #[test]
    fn map_extend_keeps_input() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = MapOp::new(
            &[("flag".into(), col("v").gt(lit(1.0)))],
            true,
            &schema(),
            &reg,
        )
        .unwrap();
        assert_eq!(op.output_schema().len(), 3);
        let mut out = Vec::new();
        op.process(buf(&[(7, 2.0)]), &mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs[0].get(0), Some(&Value::Int(7)));
        assert_eq!(recs[0].get(2), Some(&Value::Bool(true)));
    }

    #[test]
    fn flatmap_expands() {
        let mut op = FlatMapOp::new("dup", schema(), |rec, out| {
            out.push(rec.clone());
            out.push(rec.clone());
            Ok(())
        });
        let mut out = Vec::new();
        op.process(buf(&[(1, 1.0)]), &mut out).unwrap();
        assert_eq!(data_records(&out).len(), 2);
    }

    #[test]
    fn default_watermark_and_eos_forward() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = FilterOp::new(&lit(true), schema(), &reg).unwrap();
        let mut out = Vec::new();
        op.on_watermark(42, &mut out).unwrap();
        op.on_eos(&mut out).unwrap();
        assert!(matches!(out[0], StreamMessage::Watermark(42)));
        assert!(matches!(out[1], StreamMessage::Eos));
    }

    #[test]
    fn group_key_distinguishes_types_and_values() {
        let reg = FunctionRegistry::with_builtins();
        let (b, _) = col("id").bind(&schema(), &reg).unwrap();
        let exprs = vec![b];
        let r1 = Record::new(vec![Value::Int(1), Value::Float(0.0)]);
        let r2 = Record::new(vec![Value::Int(2), Value::Float(0.0)]);
        let (k1, v1) = GroupKey::evaluate(&exprs, &r1).unwrap();
        let (k1b, _) = GroupKey::evaluate(&exprs, &r1).unwrap();
        let (k2, _) = GroupKey::evaluate(&exprs, &r2).unwrap();
        assert_eq!(k1, k1b);
        assert_ne!(k1, k2);
        assert_eq!(v1, vec![Value::Int(1)]);
    }
}
