//! The keyed window-aggregation operator.

use super::{GroupKey, Operator};
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, Expr, FunctionRegistry};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::{DataType, EventTime, Value};
use crate::window::{Aggregator, WindowAgg, WindowSpec};
use std::collections::HashMap;

/// Per-(key, window) accumulator state.
struct WindowState {
    key_values: Vec<Value>,
    start: EventTime,
    /// Exclusive end for time windows; last-seen ts for threshold windows.
    end: EventTime,
    count: u64,
    aggs: Vec<Box<dyn Aggregator>>,
}

/// Keyed windowed aggregation over event time.
///
/// - Time windows (tumbling/sliding) buffer per-(key, window-start)
///   accumulators and emit when the watermark passes the window end.
/// - Threshold windows open on the first record satisfying the predicate
///   and close (emitting if `count >= min_count`) on the first record of
///   the same key that does not.
///
/// Output schema: key columns, `window_start`, `window_end`, then one
/// column per aggregate.
pub struct WindowOp {
    ts_col: usize,
    key_exprs: Vec<BoundExpr>,
    spec: WindowSpec,
    threshold_pred: Option<BoundExpr>,
    agg_specs: Vec<WindowAgg>,
    input: SchemaRef,
    output: SchemaRef,
    registry: FunctionRegistry,
    /// Time-window state keyed by (group, window start).
    time_state: HashMap<(GroupKey, EventTime), WindowState>,
    /// Threshold-window state keyed by group.
    threshold_state: HashMap<GroupKey, WindowState>,
    last_watermark: EventTime,
    late_drops: u64,
}

impl WindowOp {
    /// Builds the operator, binding keys, the optional threshold
    /// predicate and all aggregates against `input`. `ts_field` names the
    /// event-time column.
    pub fn new(
        ts_field: &str,
        keys: &[(String, Expr)],
        spec: WindowSpec,
        aggs: Vec<WindowAgg>,
        input: SchemaRef,
        registry: &FunctionRegistry,
    ) -> Result<Self> {
        spec.validate()?;
        let ts_col = input
            .index_of(ts_field)
            .ok_or_else(|| NebulaError::Plan(format!("window: unknown ts field '{ts_field}'")))?;
        let mut key_exprs = Vec::with_capacity(keys.len());
        let mut fields = Vec::with_capacity(keys.len() + 2 + aggs.len());
        for (name, e) in keys {
            let (b, t) = e.bind(&input, registry)?;
            key_exprs.push(b);
            fields.push(Field::new(name.clone(), t));
        }
        fields.push(Field::new("window_start", DataType::Timestamp));
        fields.push(Field::new("window_end", DataType::Timestamp));
        for agg in &aggs {
            fields.push(Field::new(
                agg.name.clone(),
                agg.spec.output_type(&input, registry)?,
            ));
        }
        let threshold_pred = match &spec {
            WindowSpec::Threshold { predicate, .. } => {
                let (b, t) = predicate.bind(&input, registry)?;
                if t != DataType::Bool {
                    return Err(NebulaError::Type(format!(
                        "threshold predicate must be BOOL, got {t}"
                    )));
                }
                Some(b)
            }
            _ => None,
        };
        Ok(WindowOp {
            ts_col,
            key_exprs,
            spec,
            threshold_pred,
            agg_specs: aggs,
            input,
            output: Schema::new(fields),
            registry: registry.clone(),
            time_state: HashMap::new(),
            threshold_state: HashMap::new(),
            last_watermark: EventTime::MIN,
            late_drops: 0,
        })
    }

    /// Records dropped because their window had already been closed by a
    /// watermark.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    fn emit_record(&self, mut st: WindowState) -> Result<Record> {
        let mut values = Vec::with_capacity(st.key_values.len() + 2 + st.aggs.len());
        values.append(&mut st.key_values);
        values.push(Value::Timestamp(st.start));
        values.push(Value::Timestamp(st.end));
        for agg in &mut st.aggs {
            values.push(agg.finish()?);
        }
        Ok(Record::new(values))
    }

    fn process_time_window(&mut self, rec: &Record, ts: EventTime) -> Result<()> {
        let size = self.spec.size().expect("time window has size");
        let (key, key_values) = GroupKey::evaluate(&self.key_exprs, rec)?;
        for start in self.spec.assign(ts) {
            if start + size <= self.last_watermark {
                self.late_drops += 1;
                continue;
            }
            let entry = self.time_state.entry((key.clone(), start));
            let st = match entry {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let aggs = self
                        .agg_specs
                        .iter()
                        .map(|a| a.spec.create(&self.input, &self.registry))
                        .collect::<Result<Vec<_>>>()?;
                    v.insert(WindowState {
                        key_values: key_values.clone(),
                        start,
                        end: start + size,
                        count: 0,
                        aggs,
                    })
                }
            };
            st.count += 1;
            for agg in &mut st.aggs {
                agg.update(rec)?;
            }
        }
        Ok(())
    }

    fn process_threshold(
        &mut self,
        rec: &Record,
        ts: EventTime,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        let WindowSpec::Threshold { min_count, .. } = &self.spec else {
            unreachable!("threshold path");
        };
        let min_count = *min_count;
        let pred = self
            .threshold_pred
            .as_ref()
            .expect("threshold predicate bound")
            .clone();
        let (key, key_values) = GroupKey::evaluate(&self.key_exprs, rec)?;
        let holds = pred.eval_predicate(rec)?;
        if holds {
            let st = match self.threshold_state.entry(key) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let aggs = self
                        .agg_specs
                        .iter()
                        .map(|a| a.spec.create(&self.input, &self.registry))
                        .collect::<Result<Vec<_>>>()?;
                    v.insert(WindowState {
                        key_values,
                        start: ts,
                        end: ts,
                        count: 0,
                        aggs,
                    })
                }
            };
            st.end = st.end.max(ts);
            st.count += 1;
            for agg in &mut st.aggs {
                agg.update(rec)?;
            }
        } else if let Some(st) = self.threshold_state.remove(&key) {
            if st.count as usize >= min_count {
                out.push(self.emit_record(st)?);
            }
        }
        Ok(())
    }
}

impl Operator for WindowOp {
    fn name(&self) -> &str {
        "window"
    }

    fn output_schema(&self) -> SchemaRef {
        self.output.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let is_threshold = self.threshold_pred.is_some();
        let mut emitted: Vec<Record> = Vec::new();
        for rec in buf.records() {
            let ts = rec
                .get(self.ts_col)
                .and_then(Value::as_timestamp)
                .ok_or_else(|| NebulaError::Eval("window: record missing event time".into()))?;
            if is_threshold {
                self.process_threshold(rec, ts, &mut emitted)?;
            } else {
                self.process_time_window(rec, ts)?;
            }
        }
        if !emitted.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.output.clone(),
                emitted,
            )));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut Vec<StreamMessage>) -> Result<()> {
        self.last_watermark = self.last_watermark.max(wm);
        if self.threshold_pred.is_none() {
            let closed: Vec<(GroupKey, EventTime)> = self
                .time_state
                .iter()
                .filter(|(_, st)| st.end <= wm)
                .map(|((k, s), _)| (k.clone(), *s))
                .collect();
            let mut records = Vec::with_capacity(closed.len());
            for key in closed {
                let st = self.time_state.remove(&key).expect("just listed");
                records.push(self.emit_record(st)?);
            }
            // Deterministic output order: by window start then key values.
            records.sort_by_key(|r| {
                r.get(self.key_exprs.len())
                    .and_then(Value::as_timestamp)
                    .unwrap_or(0)
            });
            if !records.is_empty() {
                out.push(StreamMessage::Data(RecordBuffer::new(
                    self.output.clone(),
                    records,
                )));
            }
        }
        out.push(StreamMessage::Watermark(wm));
        Ok(())
    }

    fn on_eos(&mut self, out: &mut Vec<StreamMessage>) -> Result<()> {
        // Flush everything still open.
        let mut records = Vec::new();
        let time_keys: Vec<_> = self.time_state.keys().cloned().collect();
        for key in time_keys {
            let st = self.time_state.remove(&key).expect("listed");
            records.push(self.emit_record(st)?);
        }
        let min_count = match &self.spec {
            WindowSpec::Threshold { min_count, .. } => *min_count,
            _ => 0,
        };
        let th_keys: Vec<_> = self.threshold_state.keys().cloned().collect();
        for key in th_keys {
            let st = self.threshold_state.remove(&key).expect("listed");
            if st.count as usize >= min_count {
                records.push(self.emit_record(st)?);
            }
        }
        records.sort_by_key(|r| {
            r.get(self.key_exprs.len())
                .and_then(Value::as_timestamp)
                .unwrap_or(0)
        });
        if !records.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.output.clone(),
                records,
            )));
        }
        out.push(StreamMessage::Eos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::value::MICROS_PER_SEC;
    use crate::window::AggSpec;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, speed: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(speed),
        ])
    }

    fn make_op(spec: WindowSpec) -> WindowOp {
        let reg = FunctionRegistry::with_builtins();
        WindowOp::new(
            "ts",
            &[("train".into(), col("train"))],
            spec,
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("avg_speed", AggSpec::Avg(col("speed"))),
            ],
            schema(),
            &reg,
        )
        .unwrap()
    }

    fn data_records(msgs: &[StreamMessage]) -> Vec<Record> {
        msgs.iter()
            .filter_map(|m| match m {
                StreamMessage::Data(b) => Some(b.records().to_vec()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn tumbling_emits_on_watermark() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(
                schema(),
                vec![rec(1, 1, 10.0), rec(5, 1, 20.0), rec(12, 1, 30.0)],
            ),
            &mut out,
        )
        .unwrap();
        assert!(data_records(&out).is_empty(), "nothing before watermark");

        op.on_watermark(10 * MICROS_PER_SEC, &mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1, "only the [0,10) window closed");
        let r = &recs[0];
        assert_eq!(r.get(0), Some(&Value::Int(1)), "key");
        assert_eq!(r.get(1), Some(&Value::Timestamp(0)), "start");
        assert_eq!(
            r.get(2),
            Some(&Value::Timestamp(10 * MICROS_PER_SEC)),
            "end"
        );
        assert_eq!(r.get(3), Some(&Value::Int(2)), "count");
        assert_eq!(r.get(4), Some(&Value::Float(15.0)), "avg");
    }

    #[test]
    fn tumbling_separate_keys() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(schema(), vec![rec(1, 1, 10.0), rec(2, 2, 99.0)]),
            &mut out,
        )
        .unwrap();
        op.on_watermark(10 * MICROS_PER_SEC, &mut out).unwrap();
        assert_eq!(data_records(&out).len(), 2);
    }

    #[test]
    fn late_records_dropped() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.on_watermark(20 * MICROS_PER_SEC, &mut out).unwrap();
        op.process(RecordBuffer::new(schema(), vec![rec(5, 1, 10.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        assert!(data_records(&out).is_empty());
        assert_eq!(op.late_drops(), 1);
    }

    #[test]
    fn sliding_multiple_windows() {
        let mut op = make_op(WindowSpec::Sliding {
            size: 10 * MICROS_PER_SEC,
            slide: 5 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(7, 1, 10.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        // ts=7 falls in [0,10) and [5,15).
        assert_eq!(data_records(&out).len(), 2);
    }

    #[test]
    fn eos_flushes_open_windows() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(3, 1, 5.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        assert!(matches!(out.last(), Some(StreamMessage::Eos)));
    }

    #[test]
    fn threshold_window_opens_and_closes() {
        let mut op = {
            let reg = FunctionRegistry::with_builtins();
            WindowOp::new(
                "ts",
                &[("train".into(), col("train"))],
                WindowSpec::Threshold {
                    predicate: col("speed").gt(lit(50.0)),
                    min_count: 2,
                },
                vec![
                    WindowAgg::new("n", AggSpec::Count),
                    WindowAgg::new("max_speed", AggSpec::Max(col("speed"))),
                ],
                schema(),
                &reg,
            )
            .unwrap()
        };
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(
                schema(),
                vec![
                    rec(1, 1, 60.0), // opens
                    rec(2, 1, 70.0), // extends
                    rec(3, 1, 10.0), // closes -> emit (count 2)
                    rec(4, 1, 80.0), // opens again
                    rec(5, 1, 5.0),  // closes -> below min_count, dropped
                ],
            ),
            &mut out,
        )
        .unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.get(1), Some(&Value::Timestamp(MICROS_PER_SEC)));
        assert_eq!(r.get(2), Some(&Value::Timestamp(2 * MICROS_PER_SEC)));
        assert_eq!(r.get(3), Some(&Value::Int(2)));
        assert_eq!(r.get(4), Some(&Value::Float(70.0)));
    }

    #[test]
    fn threshold_flushes_on_eos() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = WindowOp::new(
            "ts",
            &[],
            WindowSpec::Threshold {
                predicate: col("speed").gt(lit(50.0)),
                min_count: 1,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
            schema(),
            &reg,
        )
        .unwrap();
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(1, 1, 60.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get(2), Some(&Value::Int(1)));
    }

    #[test]
    fn output_schema_layout() {
        let op = make_op(WindowSpec::Tumbling {
            size: MICROS_PER_SEC,
        });
        assert_eq!(
            op.output_schema().to_string(),
            "(train: INT, window_start: TIMESTAMP, window_end: TIMESTAMP, \
             n: INT, avg_speed: FLOAT)"
        );
    }
}
