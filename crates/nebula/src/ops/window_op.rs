//! The keyed window-aggregation operator, evaluated by stream slicing.
//!
//! Time windows (tumbling/sliding) never keep one accumulator per
//! (key, window): event time partitions into non-overlapping slices of
//! `gcd(size, slide)` µs (see [`crate::window::SliceLayout`]) and every
//! record folds into exactly one slice per key — O(1) amortized work per
//! record regardless of how many windows overlap. A closed window
//! materializes at watermark time by merging the accumulators of the
//! slices it covers, which is sound because merging is part of the core
//! [`Aggregator`] contract. The same `SliceStore` drives the cluster
//! runtime's edge/cloud pre-aggregation split (see [`crate::preagg`]).

use super::{record_sort_key, GroupKey, Operator};
use crate::buffer::TupleBuffer;
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, Expr, FunctionRegistry};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::{DataType, EventTime, Value};
use crate::window::{Aggregator, SliceLayout, WindowAgg, WindowSpec};
use std::collections::{BTreeMap, HashMap};

/// One slice's accumulators.
struct SliceState {
    aggs: Vec<Box<dyn Aggregator>>,
    /// Absorbed anything since the last partial flush (edge mode).
    dirty: bool,
}

/// One key's live slices (two-level layout: probing a slice during
/// window materialization is a plain integer lookup, with no per-probe
/// key-encoding clones on the hot path).
struct KeySlices {
    key_values: Vec<Value>,
    slices: BTreeMap<EventTime, SliceState>,
}

/// Creates one accumulator set per slice (split out of `SliceStore` so
/// slice creation can borrow the factory while the slice map is
/// mutably borrowed).
struct AggFactory {
    ts_field: String,
    specs: Vec<WindowAgg>,
    input: SchemaRef,
    registry: FunctionRegistry,
}

impl AggFactory {
    fn make(&self) -> Result<Vec<Box<dyn Aggregator>>> {
        self.specs
            .iter()
            .map(|a| a.spec.create(&self.input, &self.registry, &self.ts_field))
            .collect()
    }

    fn clone_parts(&self) -> AggFactory {
        AggFactory {
            ts_field: self.ts_field.clone(),
            specs: self.specs.clone(),
            input: self.input.clone(),
            registry: self.registry.clone(),
        }
    }

    /// Deep-copies a set of live accumulators: fresh aggregators from
    /// the factory, each absorbing the original through the core
    /// [`Aggregator::merge`] contract — state duplication without
    /// requiring `Clone` on every aggregator implementation.
    fn copy_aggs(&self, aggs: &[Box<dyn Aggregator>]) -> Result<Vec<Box<dyn Aggregator>>> {
        let mut fresh = self.make()?;
        for (copy, orig) in fresh.iter_mut().zip(aggs) {
            copy.merge(orig.as_ref())?;
        }
        Ok(fresh)
    }
}

/// Deterministic emission order: by the row's leading timestamp (window
/// or slice start, right after the `key_count` key columns) then the
/// canonical record encoding — same-start multi-key output must not
/// depend on hash-map iteration order. The single definition serves
/// watermark, end-of-stream and partial-flush emission alike.
pub(crate) fn sort_emission(records: &mut [Record], key_count: usize) {
    records.sort_by_cached_key(|r| {
        let start = r.get(key_count).and_then(Value::as_timestamp).unwrap_or(0);
        (start, record_sort_key(r))
    });
}

/// Shared slice state machine: per-(key, slice) accumulators plus the
/// window bookkeeping all three slicing operators need — [`WindowOp`]
/// (records in, finished windows out), the edge partial operator
/// (records in, per-slice partial rows out) and the cloud merge operator
/// (partial rows in, finished windows out).
pub(crate) struct SliceStore {
    layout: SliceLayout,
    /// Leading key-column count of emitted rows (for emission sorting).
    key_count: usize,
    factory: AggFactory,
    keys: HashMap<GroupKey, KeySlices>,
}

impl SliceStore {
    pub(crate) fn new(
        layout: SliceLayout,
        ts_field: &str,
        key_count: usize,
        specs: Vec<WindowAgg>,
        input: SchemaRef,
        registry: FunctionRegistry,
    ) -> Self {
        SliceStore {
            layout,
            key_count,
            factory: AggFactory {
                ts_field: ts_field.to_string(),
                specs,
                input,
                registry,
            },
            keys: HashMap::new(),
        }
    }

    /// Estimated bytes of live slice state: key entries plus per-slice
    /// accumulator sets, costed at nominal per-container constants. A
    /// telemetry gauge, not an allocator audit — O(keys + slices).
    pub(crate) fn est_state_bytes(&self) -> usize {
        let per_agg = 48;
        let per_slice = 48 + self.factory.specs.len() * per_agg;
        self.keys
            .values()
            .map(|ks| 64 + ks.key_values.len() * 24 + ks.slices.len() * per_slice)
            .sum()
    }

    /// The key's slice state, created on first touch.
    fn slice_entry(
        &mut self,
        key: GroupKey,
        key_values: &[Value],
        slice: EventTime,
    ) -> Result<&mut SliceState> {
        let factory = &self.factory;
        let ks = self.keys.entry(key).or_insert_with(|| KeySlices {
            key_values: key_values.to_vec(),
            slices: BTreeMap::new(),
        });
        Ok(match ks.slices.entry(slice) {
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => v.insert(SliceState {
                aggs: factory.make()?,
                dirty: false,
            }),
        })
    }

    /// Folds one record into its key's slice.
    pub(crate) fn update(
        &mut self,
        key: GroupKey,
        key_values: &[Value],
        slice: EventTime,
        rec: &Record,
    ) -> Result<()> {
        let st = self.slice_entry(key, key_values, slice)?;
        st.dirty = true;
        for agg in &mut st.aggs {
            agg.update(rec)?;
        }
        Ok(())
    }

    /// Folds row `row` of a columnar buffer into its key's slice — the
    /// batched twin of [`SliceStore::update`], feeding the accumulators
    /// through [`Aggregator::update_row`] so no `Record` materializes.
    pub(crate) fn update_row(
        &mut self,
        key: GroupKey,
        key_values: &[Value],
        slice: EventTime,
        buf: &TupleBuffer,
        row: usize,
    ) -> Result<()> {
        let st = self.slice_entry(key, key_values, slice)?;
        st.dirty = true;
        for agg in &mut st.aggs {
            agg.update_row(buf, row)?;
        }
        Ok(())
    }

    /// Triages one record by event time — THE late-record policy, shared
    /// by the single-process window and the edge partial operator so the
    /// two paths cannot diverge. A record in a `slide > size` coverage
    /// gap belongs to no window and is ignored; a record whose every
    /// window has closed is **late** (returns `true`, counted once by the
    /// caller); otherwise it folds into its slice, where still-open
    /// windows will pick it up.
    pub(crate) fn absorb(
        &mut self,
        key_exprs: &[BoundExpr],
        rec: &Record,
        ts: EventTime,
        last_watermark: EventTime,
    ) -> Result<bool> {
        match self.layout.latest_close(ts) {
            None => Ok(false),
            Some(close) if close <= last_watermark => Ok(true),
            Some(_) => {
                let (key, key_values) = GroupKey::evaluate(key_exprs, rec)?;
                self.update(key, &key_values, self.layout.slice_of(ts), rec)?;
                Ok(false)
            }
        }
    }

    /// Columnar twin of [`SliceStore::absorb`]: same triage decision
    /// tree (coverage gap → ignore; every window closed → late; else
    /// fold), evaluating the group key and the aggregates directly over
    /// the buffer's columns. Key evaluation only happens for live rows,
    /// so a key expression that errors on a late record stays silent —
    /// exactly as on the row path.
    pub(crate) fn absorb_row(
        &mut self,
        key_exprs: &[BoundExpr],
        buf: &TupleBuffer,
        row: usize,
        ts: EventTime,
        last_watermark: EventTime,
    ) -> Result<bool> {
        match self.layout.latest_close(ts) {
            None => Ok(false),
            Some(close) if close <= last_watermark => Ok(true),
            Some(_) => {
                let (key, key_values) = GroupKey::evaluate_row(key_exprs, buf, row)?;
                self.update_row(key, &key_values, self.layout.slice_of(ts), buf, row)?;
                Ok(false)
            }
        }
    }

    /// Folds one flattened partial row into its key's slice — the
    /// cloud-side merge of per-edge slice partials. `partials` holds one
    /// snapshot slice per aggregate, in spec order.
    pub(crate) fn merge_partials(
        &mut self,
        key: GroupKey,
        key_values: &[Value],
        slice: EventTime,
        partials: &[&[Value]],
    ) -> Result<()> {
        let st = self.slice_entry(key, key_values, slice)?;
        st.dirty = true;
        for (agg, partial) in st.aggs.iter_mut().zip(partials) {
            agg.merge_partial(partial)?;
        }
        Ok(())
    }

    /// Materializes every window whose end lies in `(after, upto]`
    /// (`upto = None`: every window not yet emitted — end-of-stream) by
    /// merging its covering slices, then retires slices no open window
    /// can ever read again (`last_close <= upto`). Rows come out sorted
    /// by (window start, canonical record encoding), so emission order
    /// is deterministic however the hash maps iterate.
    pub(crate) fn close_windows(
        &mut self,
        after: EventTime,
        upto: Option<EventTime>,
    ) -> Result<Vec<Record>> {
        let mut records = Vec::new();
        let (size, slide, width) = (self.layout.size, self.layout.slide, self.layout.width);
        let factory = &self.factory;
        for ks in self.keys.values() {
            // Candidate window starts are multiples of `slide` bounded
            // by the key's live slice span AND the (after, upto] end
            // range — enumerated directly, so a watermark that closes
            // nothing costs nothing per live slice.
            let (Some((&lo, _)), Some((&hi, _))) =
                (ks.slices.first_key_value(), ks.slices.last_key_value())
            else {
                continue;
            };
            // A window [W, W+size) covers a slice in [lo, hi] iff
            // W > lo - size (its end reaches past `lo`) and W <= hi;
            // its end lands in (after, upto] iff W > after - size and
            // (upto absent or W <= upto - size).
            let w_lo = lo
                .saturating_sub(size)
                .saturating_add(width)
                .max(after.saturating_sub(size).saturating_add(1));
            let w_hi = match upto {
                Some(b) => hi.min(b.saturating_sub(size)),
                None => hi,
            };
            // Round `w_lo` up to the next multiple of `slide`.
            let mut start = -((-w_lo).div_euclid(slide)) * slide;
            while start <= w_hi {
                let mut covered = ks.slices.range(start..start + size).peekable();
                if covered.peek().is_none() {
                    start += slide;
                    continue;
                }
                let mut aggs = factory.make()?;
                for (_, st) in covered {
                    for (agg, other) in aggs.iter_mut().zip(&st.aggs) {
                        agg.merge(other.as_ref())?;
                    }
                }
                let mut values = Vec::with_capacity(ks.key_values.len() + 2 + aggs.len());
                values.extend(ks.key_values.iter().cloned());
                values.push(Value::Timestamp(start));
                values.push(Value::Timestamp(start + size));
                for agg in &mut aggs {
                    values.push(agg.finish()?);
                }
                records.push(Record::new(values));
                start += slide;
            }
        }
        if let Some(wm) = upto {
            self.retire(wm);
        } else {
            self.keys.clear();
        }
        self.sort_emission(&mut records);
        Ok(records)
    }

    /// See [`sort_emission`].
    fn sort_emission(&self, records: &mut [Record]) {
        sort_emission(records, self.key_count);
    }

    /// A deep copy of the whole store — every key's every slice's
    /// accumulators — for checkpointing. Fails only if an aggregator
    /// cannot merge (which would equally fail window materialization).
    pub(crate) fn snapshot(&self) -> Result<SliceStore> {
        let mut keys = HashMap::with_capacity(self.keys.len());
        for (key, ks) in &self.keys {
            let mut slices = BTreeMap::new();
            for (&slice, st) in &ks.slices {
                slices.insert(
                    slice,
                    SliceState {
                        aggs: self.factory.copy_aggs(&st.aggs)?,
                        dirty: st.dirty,
                    },
                );
            }
            keys.insert(
                key.clone(),
                KeySlices {
                    key_values: ks.key_values.clone(),
                    slices,
                },
            );
        }
        Ok(SliceStore {
            layout: self.layout,
            key_count: self.key_count,
            factory: self.factory.clone_parts(),
            keys,
        })
    }

    /// Drops slices whose last covering window has closed: no record or
    /// partial for them can ever be anything but late.
    pub(crate) fn retire(&mut self, wm: EventTime) {
        let layout = self.layout;
        self.keys.retain(|_, ks| {
            ks.slices.retain(|&slice, _| layout.last_close(slice) > wm);
            !ks.slices.is_empty()
        });
    }

    /// Snapshots and resets every dirty slice due for shipping — the
    /// edge-side flush. A slice is due once the first window covering it
    /// closes (`first_close <= wm`; `wm = None` flushes everything, for
    /// end-of-stream). The accumulators reset to empty, so a slice that
    /// keeps receiving records ships *delta* partials which the cloud
    /// merge folds together. Rows are (keys, slice_start, slice_end,
    /// partial columns), sorted deterministically.
    pub(crate) fn flush_dirty(&mut self, wm: Option<EventTime>) -> Result<Vec<Record>> {
        let mut records = Vec::new();
        let layout = self.layout;
        let factory = &self.factory;
        for ks in self.keys.values_mut() {
            let KeySlices { key_values, slices } = ks;
            for (&slice, st) in slices.iter_mut() {
                if !st.dirty || wm.is_some_and(|w| layout.first_close(slice) > w) {
                    continue;
                }
                let aggs = std::mem::replace(&mut st.aggs, factory.make()?);
                st.dirty = false;
                let mut values = Vec::with_capacity(key_values.len() + 2 + aggs.len());
                values.extend(key_values.iter().cloned());
                values.push(Value::Timestamp(slice));
                values.push(Value::Timestamp(slice + layout.width));
                for agg in &aggs {
                    values.extend(agg.partial()?);
                }
                records.push(Record::new(values));
            }
        }
        self.sort_emission(&mut records);
        Ok(records)
    }
}

/// Per-(key, window) accumulator state (threshold windows only — time
/// windows live in the `SliceStore`).
struct ThresholdState {
    key_values: Vec<Value>,
    start: EventTime,
    /// Last-seen event time.
    end: EventTime,
    count: u64,
    aggs: Vec<Box<dyn Aggregator>>,
}

/// Keyed windowed aggregation over event time.
///
/// - Time windows (tumbling/sliding) aggregate into shared slices and
///   emit when the watermark passes a window's end, merging the covering
///   slices (see `SliceStore`).
/// - Threshold windows open on the first record satisfying the predicate
///   and close (emitting if `count >= min_count`) on the first record of
///   the same key that does not.
///
/// Output schema: key columns, `window_start`, `window_end`, then one
/// column per aggregate. Watermark emission is deterministic: rows sort
/// by (window start, key values).
pub struct WindowOp {
    ts_col: usize,
    /// Event-time column name (threshold aggregator creation).
    ts_field: String,
    key_exprs: Vec<BoundExpr>,
    key_count: usize,
    spec: WindowSpec,
    threshold_pred: Option<BoundExpr>,
    agg_specs: Vec<WindowAgg>,
    input: SchemaRef,
    output: SchemaRef,
    registry: FunctionRegistry,
    /// Time-window slice state (`None` for threshold windows).
    slices: Option<SliceStore>,
    /// Threshold-window state keyed by group.
    threshold_state: HashMap<GroupKey, ThresholdState>,
    last_watermark: EventTime,
    late_drops: u64,
}

impl WindowOp {
    /// Builds the operator, binding keys, the optional threshold
    /// predicate and all aggregates against `input`. `ts_field` names the
    /// event-time column.
    pub fn new(
        ts_field: &str,
        keys: &[(String, Expr)],
        spec: WindowSpec,
        aggs: Vec<WindowAgg>,
        input: SchemaRef,
        registry: &FunctionRegistry,
    ) -> Result<Self> {
        spec.validate()?;
        let ts_col = input
            .index_of(ts_field)
            .ok_or_else(|| NebulaError::Plan(format!("window: unknown ts field '{ts_field}'")))?;
        let mut key_exprs = Vec::with_capacity(keys.len());
        let mut fields = Vec::with_capacity(keys.len() + 2 + aggs.len());
        for (name, e) in keys {
            let (b, t) = e.bind(&input, registry)?;
            key_exprs.push(b);
            fields.push(Field::new(name.clone(), t));
        }
        fields.push(Field::new("window_start", DataType::Timestamp));
        fields.push(Field::new("window_end", DataType::Timestamp));
        for agg in &aggs {
            fields.push(Field::new(
                agg.name.clone(),
                agg.spec.output_type(&input, registry)?,
            ));
        }
        let threshold_pred = match &spec {
            WindowSpec::Threshold { predicate, .. } => {
                let (b, t) = predicate.bind(&input, registry)?;
                if t != DataType::Bool {
                    return Err(NebulaError::Type(format!(
                        "threshold predicate must be BOOL, got {t}"
                    )));
                }
                Some(b)
            }
            _ => None,
        };
        let slices = SliceLayout::of(&spec).map(|layout| {
            SliceStore::new(
                layout,
                ts_field,
                keys.len(),
                aggs.clone(),
                input.clone(),
                registry.clone(),
            )
        });
        Ok(WindowOp {
            ts_col,
            ts_field: ts_field.to_string(),
            key_count: keys.len(),
            key_exprs,
            spec,
            threshold_pred,
            agg_specs: aggs,
            input,
            output: Schema::new(fields),
            registry: registry.clone(),
            slices,
            threshold_state: HashMap::new(),
            last_watermark: EventTime::MIN,
            late_drops: 0,
        })
    }

    /// Records dropped because *every* window that could have held them
    /// had already been closed by a watermark (each record counts at
    /// most once; a record late for some windows but live for others is
    /// absorbed, not counted).
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    fn emit_threshold(&self, mut st: ThresholdState) -> Result<Record> {
        let mut values = Vec::with_capacity(st.key_values.len() + 2 + st.aggs.len());
        values.append(&mut st.key_values);
        values.push(Value::Timestamp(st.start));
        values.push(Value::Timestamp(st.end));
        for agg in &mut st.aggs {
            values.push(agg.finish()?);
        }
        Ok(Record::new(values))
    }

    fn process_time_window(&mut self, rec: &Record, ts: EventTime) -> Result<()> {
        let store = self.slices.as_mut().expect("time window has slices");
        if store.absorb(&self.key_exprs, rec, ts, self.last_watermark)? {
            self.late_drops += 1;
        }
        Ok(())
    }

    fn process_threshold(
        &mut self,
        rec: &Record,
        ts: EventTime,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        let WindowSpec::Threshold { min_count, .. } = &self.spec else {
            unreachable!("threshold path");
        };
        let min_count = *min_count;
        let pred = self
            .threshold_pred
            .as_ref()
            .expect("threshold predicate bound")
            .clone();
        let (key, key_values) = GroupKey::evaluate(&self.key_exprs, rec)?;
        let holds = pred.eval_predicate(rec)?;
        if holds {
            let st = match self.threshold_state.entry(key) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let aggs = self
                        .agg_specs
                        .iter()
                        .map(|a| a.spec.create(&self.input, &self.registry, &self.ts_field))
                        .collect::<Result<Vec<_>>>()?;
                    v.insert(ThresholdState {
                        key_values,
                        start: ts,
                        end: ts,
                        count: 0,
                        aggs,
                    })
                }
            };
            st.end = st.end.max(ts);
            st.count += 1;
            for agg in &mut st.aggs {
                agg.update(rec)?;
            }
        } else if let Some(st) = self.threshold_state.remove(&key) {
            if st.count as usize >= min_count {
                out.push(self.emit_threshold(st)?);
            }
        }
        Ok(())
    }
}

impl Operator for WindowOp {
    fn name(&self) -> &str {
        "window"
    }

    fn output_schema(&self) -> SchemaRef {
        self.output.clone()
    }

    fn process(&mut self, buf: RecordBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        let is_threshold = self.threshold_pred.is_some();
        let mut emitted: Vec<Record> = Vec::new();
        for rec in buf.records() {
            let ts = rec
                .get(self.ts_col)
                .and_then(Value::as_timestamp)
                .ok_or_else(|| NebulaError::Eval("window: record missing event time".into()))?;
            if is_threshold {
                self.process_threshold(rec, ts, &mut emitted)?;
            } else {
                self.process_time_window(rec, ts)?;
            }
        }
        if !emitted.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.output.clone(),
                emitted,
            )));
        }
        Ok(())
    }

    /// Time-window mode folds buffers without materializing rows;
    /// threshold windows are inherently sequential per record and keep
    /// the row path.
    fn supports_columnar(&self) -> bool {
        self.slices.is_some()
    }

    fn propagates_columnar(&self) -> bool {
        false
    }

    fn process_columnar(&mut self, buf: TupleBuffer, out: &mut Vec<StreamMessage>) -> Result<()> {
        if self.slices.is_none() {
            return self.process(buf.to_record_buffer(), out);
        }
        let last_watermark = self.last_watermark;
        let store = self.slices.as_mut().expect("time window has slices");
        for row in 0..buf.len() {
            let ts = buf
                .event_time(row, self.ts_col)
                .ok_or_else(|| NebulaError::Eval("window: record missing event time".into()))?;
            if store.absorb_row(&self.key_exprs, &buf, row, ts, last_watermark)? {
                self.late_drops += 1;
            }
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: EventTime, out: &mut Vec<StreamMessage>) -> Result<()> {
        let prev = self.last_watermark;
        self.last_watermark = self.last_watermark.max(wm);
        if let Some(store) = self.slices.as_mut() {
            let records = store.close_windows(prev, Some(self.last_watermark))?;
            if !records.is_empty() {
                out.push(StreamMessage::Data(RecordBuffer::new(
                    self.output.clone(),
                    records,
                )));
            }
        }
        out.push(StreamMessage::Watermark(wm));
        Ok(())
    }

    fn on_eos(&mut self, out: &mut Vec<StreamMessage>) -> Result<()> {
        // Flush everything still open.
        let mut records = Vec::new();
        if let Some(store) = self.slices.as_mut() {
            records = store.close_windows(self.last_watermark, None)?;
        }
        let min_count = match &self.spec {
            WindowSpec::Threshold { min_count, .. } => *min_count,
            _ => 0,
        };
        let th_keys: Vec<_> = self.threshold_state.keys().cloned().collect();
        for key in th_keys {
            let st = self.threshold_state.remove(&key).expect("listed");
            if st.count as usize >= min_count {
                records.push(self.emit_threshold(st)?);
            }
        }
        // Slice output arrives pre-sorted from close_windows; appended
        // threshold rows need the same deterministic (start, key) order.
        sort_emission(&mut records, self.key_count);
        if !records.is_empty() {
            out.push(StreamMessage::Data(RecordBuffer::new(
                self.output.clone(),
                records,
            )));
        }
        out.push(StreamMessage::Eos);
        Ok(())
    }

    fn late_drops(&self) -> u64 {
        self.late_drops
    }

    fn state_bytes(&self) -> usize {
        let slices = self.slices.as_ref().map_or(0, SliceStore::est_state_bytes);
        let per_agg = 48;
        let threshold = self
            .threshold_state
            .values()
            .map(|st| 64 + st.key_values.len() * 24 + st.aggs.len() * per_agg)
            .sum::<usize>();
        slices + threshold
    }

    fn snapshot(&self) -> Option<Box<dyn Operator>> {
        self.try_snapshot().ok().map(|op| Box::new(op) as _)
    }
}

impl WindowOp {
    /// Deep copy for checkpointing: configuration is cloned, slice and
    /// threshold state is duplicated through the aggregator merge
    /// contract.
    fn try_snapshot(&self) -> Result<WindowOp> {
        let factory = AggFactory {
            ts_field: self.ts_field.clone(),
            specs: self.agg_specs.clone(),
            input: self.input.clone(),
            registry: self.registry.clone(),
        };
        let slices = match &self.slices {
            Some(store) => Some(store.snapshot()?),
            None => None,
        };
        let mut threshold_state = HashMap::with_capacity(self.threshold_state.len());
        for (key, st) in &self.threshold_state {
            threshold_state.insert(
                key.clone(),
                ThresholdState {
                    key_values: st.key_values.clone(),
                    start: st.start,
                    end: st.end,
                    count: st.count,
                    aggs: factory.copy_aggs(&st.aggs)?,
                },
            );
        }
        Ok(WindowOp {
            ts_col: self.ts_col,
            ts_field: self.ts_field.clone(),
            key_exprs: self.key_exprs.clone(),
            key_count: self.key_count,
            spec: self.spec.clone(),
            threshold_pred: self.threshold_pred.clone(),
            agg_specs: self.agg_specs.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            registry: self.registry.clone(),
            slices,
            threshold_state,
            last_watermark: self.last_watermark,
            late_drops: self.late_drops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::value::MICROS_PER_SEC;
    use crate::window::AggSpec;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, speed: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(speed),
        ])
    }

    fn make_op(spec: WindowSpec) -> WindowOp {
        let reg = FunctionRegistry::with_builtins();
        WindowOp::new(
            "ts",
            &[("train".into(), col("train"))],
            spec,
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("avg_speed", AggSpec::Avg(col("speed"))),
            ],
            schema(),
            &reg,
        )
        .unwrap()
    }

    fn data_records(msgs: &[StreamMessage]) -> Vec<Record> {
        msgs.iter()
            .filter_map(|m| match m {
                StreamMessage::Data(b) => Some(b.records().to_vec()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn tumbling_emits_on_watermark() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(
                schema(),
                vec![rec(1, 1, 10.0), rec(5, 1, 20.0), rec(12, 1, 30.0)],
            ),
            &mut out,
        )
        .unwrap();
        assert!(data_records(&out).is_empty(), "nothing before watermark");

        op.on_watermark(10 * MICROS_PER_SEC, &mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1, "only the [0,10) window closed");
        let r = &recs[0];
        assert_eq!(r.get(0), Some(&Value::Int(1)), "key");
        assert_eq!(r.get(1), Some(&Value::Timestamp(0)), "start");
        assert_eq!(
            r.get(2),
            Some(&Value::Timestamp(10 * MICROS_PER_SEC)),
            "end"
        );
        assert_eq!(r.get(3), Some(&Value::Int(2)), "count");
        assert_eq!(r.get(4), Some(&Value::Float(15.0)), "avg");
    }

    #[test]
    fn tumbling_separate_keys() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(schema(), vec![rec(1, 1, 10.0), rec(2, 2, 99.0)]),
            &mut out,
        )
        .unwrap();
        op.on_watermark(10 * MICROS_PER_SEC, &mut out).unwrap();
        assert_eq!(data_records(&out).len(), 2);
    }

    #[test]
    fn late_records_dropped() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.on_watermark(20 * MICROS_PER_SEC, &mut out).unwrap();
        op.process(RecordBuffer::new(schema(), vec![rec(5, 1, 10.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        assert!(data_records(&out).is_empty());
        assert_eq!(op.late_drops(), 1);
    }

    #[test]
    fn partially_late_record_absorbed_and_not_counted() {
        // Sliding 20s/5s windows: ts=12 belongs to [-5,15), [0,20),
        // [5,25) and [10,30). A watermark at 25 closes the first three
        // but leaves [10,30) open: the record is late for three of its
        // four windows yet live for the last, so it must be absorbed
        // into the open window and must NOT bump the late counter (the
        // seed counted it once per closed window).
        let mut op = make_op(WindowSpec::Sliding {
            size: 20 * MICROS_PER_SEC,
            slide: 5 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.on_watermark(25 * MICROS_PER_SEC, &mut out).unwrap();
        op.process(
            RecordBuffer::new(schema(), vec![rec(12, 1, 10.0)]),
            &mut out,
        )
        .unwrap();
        assert_eq!(op.late_drops(), 0, "a live window remains, not a drop");
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        // Only the still-open [10,30) window emits the record.
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get(1), Some(&Value::Timestamp(10 * MICROS_PER_SEC)));
        assert_eq!(recs[0].get(3), Some(&Value::Int(1)), "record absorbed");

        // Fully late record: counted exactly once despite four windows.
        let mut op = make_op(WindowSpec::Sliding {
            size: 20 * MICROS_PER_SEC,
            slide: 5 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.on_watermark(100 * MICROS_PER_SEC, &mut out).unwrap();
        op.process(
            RecordBuffer::new(schema(), vec![rec(12, 1, 10.0)]),
            &mut out,
        )
        .unwrap();
        assert_eq!(op.late_drops(), 1, "once per record, not per window");
    }

    #[test]
    fn sliding_multiple_windows() {
        let mut op = make_op(WindowSpec::Sliding {
            size: 10 * MICROS_PER_SEC,
            slide: 5 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(7, 1, 10.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        // ts=7 falls in [0,10) and [5,15).
        assert_eq!(data_records(&out).len(), 2);
    }

    #[test]
    fn sliding_gap_record_belongs_to_no_window() {
        // slide > size leaves coverage gaps; a record in a gap is not
        // late, it simply belongs to no window.
        let mut op = make_op(WindowSpec::Sliding {
            size: 10 * MICROS_PER_SEC,
            slide: 15 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(schema(), vec![rec(12, 1, 1.0), rec(16, 1, 2.0)]),
            &mut out,
        )
        .unwrap();
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1, "only ts=16 lands in a window ([15,25))");
        assert_eq!(op.late_drops(), 0);
    }

    #[test]
    fn eos_flushes_open_windows() {
        let mut op = make_op(WindowSpec::Tumbling {
            size: 10 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(3, 1, 5.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        assert!(matches!(out.last(), Some(StreamMessage::Eos)));
    }

    #[test]
    fn watermark_emission_is_deterministic_and_sorted() {
        // Many keys, one window: emission order must be (window start,
        // key values) regardless of hash-map iteration order. Repeated
        // runs (fresh HashMaps, fresh RandomState) must agree exactly.
        let run_once = || {
            let mut op = make_op(WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            });
            let mut out = Vec::new();
            let recs: Vec<Record> = (0..64).map(|i| rec(i % 50, i % 37, i as f64)).collect();
            op.process(RecordBuffer::new(schema(), recs), &mut out)
                .unwrap();
            op.on_watermark(120 * MICROS_PER_SEC, &mut out).unwrap();
            data_records(&out)
        };
        let first = run_once();
        assert_eq!(first.len(), 37, "one row per key");
        let keys: Vec<i64> = first
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "rows sorted by key within the window");
        for _ in 0..5 {
            assert_eq!(run_once(), first, "emission order is deterministic");
        }
    }

    #[test]
    fn sliding_slices_equal_eager_accumulation() {
        // Overlap factor 4: each record updates ONE slice, yet every
        // window's aggregate must equal eager per-window accumulation.
        let mut op = make_op(WindowSpec::Sliding {
            size: 60 * MICROS_PER_SEC,
            slide: 15 * MICROS_PER_SEC,
        });
        let mut out = Vec::new();
        let recs: Vec<Record> = (0..120).map(|i| rec(i, 1, (i % 7) as f64)).collect();
        op.process(RecordBuffer::new(schema(), recs.clone()), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        let got = data_records(&out);
        let spec = WindowSpec::Sliding {
            size: 60 * MICROS_PER_SEC,
            slide: 15 * MICROS_PER_SEC,
        };
        for r in &got {
            let start = r.get(1).unwrap().as_timestamp().unwrap();
            let end = r.get(2).unwrap().as_timestamp().unwrap();
            let expect: Vec<&Record> = recs
                .iter()
                .filter(|x| {
                    let t = x.get(0).unwrap().as_timestamp().unwrap();
                    t >= start && t < end
                })
                .collect();
            assert_eq!(
                r.get(3).unwrap().as_int().unwrap() as usize,
                expect.len(),
                "window [{start},{end})"
            );
            let sum: f64 = expect
                .iter()
                .map(|x| x.get(2).unwrap().as_float().unwrap())
                .sum();
            let avg = r.get(4).unwrap().as_float().unwrap();
            assert!((avg - sum / expect.len() as f64).abs() < 1e-9);
            assert!(spec.assign(start).contains(&start) || start % (15 * MICROS_PER_SEC) == 0);
        }
    }

    #[test]
    fn threshold_window_opens_and_closes() {
        let mut op = {
            let reg = FunctionRegistry::with_builtins();
            WindowOp::new(
                "ts",
                &[("train".into(), col("train"))],
                WindowSpec::Threshold {
                    predicate: col("speed").gt(lit(50.0)),
                    min_count: 2,
                },
                vec![
                    WindowAgg::new("n", AggSpec::Count),
                    WindowAgg::new("max_speed", AggSpec::Max(col("speed"))),
                ],
                schema(),
                &reg,
            )
            .unwrap()
        };
        let mut out = Vec::new();
        op.process(
            RecordBuffer::new(
                schema(),
                vec![
                    rec(1, 1, 60.0), // opens
                    rec(2, 1, 70.0), // extends
                    rec(3, 1, 10.0), // closes -> emit (count 2)
                    rec(4, 1, 80.0), // opens again
                    rec(5, 1, 5.0),  // closes -> below min_count, dropped
                ],
            ),
            &mut out,
        )
        .unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.get(1), Some(&Value::Timestamp(MICROS_PER_SEC)));
        assert_eq!(r.get(2), Some(&Value::Timestamp(2 * MICROS_PER_SEC)));
        assert_eq!(r.get(3), Some(&Value::Int(2)));
        assert_eq!(r.get(4), Some(&Value::Float(70.0)));
    }

    #[test]
    fn threshold_flushes_on_eos() {
        let reg = FunctionRegistry::with_builtins();
        let mut op = WindowOp::new(
            "ts",
            &[],
            WindowSpec::Threshold {
                predicate: col("speed").gt(lit(50.0)),
                min_count: 1,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
            schema(),
            &reg,
        )
        .unwrap();
        let mut out = Vec::new();
        op.process(RecordBuffer::new(schema(), vec![rec(1, 1, 60.0)]), &mut out)
            .unwrap();
        op.on_eos(&mut out).unwrap();
        let recs = data_records(&out);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get(2), Some(&Value::Int(1)));
    }

    #[test]
    fn output_schema_layout() {
        let op = make_op(WindowSpec::Tumbling {
            size: MICROS_PER_SEC,
        });
        assert_eq!(
            op.output_schema().to_string(),
            "(train: INT, window_start: TIMESTAMP, window_end: TIMESTAMP, \
             n: INT, avg_speed: FLOAT)"
        );
    }
}
