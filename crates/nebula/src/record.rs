//! Records and buffer-batched record containers.
//!
//! NebulaStream processes *TupleBuffers* — fixed-capacity batches — rather
//! than record-at-a-time, which is where its edge efficiency comes from.
//! [`RecordBuffer`] is the analogue: a schema plus a batch of records,
//! recycled through the runtime's buffer pool.

use crate::schema::SchemaRef;
use crate::value::{EventTime, Value};
use std::fmt;

/// One tuple.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Builds a record from values (positionally matching a schema).
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Mutable value at position `idx`.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        self.values.get_mut(idx)
    }

    /// Appends a value (schema evolution during projection).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Estimated size in bytes (sum of field estimates).
    pub fn est_bytes(&self) -> usize {
        self.values.iter().map(Value::est_bytes).sum()
    }

    /// Consumes into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A batch of records sharing a schema — the engine's unit of work.
#[derive(Debug, Clone)]
pub struct RecordBuffer {
    schema: SchemaRef,
    records: Vec<Record>,
}

impl RecordBuffer {
    /// Builds a buffer over `schema` holding `records`.
    pub fn new(schema: SchemaRef, records: Vec<Record>) -> Self {
        RecordBuffer { schema, records }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(schema: SchemaRef, cap: usize) -> Self {
        RecordBuffer {
            schema,
            records: Vec::with_capacity(cap),
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Mutable access to the records.
    pub fn records_mut(&mut self) -> &mut Vec<Record> {
        &mut self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Estimated payload size in bytes.
    pub fn est_bytes(&self) -> usize {
        self.records.iter().map(Record::est_bytes).sum()
    }

    /// Consumes into the record vector.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Event time of a record given the timestamp column index.
    pub fn event_time(&self, record_idx: usize, ts_col: usize) -> Option<EventTime> {
        self.records
            .get(record_idx)
            .and_then(|r| r.get(ts_col))
            .and_then(Value::as_timestamp)
    }

    /// Maximum event time in the buffer for watermark generation.
    pub fn max_event_time(&self, ts_col: usize) -> Option<EventTime> {
        self.records
            .iter()
            .filter_map(|r| r.get(ts_col).and_then(Value::as_timestamp))
            .max()
    }
}

/// Messages flowing between operators: data (row- or column-oriented),
/// watermark advances, and end-of-stream.
#[derive(Debug, Clone)]
pub enum StreamMessage {
    /// A batch of records in row layout.
    Data(RecordBuffer),
    /// A batch in columnar layout (see [`crate::buffer::TupleBuffer`]).
    Columnar(crate::buffer::TupleBuffer),
    /// No record with event time `< wm` will arrive anymore.
    Watermark(EventTime),
    /// The stream has ended.
    Eos,
}

impl StreamMessage {
    /// Number of records carried by a data message (0 otherwise).
    pub fn record_count(&self) -> usize {
        match self {
            StreamMessage::Data(b) => b.len(),
            StreamMessage::Columnar(b) => b.len(),
            StreamMessage::Watermark(_) | StreamMessage::Eos => 0,
        }
    }

    /// Estimated payload bytes of a data message (0 otherwise). The
    /// columnar estimate equals the row estimate for the same rows, so
    /// byte-based metrics agree across both layouts.
    pub fn data_bytes(&self) -> usize {
        match self {
            StreamMessage::Data(b) => b.est_bytes(),
            StreamMessage::Columnar(b) => b.est_bytes(),
            StreamMessage::Watermark(_) | StreamMessage::Eos => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[("ts", DataType::Timestamp), ("v", DataType::Float)])
    }

    fn rec(ts: i64, v: f64) -> Record {
        Record::new(vec![Value::Timestamp(ts), Value::Float(v)])
    }

    #[test]
    fn record_accessors() {
        let mut r = rec(5, 1.5);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1), Some(&Value::Float(1.5)));
        assert!(r.get(9).is_none());
        *r.get_mut(1).unwrap() = Value::Float(2.0);
        assert_eq!(r.get(1), Some(&Value::Float(2.0)));
        r.push(Value::Bool(true));
        assert_eq!(r.len(), 3);
        assert_eq!(r.est_bytes(), 8 + 8 + 1);
        assert_eq!(r.to_string(), "[ts:5, 2, true]");
    }

    #[test]
    fn buffer_event_times() {
        let buf = RecordBuffer::new(schema(), vec![rec(10, 0.0), rec(30, 0.0), rec(20, 0.0)]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.event_time(1, 0), Some(30));
        assert_eq!(buf.max_event_time(0), Some(30));
        assert_eq!(buf.est_bytes(), 3 * 16);
    }

    #[test]
    fn empty_buffer() {
        let buf = RecordBuffer::with_capacity(schema(), 16);
        assert!(buf.is_empty());
        assert_eq!(buf.max_event_time(0), None);
    }
}
