//! The engine's typed value model.
//!
//! NebulaStream tuples carry fixed-width primitive fields plus
//! variable-size payloads; extensions (like the MEOS plugin) flow their
//! own types through tuples opaquely. [`Value`] mirrors that: a small
//! closed set of primitive variants plus [`Value::Opaque`] for plugin
//! types the engine core never inspects.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Event-time instants are microseconds since the Unix epoch. The engine
/// deliberately uses a bare integer so it stays independent of any
/// spatiotemporal library; plugins convert at the boundary.
pub type EventTime = i64;

/// Durations in microseconds (window sizes, slacks).
pub type DurationUs = i64;

/// Microseconds per second, for rate conversions.
pub const MICROS_PER_SEC: i64 = 1_000_000;

/// The engine's data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Event-time timestamp (µs since epoch).
    Timestamp,
    /// 2-D point (x/lon, y/lat).
    Point,
    /// A plugin-defined type, identified by name.
    Opaque,
    /// The null type (untyped null literal).
    Null,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Point => "POINT",
            DataType::Opaque => "OPAQUE",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A plugin value carried opaquely through tuples (e.g. a MEOS temporal
/// sequence). The engine only needs debug printing, size accounting and
/// downcasting at the plugin boundary.
pub trait OpaqueValue: fmt::Debug + Send + Sync {
    /// Stable type tag (used in errors and for equality short-circuit).
    fn type_tag(&self) -> &'static str;
    /// Estimated in-memory size, for throughput accounting.
    fn est_bytes(&self) -> usize;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Structural equality against another opaque value of the same tag.
    fn opaque_eq(&self, other: &dyn OpaqueValue) -> bool;
}

/// A single field value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared UTF-8 text (cheap to clone across buffers).
    Text(Arc<str>),
    /// Event-time timestamp (µs since epoch).
    Timestamp(EventTime),
    /// 2-D point.
    Point {
        /// X / longitude.
        x: f64,
        /// Y / latitude.
        y: f64,
    },
    /// Plugin-defined payload.
    Opaque(Arc<dyn OpaqueValue>),
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl Into<Arc<str>>) -> Value {
        Value::Text(s.into())
    }

    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Point { .. } => DataType::Point,
            Value::Opaque(_) => DataType::Opaque,
        }
    }

    /// True iff null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view with implicit int widening.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view (ints pass through — sources often deliver epoch µs
    /// as integers).
    pub fn as_timestamp(&self) -> Option<EventTime> {
        match self {
            Value::Timestamp(v) | Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Point view.
    pub fn as_point(&self) -> Option<(f64, f64)> {
        match self {
            Value::Point { x, y } => Some((*x, *y)),
            _ => None,
        }
    }

    /// Opaque view.
    pub fn as_opaque(&self) -> Option<&Arc<dyn OpaqueValue>> {
        match self {
            Value::Opaque(o) => Some(o),
            _ => None,
        }
    }

    /// Estimated wire/memory size in bytes (drives the MB/s metrics the
    /// paper reports).
    pub fn est_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len() + 4,
            Value::Point { .. } => 16,
            Value::Opaque(o) => o.est_bytes(),
        }
    }

    /// Numeric ordering across int/float/timestamp; `None` for
    /// incomparable types.
    pub fn partial_cmp_num(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_float()?;
                let b = other.as_float()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Point { x: ax, y: ay }, Value::Point { x: bx, y: by }) => ax == bx && ay == by,
            (Value::Opaque(a), Value::Opaque(b)) => {
                a.type_tag() == b.type_tag() && a.opaque_eq(b.as_ref())
            }
            // Numeric cross-type equality (Int/Float/Timestamp).
            _ => match (self.as_float(), other.as_float()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Timestamp(v) => write!(f, "ts:{v}"),
            Value::Point { x, y } => write!(f, "({x} {y})"),
            Value::Opaque(o) => write!(f, "<{}>", o.type_tag()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_and_accessors() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Timestamp(10).as_timestamp(), Some(10));
        assert_eq!(Value::Int(10).as_timestamp(), Some(10));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Point { x: 1.0, y: 2.0 }.as_point(), Some((1.0, 2.0)));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::text("3"), Value::Int(3));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn numeric_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Value::Int(2).partial_cmp_num(&Value::Float(3.0)),
            Some(Less)
        );
        assert_eq!(
            Value::text("b").partial_cmp_num(&Value::text("a")),
            Some(Greater)
        );
        assert_eq!(Value::Bool(true).partial_cmp_num(&Value::Int(1)), None);
    }

    #[test]
    fn size_estimates() {
        assert_eq!(Value::Int(1).est_bytes(), 8);
        assert_eq!(Value::Point { x: 0.0, y: 0.0 }.est_bytes(), 16);
        assert_eq!(Value::text("abcd").est_bytes(), 8);
        assert_eq!(Value::Bool(true).est_bytes(), 1);
    }

    #[derive(Debug)]
    struct Marker(u32);
    impl OpaqueValue for Marker {
        fn type_tag(&self) -> &'static str {
            "marker"
        }
        fn est_bytes(&self) -> usize {
            4
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn opaque_eq(&self, other: &dyn OpaqueValue) -> bool {
            other
                .as_any()
                .downcast_ref::<Marker>()
                .is_some_and(|m| m.0 == self.0)
        }
    }

    #[test]
    fn opaque_values() {
        let a = Value::Opaque(Arc::new(Marker(7)));
        let b = Value::Opaque(Arc::new(Marker(7)));
        let c = Value::Opaque(Arc::new(Marker(8)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.data_type(), DataType::Opaque);
        assert_eq!(a.est_bytes(), 4);
        let o = a.as_opaque().unwrap();
        assert_eq!(o.as_any().downcast_ref::<Marker>().unwrap().0, 7);
    }
}
