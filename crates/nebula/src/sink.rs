//! Stream sinks: result collection, counting, CSV export and callbacks.

use crate::error::Result;
use crate::record::{Record, RecordBuffer};
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of result buffers.
pub trait Sink: Send {
    /// Consumes one buffer.
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()>;
    /// Consumes one columnar buffer. The default materializes rows and
    /// delegates to [`Sink::consume`]; counting-style sinks override to
    /// skip the conversion.
    fn consume_columnar(&mut self, buf: &crate::buffer::TupleBuffer) -> Result<()> {
        self.consume(&buf.to_record_buffer())
    }
    /// Called once after end-of-stream.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Shared handle to records gathered by a [`CollectingSink`].
#[derive(Debug, Clone, Default)]
pub struct Collected {
    inner: Arc<Mutex<Vec<Record>>>,
}

impl Collected {
    /// Snapshot of the collected records.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().clone()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True iff nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Collects all records into shared memory (tests, small result sets).
#[derive(Default)]
pub struct CollectingSink {
    handle: Collected,
}

impl CollectingSink {
    /// Builds a sink and its read handle.
    pub fn new() -> (Self, Collected) {
        let sink = CollectingSink::default();
        let h = sink.handle.clone();
        (sink, h)
    }
}

impl Sink for CollectingSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        self.handle.inner.lock().extend_from_slice(buf.records());
        Ok(())
    }
}

/// Shared counters exposed by a [`CountingSink`].
#[derive(Debug, Clone, Default)]
pub struct SinkCounters {
    records: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl SinkCounters {
    /// Records consumed.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Estimated bytes consumed.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Counts records/bytes without retaining data (benchmark sink).
#[derive(Default)]
pub struct CountingSink {
    counters: SinkCounters,
}

impl CountingSink {
    /// Builds a sink and its counter handle.
    pub fn new() -> (Self, SinkCounters) {
        let sink = CountingSink::default();
        let c = sink.counters.clone();
        (sink, c)
    }
}

impl Sink for CountingSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        self.counters
            .records
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(buf.est_bytes() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn consume_columnar(&mut self, buf: &crate::buffer::TupleBuffer) -> Result<()> {
        self.counters
            .records
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(buf.est_bytes() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// Collects result buffers wholesale — the per-worker sink behind
/// partitioned execution. Each worker feeds its operator chain into its
/// own `BufferSink`; after the workers join, the runtime merges the
/// collected partitions with [`merge_partitions`].
#[derive(Default)]
pub struct BufferSink {
    buffers: Vec<RecordBuffer>,
}

impl BufferSink {
    /// An empty collector.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// The buffers collected so far, in arrival order.
    pub fn buffers(&self) -> &[RecordBuffer] {
        &self.buffers
    }

    /// Consumes into the buffer vector.
    pub fn into_buffers(self) -> Vec<RecordBuffer> {
        self.buffers
    }
}

impl Sink for BufferSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        self.buffers.push(buf.clone());
        Ok(())
    }
}

/// Sorts records into the canonical order (by their byte encoding — see
/// `ops::record_sort_key`). Executions that only differ in interleaving
/// (threaded, partitioned at any parallelism) produce identical record
/// multisets; normalizing both sides makes them comparable with `==`.
pub fn normalize_records(records: &mut [Record]) {
    records.sort_by_cached_key(crate::ops::record_sort_key);
}

/// The order-normalized merge of per-worker partition outputs: flattens
/// every worker's buffers (worker order, then arrival order), then sorts
/// the records canonically so the merged result is deterministic and
/// independent of the parallelism degree.
pub fn merge_partitions(
    schema: crate::schema::SchemaRef,
    parts: Vec<Vec<RecordBuffer>>,
) -> RecordBuffer {
    let mut records: Vec<Record> = parts
        .into_iter()
        .flatten()
        .flat_map(RecordBuffer::into_records)
        .collect();
    normalize_records(&mut records);
    RecordBuffer::new(schema, records)
}

/// Discards everything (pure pipeline-cost benchmarks).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn consume(&mut self, _buf: &RecordBuffer) -> Result<()> {
        Ok(())
    }

    fn consume_columnar(&mut self, _buf: &crate::buffer::TupleBuffer) -> Result<()> {
        Ok(())
    }
}

/// Writes records as CSV (header from the first buffer's schema).
pub struct CsvSink {
    writer: std::io::BufWriter<std::fs::File>,
    wrote_header: bool,
}

impl CsvSink {
    /// Creates/truncates `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::create(path.as_ref())?;
        Ok(CsvSink {
            writer: std::io::BufWriter::new(file),
            wrote_header: false,
        })
    }
}

impl Sink for CsvSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        if !self.wrote_header {
            let header: Vec<&str> = buf
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            writeln!(self.writer, "{}", header.join(","))?;
            self.wrote_header = true;
        }
        for rec in buf.records() {
            let row: Vec<String> = rec.values().iter().map(|v| v.to_string()).collect();
            writeln!(self.writer, "{}", row.join(","))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Invokes a callback per buffer (live dashboards, alert fan-out).
pub struct CallbackSink {
    f: Box<dyn FnMut(&RecordBuffer) + Send>,
}

impl CallbackSink {
    /// Builds a callback sink.
    pub fn new(f: impl FnMut(&RecordBuffer) + Send + 'static) -> Self {
        CallbackSink { f: Box::new(f) }
    }
}

impl Sink for CallbackSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        (self.f)(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn buf(vals: &[i64]) -> RecordBuffer {
        RecordBuffer::new(
            Schema::of(&[("v", DataType::Int)]),
            vals.iter()
                .map(|v| Record::new(vec![Value::Int(*v)]))
                .collect(),
        )
    }

    #[test]
    fn collecting_sink_gathers() {
        let (mut sink, handle) = CollectingSink::new();
        sink.consume(&buf(&[1, 2])).unwrap();
        sink.consume(&buf(&[3])).unwrap();
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.records()[2].get(0), Some(&Value::Int(3)));
        assert!(!handle.is_empty());
    }

    #[test]
    fn counting_sink_counts() {
        let (mut sink, counters) = CountingSink::new();
        sink.consume(&buf(&[1, 2, 3])).unwrap();
        assert_eq!(counters.records(), 3);
        assert_eq!(counters.bytes(), 24);
    }

    #[test]
    fn csv_sink_writes() {
        let path = std::env::temp_dir().join("nebula_csv_sink_test.csv");
        {
            let mut sink = CsvSink::create(&path).unwrap();
            sink.consume(&buf(&[7, 8])).unwrap();
            sink.finish().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "v\n7\n8\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn callback_sink_invokes() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let mut sink = CallbackSink::new(move |b| {
            seen2.fetch_add(b.len() as u64, Ordering::Relaxed);
        });
        sink.consume(&buf(&[1, 2, 3, 4])).unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn buffer_sink_collects_whole_buffers() {
        let mut sink = BufferSink::new();
        sink.consume(&buf(&[1, 2])).unwrap();
        sink.consume(&buf(&[3])).unwrap();
        assert_eq!(sink.buffers().len(), 2);
        let buffers = sink.into_buffers();
        assert_eq!(buffers[0].len(), 2);
        assert_eq!(buffers[1].len(), 1);
    }

    #[test]
    fn merge_partitions_is_order_normalized() {
        let schema = Schema::of(&[("v", DataType::Int)]);
        // Two partitions holding interleaved halves of 0..6.
        let a = vec![buf(&[4, 1]), buf(&[5])];
        let b = vec![buf(&[0, 3, 2])];
        let ab = merge_partitions(schema.clone(), vec![a.clone(), b.clone()]);
        let ba = merge_partitions(schema, vec![b, a]);
        assert_eq!(ab.records(), ba.records(), "merge ignores worker order");
        let got: Vec<i64> = ab
            .records()
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn null_sink_accepts() {
        let mut sink = NullSink;
        sink.consume(&buf(&[1])).unwrap();
        sink.finish().unwrap();
    }
}
