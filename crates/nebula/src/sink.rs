//! Stream sinks: result collection, counting, CSV export and callbacks.

use crate::error::Result;
use crate::record::{Record, RecordBuffer};
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of result buffers.
pub trait Sink: Send {
    /// Consumes one buffer.
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()>;
    /// Called once after end-of-stream.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Shared handle to records gathered by a [`CollectingSink`].
#[derive(Debug, Clone, Default)]
pub struct Collected {
    inner: Arc<Mutex<Vec<Record>>>,
}

impl Collected {
    /// Snapshot of the collected records.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().clone()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True iff nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Collects all records into shared memory (tests, small result sets).
#[derive(Default)]
pub struct CollectingSink {
    handle: Collected,
}

impl CollectingSink {
    /// Builds a sink and its read handle.
    pub fn new() -> (Self, Collected) {
        let sink = CollectingSink::default();
        let h = sink.handle.clone();
        (sink, h)
    }
}

impl Sink for CollectingSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        self.handle.inner.lock().extend_from_slice(buf.records());
        Ok(())
    }
}

/// Shared counters exposed by a [`CountingSink`].
#[derive(Debug, Clone, Default)]
pub struct SinkCounters {
    records: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl SinkCounters {
    /// Records consumed.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Estimated bytes consumed.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Counts records/bytes without retaining data (benchmark sink).
#[derive(Default)]
pub struct CountingSink {
    counters: SinkCounters,
}

impl CountingSink {
    /// Builds a sink and its counter handle.
    pub fn new() -> (Self, SinkCounters) {
        let sink = CountingSink::default();
        let c = sink.counters.clone();
        (sink, c)
    }
}

impl Sink for CountingSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        self.counters
            .records
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(buf.est_bytes() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// Discards everything (pure pipeline-cost benchmarks).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn consume(&mut self, _buf: &RecordBuffer) -> Result<()> {
        Ok(())
    }
}

/// Writes records as CSV (header from the first buffer's schema).
pub struct CsvSink {
    writer: std::io::BufWriter<std::fs::File>,
    wrote_header: bool,
}

impl CsvSink {
    /// Creates/truncates `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::create(path.as_ref())?;
        Ok(CsvSink {
            writer: std::io::BufWriter::new(file),
            wrote_header: false,
        })
    }
}

impl Sink for CsvSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        if !self.wrote_header {
            let header: Vec<&str> = buf
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            writeln!(self.writer, "{}", header.join(","))?;
            self.wrote_header = true;
        }
        for rec in buf.records() {
            let row: Vec<String> = rec.values().iter().map(|v| v.to_string()).collect();
            writeln!(self.writer, "{}", row.join(","))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Invokes a callback per buffer (live dashboards, alert fan-out).
pub struct CallbackSink {
    f: Box<dyn FnMut(&RecordBuffer) + Send>,
}

impl CallbackSink {
    /// Builds a callback sink.
    pub fn new(f: impl FnMut(&RecordBuffer) + Send + 'static) -> Self {
        CallbackSink { f: Box::new(f) }
    }
}

impl Sink for CallbackSink {
    fn consume(&mut self, buf: &RecordBuffer) -> Result<()> {
        (self.f)(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn buf(vals: &[i64]) -> RecordBuffer {
        RecordBuffer::new(
            Schema::of(&[("v", DataType::Int)]),
            vals.iter()
                .map(|v| Record::new(vec![Value::Int(*v)]))
                .collect(),
        )
    }

    #[test]
    fn collecting_sink_gathers() {
        let (mut sink, handle) = CollectingSink::new();
        sink.consume(&buf(&[1, 2])).unwrap();
        sink.consume(&buf(&[3])).unwrap();
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.records()[2].get(0), Some(&Value::Int(3)));
        assert!(!handle.is_empty());
    }

    #[test]
    fn counting_sink_counts() {
        let (mut sink, counters) = CountingSink::new();
        sink.consume(&buf(&[1, 2, 3])).unwrap();
        assert_eq!(counters.records(), 3);
        assert_eq!(counters.bytes(), 24);
    }

    #[test]
    fn csv_sink_writes() {
        let path = std::env::temp_dir().join("nebula_csv_sink_test.csv");
        {
            let mut sink = CsvSink::create(&path).unwrap();
            sink.consume(&buf(&[7, 8])).unwrap();
            sink.finish().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "v\n7\n8\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn callback_sink_invokes() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let mut sink = CallbackSink::new(move |b| {
            seen2.fetch_add(b.len() as u64, Ordering::Relaxed);
        });
        sink.consume(&buf(&[1, 2, 3, 4])).unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn null_sink_accepts() {
        let mut sink = NullSink;
        sink.consume(&buf(&[1])).unwrap();
        sink.finish().unwrap();
    }
}
