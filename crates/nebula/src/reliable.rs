//! The resilient wire link: checksums, sequence numbers, acks and
//! retransmission over the cluster's lossy (chaos-injected) channels.
//!
//! Every payload crossing a link is wrapped in a [`crate::wire`]
//! envelope carrying a per-link sequence number and a CRC32 over header
//! and payload. The receiving side ([`ReliableRx`]) drops corrupt
//! envelopes (any bit flip fails the CRC), suppresses duplicates,
//! re-orders buffered out-of-order arrivals, and acknowledges
//! cumulatively on a small reverse channel. The sending side
//! ([`ReliableTx`]) keeps a bounded in-flight window of unacknowledged
//! envelopes and retransmits on NACK or timeout with capped exponential
//! backoff — so the operator pipeline above sees exactly the frame
//! sequence it would see on a perfect link, in order, exactly once.
//!
//! Heartbeats ([`ReliableTx::heartbeat`]) keep a quiet link observably
//! alive; a receiver that sees nothing — not even heartbeats — for its
//! configured patience concludes the peer is dead and reports
//! [`ClusterError::NodeDown`] instead of hanging forever.

use crate::chaos::{ChaosStats, LinkChaos};
use crate::error::{ClusterError, NebulaError, Result};
use crate::wire::{decode_envelope, encode_envelope, ENV_HEARTBEAT, ENV_PAYLOAD};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cumulative acknowledgement (`Ack`: everything up to and including
/// `seq` arrived) or a retransmission request (`Nack`: `seq` is the
/// next envelope the receiver needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AckMsg {
    Ack(u64),
    Nack(u64),
}

/// Nominal wire size of one ack/nack (kind byte + sequence), accounted
/// against the reverse channel.
pub(crate) const ACK_WIRE_BYTES: u64 = 9;

/// Max in-flight (unacknowledged) envelopes before a sender blocks.
pub(crate) const DEFAULT_WINDOW: usize = 32;

/// Timeout-retransmission attempts before a sender declares the link
/// dead (backoff caps at [`BACKOFF_CAP`], so this bounds flush time).
const MAX_RETRANSMIT_ROUNDS: u32 = 2_000;

const BACKOFF_START: Duration = Duration::from_micros(200);
const BACKOFF_CAP: Duration = Duration::from_millis(4);

fn link_down(link: &str) -> NebulaError {
    ClusterError::LinkDown { link: link.into() }.into()
}

/// The sending half of a resilient link. Generic over the actual
/// transmission (`emit` closures), so the cluster's accounting sender
/// and plain test channels both plug in.
pub(crate) struct ReliableTx {
    label: String,
    seq: u64,
    /// Unacked envelopes: seq → (clean encoded envelope, record count).
    in_flight: BTreeMap<u64, (Vec<u8>, u64)>,
    window: usize,
    ack_rx: Receiver<AckMsg>,
    chaos: LinkChaos,
    stats: Arc<ChaosStats>,
}

impl ReliableTx {
    pub fn new(
        label: impl Into<String>,
        ack_rx: Receiver<AckMsg>,
        chaos: LinkChaos,
        stats: Arc<ChaosStats>,
    ) -> Self {
        ReliableTx {
            label: label.into(),
            seq: 0,
            in_flight: BTreeMap::new(),
            window: DEFAULT_WINDOW,
            ack_rx,
            chaos,
            stats,
        }
    }

    /// Wraps `payload` in a sequenced, checksummed envelope and
    /// transmits it through the chaos layer, blocking (and
    /// retransmitting with backoff) while the in-flight window is full.
    pub fn send<F>(&mut self, payload: &[u8], records: u64, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        self.drain_acks(emit)?;
        self.wait_below_window(emit)?;
        let seq = self.seq;
        self.seq += 1;
        let env = encode_envelope(ENV_PAYLOAD, seq, payload);
        self.in_flight.insert(seq, (env.clone(), records));
        for t in self.chaos.transmit(env) {
            emit(t, records)?;
        }
        Ok(())
    }

    /// Sends an unsequenced liveness beacon (not retransmitted, not
    /// acknowledged — the next one supersedes it).
    pub fn heartbeat<F>(&mut self, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        self.stats.heartbeats.fetch_add(1, atomic_relaxed());
        let env = encode_envelope(ENV_HEARTBEAT, self.seq, &[]);
        for t in self.chaos.transmit(env) {
            emit(t, 0)?;
        }
        Ok(())
    }

    /// Blocks until every sent envelope is acknowledged — the link-level
    /// end-of-stream guarantee. Releases any frame the chaos layer is
    /// still holding for reordering first, then retransmits with capped
    /// backoff until the window drains or the link is declared dead.
    pub fn flush<F>(&mut self, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        if let Some(held) = self.chaos.release() {
            emit(held, 0)?;
        }
        let mut backoff = BACKOFF_START;
        let mut rounds = 0u32;
        while !self.in_flight.is_empty() {
            match self.ack_rx.recv_timeout(backoff) {
                Ok(msg) => self.on_ack(msg, emit)?,
                Err(RecvTimeoutError::Timeout) => {
                    rounds += 1;
                    if rounds > MAX_RETRANSMIT_ROUNDS {
                        return Err(link_down(&self.label));
                    }
                    self.retransmit_oldest(emit)?;
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
                Err(RecvTimeoutError::Disconnected) => return Err(link_down(&self.label)),
            }
        }
        Ok(())
    }

    /// Envelopes currently awaiting acknowledgement.
    #[cfg(test)]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Folds this link's injected-fault counters into the shared stats
    /// (call once, when the link closes).
    pub fn merge_chaos_counters(&self) {
        let c = &self.chaos;
        self.stats
            .injected_drops
            .fetch_add(c.drops, atomic_relaxed());
        self.stats.injected_dups.fetch_add(c.dups, atomic_relaxed());
        self.stats
            .injected_corruptions
            .fetch_add(c.corruptions, atomic_relaxed());
        self.stats
            .injected_reorders
            .fetch_add(c.reorders, atomic_relaxed());
    }

    fn drain_acks<F>(&mut self, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        while let Ok(msg) = self.ack_rx.try_recv() {
            self.on_ack(msg, emit)?;
        }
        Ok(())
    }

    fn wait_below_window<F>(&mut self, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        let mut backoff = BACKOFF_START;
        let mut rounds = 0u32;
        while self.in_flight.len() >= self.window {
            match self.ack_rx.recv_timeout(backoff) {
                Ok(msg) => self.on_ack(msg, emit)?,
                Err(RecvTimeoutError::Timeout) => {
                    rounds += 1;
                    if rounds > MAX_RETRANSMIT_ROUNDS {
                        return Err(link_down(&self.label));
                    }
                    self.retransmit_oldest(emit)?;
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
                Err(RecvTimeoutError::Disconnected) => return Err(link_down(&self.label)),
            }
        }
        Ok(())
    }

    fn on_ack<F>(&mut self, msg: AckMsg, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        match msg {
            AckMsg::Ack(upto) => {
                let keep = self.in_flight.split_off(&(upto + 1));
                self.in_flight = keep;
            }
            AckMsg::Nack(seq) => {
                if let Some((env, records)) = self.in_flight.get(&seq) {
                    let (env, records) = (env.clone(), *records);
                    self.stats.retransmits.fetch_add(1, atomic_relaxed());
                    for t in self.chaos.transmit(env) {
                        emit(t, records)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn retransmit_oldest<F>(&mut self, emit: &mut F) -> Result<()>
    where
        F: FnMut(Vec<u8>, u64) -> Result<()>,
    {
        if let Some((_, (env, records))) = self.in_flight.iter().next() {
            let (env, records) = (env.clone(), *records);
            self.stats.retransmits.fetch_add(1, atomic_relaxed());
            for t in self.chaos.transmit(env) {
                emit(t, records)?;
            }
        }
        Ok(())
    }
}

fn atomic_relaxed() -> std::sync::atomic::Ordering {
    std::sync::atomic::Ordering::Relaxed
}

/// What one received transmission amounted to.
pub(crate) enum RxEvent {
    /// The next in-order payload.
    Payload(Vec<u8>),
    /// Bookkeeping only (heartbeat, duplicate, corrupt, buffered
    /// out-of-order) — poll [`ReliableRx::next_buffered`] and receive on.
    Control,
}

/// The receiving half of a resilient link: CRC verification,
/// deduplication, in-order reassembly, cumulative acks.
pub(crate) struct ReliableRx {
    expected: u64,
    buffered: BTreeMap<u64, Vec<u8>>,
    ack_tx: Sender<AckMsg>,
    stats: Arc<ChaosStats>,
    last_heard: Instant,
}

impl ReliableRx {
    pub fn new(ack_tx: Sender<AckMsg>, stats: Arc<ChaosStats>) -> Self {
        ReliableRx {
            expected: 0,
            buffered: BTreeMap::new(),
            ack_tx,
            stats,
            last_heard: Instant::now(),
        }
    }

    /// Classifies one raw transmission. Corruption and duplication are
    /// absorbed here (with a NACK / re-ACK on the reverse channel);
    /// only the next in-order payload surfaces.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> RxEvent {
        self.last_heard = Instant::now();
        let env = match decode_envelope(bytes) {
            Ok(env) => env,
            Err(_) => {
                self.stats.corrupt_dropped.fetch_add(1, atomic_relaxed());
                self.send_ctl(AckMsg::Nack(self.expected));
                return RxEvent::Control;
            }
        };
        if env.kind != ENV_PAYLOAD {
            // Heartbeat (or stray control): liveness already refreshed.
            return RxEvent::Control;
        }
        match env.seq.cmp(&self.expected) {
            std::cmp::Ordering::Less => {
                self.stats
                    .duplicates_suppressed
                    .fetch_add(1, atomic_relaxed());
                // Re-ack: the original ack may have been lost.
                self.send_ctl(AckMsg::Ack(self.expected - 1));
                RxEvent::Control
            }
            std::cmp::Ordering::Equal => {
                self.expected += 1;
                self.send_ctl(AckMsg::Ack(env.seq));
                RxEvent::Payload(env.payload)
            }
            std::cmp::Ordering::Greater => {
                if self.buffered.insert(env.seq, env.payload).is_some() {
                    self.stats
                        .duplicates_suppressed
                        .fetch_add(1, atomic_relaxed());
                }
                self.send_ctl(AckMsg::Nack(self.expected));
                RxEvent::Control
            }
        }
    }

    /// Pops the next in-order payload the out-of-order buffer already
    /// holds, if any (drain fully after each delivered payload).
    pub fn next_buffered(&mut self) -> Option<Vec<u8>> {
        let payload = self.buffered.remove(&self.expected)?;
        self.send_ctl(AckMsg::Ack(self.expected));
        self.expected += 1;
        Some(payload)
    }

    /// How long since anything (including heartbeats) arrived.
    pub fn silence(&self) -> Duration {
        self.last_heard.elapsed()
    }

    /// Declares the peer dead after `patience` of silence.
    pub fn check_liveness(&self, link: &str, patience: Duration) -> Result<()> {
        if self.silence() > patience {
            Err(ClusterError::NodeDown {
                node: format!("silent peer on link {link}"),
            }
            .into())
        } else {
            Ok(())
        }
    }

    fn send_ctl(&self, msg: AckMsg) {
        // Acks are cumulative and nacks are re-issued on the next gap:
        // a full reverse channel can safely drop either.
        if self.ack_tx.try_send(msg).is_ok() {
            self.stats
                .ack_bytes
                .fetch_add(ACK_WIRE_BYTES, atomic_relaxed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use crate::wire::{crc32, ENVELOPE_OVERHEAD};
    use crossbeam::channel::bounded;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Drives `n` payloads through a chaos-lossy loopback link and
    /// asserts exactly-once, in-order delivery. Single-threaded, so the
    /// flush is driven as explicit retransmission rounds interleaved
    /// with receiver drains (a blocking [`ReliableTx::flush`] would
    /// starve its own receiver here).
    fn loopback(plan: &FaultPlan, n: u32) -> (Vec<Vec<u8>>, Arc<ChaosStats>) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let stats = Arc::new(ChaosStats::default());
        let (ack_tx, ack_rx) = bounded::<AckMsg>(4096);
        let mut tx = ReliableTx::new(
            "test-link",
            ack_rx,
            LinkChaos::new(plan, 7),
            Arc::clone(&stats),
        );
        let mut rx = ReliableRx::new(ack_tx, Arc::clone(&stats));
        let wire: Rc<RefCell<VecDeque<Vec<u8>>>> = Rc::new(RefCell::new(VecDeque::new()));
        let mut delivered: Vec<Vec<u8>> = Vec::new();

        let w = Rc::clone(&wire);
        let mut emit = move |bytes: Vec<u8>, _records: u64| -> Result<()> {
            w.borrow_mut().push_back(bytes);
            Ok(())
        };

        let pump_rx = |rx: &mut ReliableRx, delivered: &mut Vec<Vec<u8>>| loop {
            let Some(bytes) = wire.borrow_mut().pop_front() else {
                break;
            };
            if let RxEvent::Payload(p) = rx.on_bytes(&bytes) {
                delivered.push(p);
            }
            while let Some(p) = rx.next_buffered() {
                delivered.push(p);
            }
        };

        for i in 0..n {
            tx.send(&i.to_le_bytes(), 1, &mut emit).unwrap();
            pump_rx(&mut rx, &mut delivered);
        }
        if let Some(held) = tx.chaos.release() {
            emit(held, 0).unwrap();
            pump_rx(&mut rx, &mut delivered);
        }
        for _ in 0..10_000 {
            tx.drain_acks(&mut emit).unwrap();
            pump_rx(&mut rx, &mut delivered);
            if tx.in_flight() == 0 {
                break;
            }
            tx.retransmit_oldest(&mut emit).unwrap();
            pump_rx(&mut rx, &mut delivered);
        }
        assert_eq!(tx.in_flight(), 0, "window drained");
        tx.merge_chaos_counters();
        (delivered, stats)
    }

    #[test]
    fn perfect_link_delivers_in_order() {
        let (got, _) = loopback(&FaultPlan::seeded(1), 100);
        assert_eq!(got.len(), 100);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p, &(i as u32).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn lossy_link_still_delivers_exactly_once_in_order() {
        let plan = FaultPlan::seeded(42)
            .drop_frames(0.15)
            .duplicate_frames(0.1)
            .reorder_frames(0.1)
            .corrupt_frames(0.05);
        let (got, stats) = loopback(&plan, 300);
        assert_eq!(got.len(), 300, "exactly once despite chaos");
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p, &(i as u32).to_le_bytes().to_vec(), "in order");
        }
        let o = atomic_relaxed();
        assert!(stats.retransmits.load(o) > 0, "drops forced retransmits");
        assert!(stats.corrupt_dropped.load(o) > 0, "corruption detected");
        assert!(stats.duplicates_suppressed.load(o) > 0, "dups suppressed");
    }

    #[test]
    fn corrupt_envelope_is_dropped_and_nacked() {
        let stats = Arc::new(ChaosStats::default());
        let (ack_tx, ack_rx) = bounded::<AckMsg>(8);
        let mut rx = ReliableRx::new(ack_tx, Arc::clone(&stats));
        let mut env = encode_envelope(ENV_PAYLOAD, 0, b"hello");
        env[ENVELOPE_OVERHEAD] ^= 0x40;
        assert!(matches!(rx.on_bytes(&env), RxEvent::Control));
        assert_eq!(stats.corrupt_dropped.load(atomic_relaxed()), 1);
        assert_eq!(ack_rx.try_recv(), Ok(AckMsg::Nack(0)));
        // The clean envelope then goes through.
        let clean = encode_envelope(ENV_PAYLOAD, 0, b"hello");
        assert!(crc32(b"x") != 0, "crc sanity");
        match rx.on_bytes(&clean) {
            RxEvent::Payload(p) => assert_eq!(p, b"hello"),
            RxEvent::Control => panic!("clean envelope must deliver"),
        }
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let stats = Arc::new(ChaosStats::default());
        let (ack_tx, ack_rx) = bounded::<AckMsg>(8);
        let mut rx = ReliableRx::new(ack_tx, Arc::clone(&stats));
        let env = encode_envelope(ENV_PAYLOAD, 0, b"once");
        assert!(matches!(rx.on_bytes(&env), RxEvent::Payload(_)));
        assert!(matches!(rx.on_bytes(&env), RxEvent::Control), "dup eaten");
        assert_eq!(stats.duplicates_suppressed.load(atomic_relaxed()), 1);
        assert_eq!(ack_rx.try_recv(), Ok(AckMsg::Ack(0)));
        assert_eq!(ack_rx.try_recv(), Ok(AckMsg::Ack(0)), "dup re-acked");
    }

    #[test]
    fn silent_peer_is_declared_dead() {
        let stats = Arc::new(ChaosStats::default());
        let (ack_tx, _ack_rx) = bounded::<AckMsg>(8);
        let rx = ReliableRx::new(ack_tx, stats);
        std::thread::sleep(Duration::from_millis(20));
        let err = rx
            .check_liveness("edge→cloud", Duration::from_millis(5))
            .unwrap_err();
        assert!(err.to_string().contains("is down"), "{err}");
        assert!(rx
            .check_liveness("edge→cloud", Duration::from_secs(60))
            .is_ok());
    }

    #[test]
    fn heartbeats_keep_a_quiet_link_alive() {
        let stats = Arc::new(ChaosStats::default());
        let (ack_tx, ack_rx) = bounded::<AckMsg>(8);
        let mut tx = ReliableTx::new(
            "hb",
            ack_rx,
            LinkChaos::new(&FaultPlan::seeded(0), 0),
            Arc::clone(&stats),
        );
        let mut rx = ReliableRx::new(ack_tx, Arc::clone(&stats));
        std::thread::sleep(Duration::from_millis(10));
        let mut last = Vec::new();
        let mut emit = |bytes: Vec<u8>, _| -> Result<()> {
            last.push(bytes);
            Ok(())
        };
        tx.heartbeat(&mut emit).unwrap();
        for b in last {
            assert!(matches!(rx.on_bytes(&b), RxEvent::Control));
        }
        assert!(
            rx.silence() < Duration::from_millis(5),
            "liveness refreshed"
        );
        assert_eq!(stats.heartbeats.load(atomic_relaxed()), 1);
    }
}
