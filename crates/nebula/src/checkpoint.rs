//! Checkpoint storage for the chaos-hardened cluster runtime.
//!
//! During a chaos run the pump of every pipeline emits a
//! [`crate::wire::Frame::Barrier`] after each `checkpoint_every` source
//! batches. The barrier flows through the pipeline like any other frame
//! (so it cuts the stream at a well-defined point on every link), and
//! each participant deposits its part of the epoch here as the barrier
//! passes: the pump its operator snapshots, replay cursor and counters;
//! each site its operator-chain snapshot; and the cloud — once the
//! barrier has *aligned* across all live pipelines — the shared-tail
//! operators, collected results, and watermark state.
//!
//! An epoch is **complete** when the cloud part is present and every
//! pipeline that was still live at the cloud's cut has contributed its
//! pump and site parts. It is **usable** for restore when, additionally,
//! every contributed operator chain actually snapshotted (an operator
//! without state capture makes its chain `None`, forcing the epoch-0
//! full-replay fallback). Completed epochs prune everything older;
//! recovery consumes the newest usable epoch.

use crate::metrics::{Histogram, QueryMetrics};
use crate::ops::Operator;
use crate::record::RecordBuffer;
use crate::runtime::ProgressTracker;
use crate::value::EventTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// A pump's contribution to an epoch: the source-node operator chain
/// (if snapshottable), the replay cursor, and the ingest counters that
/// drive watermark cadence.
pub(crate) struct PumpPart {
    /// Snapshot of the source-node stages; `None` if any stage cannot
    /// capture state.
    pub ops: Option<Vec<Box<dyn Operator>>>,
    /// Data batches emitted when the barrier was sent (the
    /// [`crate::source::ReplaySource`] rewind target).
    pub batches: u64,
    /// Maximum event time seen (watermark generator state).
    pub max_ts: EventTime,
    /// Ingest-side counters at the cut.
    pub stats: QueryMetrics,
}

/// One site's operator-chain snapshot for an epoch.
pub(crate) struct SitePart {
    /// `None` if any operator in the chain cannot capture state.
    pub ops: Option<Vec<Box<dyn Operator>>>,
}

/// The cloud's contribution: shared-tail operators plus everything
/// [`crate::cluster`] keeps in its cloud state.
pub(crate) struct CloudPart {
    /// Snapshot of the shared-tail chain; `None` if not snapshottable.
    pub ops: Option<Vec<Box<dyn Operator>>>,
    /// Results collected so far.
    pub buffers: Vec<RecordBuffer>,
    /// Per-pipeline progress (frontiers, finished flags, combined
    /// clock) at the cut.
    pub progress: ProgressTracker,
    /// Per-buffer processing latency samples.
    pub latency: Histogram,
}

/// All parts deposited for one epoch.
#[derive(Default)]
pub(crate) struct EpochState {
    pub pumps: HashMap<usize, PumpPart>,
    pub sites: HashMap<(usize, usize), SitePart>,
    pub cloud: Option<CloudPart>,
}

impl EpochState {
    /// Complete: the cloud aligned, and every pipeline live at the cut
    /// contributed its pump part and all `expected_sites` chain parts.
    fn is_complete(&self, expected_sites: &[usize]) -> bool {
        let Some(cloud) = &self.cloud else {
            return false;
        };
        expected_sites.iter().enumerate().all(|(p, n_sites)| {
            cloud.progress.is_done(p as u64)
                || (self.pumps.contains_key(&p)
                    && (0..*n_sites).all(|s| self.sites.contains_key(&(p, s))))
        })
    }

    /// Usable: complete and every contributed chain snapshotted.
    fn is_usable(&self, expected_sites: &[usize]) -> bool {
        self.is_complete(expected_sites)
            && self.cloud.as_ref().is_some_and(|c| c.ops.is_some())
            && self.pumps.values().all(|p| p.ops.is_some())
            && self.sites.values().all(|s| s.ops.is_some())
    }
}

/// Per-pipeline totals deposited when a pipe finishes, so a pipeline
/// that is already done when a crash hits still reports accurate
/// metrics (its live operator state is gone with the threads).
#[derive(Default, Clone)]
pub(crate) struct PipeFinal {
    pub stats: QueryMetrics,
    pub pump_late: u64,
    pub site_late: u64,
}

struct StoreInner {
    epochs: BTreeMap<u64, EpochState>,
    /// Site-chain count per pipeline for the current phase (regrouping
    /// after a migration changes it).
    expected_sites: Vec<usize>,
    finals: Vec<Option<PipeFinal>>,
    taken: u64,
    last_sealed: Option<u64>,
}

/// Thread-shared checkpoint storage for one chaos run.
pub(crate) struct CheckpointStore {
    inner: Mutex<StoreInner>,
}

impl CheckpointStore {
    pub fn new(n_pipes: usize) -> Self {
        CheckpointStore {
            inner: Mutex::new(StoreInner {
                epochs: BTreeMap::new(),
                expected_sites: vec![0; n_pipes],
                finals: vec![None; n_pipes],
                taken: 0,
                last_sealed: None,
            }),
        }
    }

    /// Declares how many site chains each pipeline runs this phase.
    pub fn set_expected_sites(&self, sites: Vec<usize>) {
        self.inner.lock().unwrap().expected_sites = sites;
    }

    pub fn put_pump(&self, epoch: u64, pipe: usize, part: PumpPart) {
        let mut g = self.inner.lock().unwrap();
        g.epochs.entry(epoch).or_default().pumps.insert(pipe, part);
        g.seal(epoch);
    }

    pub fn put_site(&self, epoch: u64, pipe: usize, site: usize, part: SitePart) {
        let mut g = self.inner.lock().unwrap();
        g.epochs
            .entry(epoch)
            .or_default()
            .sites
            .insert((pipe, site), part);
        g.seal(epoch);
    }

    pub fn put_cloud(&self, epoch: u64, part: CloudPart) {
        let mut g = self.inner.lock().unwrap();
        g.epochs.entry(epoch).or_default().cloud = Some(part);
        g.seal(epoch);
    }

    /// Records a pipeline's final ingest stats and pump-stage late
    /// drops (deposited by the pump at its end-of-stream; overwritten
    /// if the pipeline re-runs after recovery).
    pub fn record_pump_final(&self, pipe: usize, stats: QueryMetrics, pump_late: u64) {
        let mut g = self.inner.lock().unwrap();
        let fin = g.finals[pipe].get_or_insert_with(PipeFinal::default);
        fin.stats = stats;
        fin.pump_late = pump_late;
    }

    /// Adds one site chain's final late-drop count for `pipe`
    /// (deposited as each site drains its end-of-stream).
    pub fn add_site_final_late(&self, pipe: usize, late: u64) {
        let mut g = self.inner.lock().unwrap();
        g.finals[pipe]
            .get_or_insert_with(PipeFinal::default)
            .site_late += late;
    }

    pub fn final_for(&self, pipe: usize) -> Option<PipeFinal> {
        self.inner.lock().unwrap().finals[pipe].clone()
    }

    /// Completed checkpoints over the run (sealed epochs).
    pub fn checkpoints_taken(&self) -> u64 {
        self.inner.lock().unwrap().taken
    }

    /// Consumes the newest usable epoch for restore. Clears all stored
    /// epochs either way (phase 2 re-deposits under its own grouping)
    /// and voids the finals of every pipeline not done at the cut, so a
    /// re-run pipeline cannot double-report stale totals.
    pub fn take_for_restore(&self) -> Option<(u64, EpochState)> {
        let mut g = self.inner.lock().unwrap();
        let epoch = g
            .epochs
            .iter()
            .rev()
            .find(|(_, st)| st.is_usable(&g.expected_sites))
            .map(|(e, _)| *e)?;
        let st = g.epochs.remove(&epoch)?;
        g.epochs.clear();
        if let Some(cloud) = &st.cloud {
            for p in 0..g.finals.len() {
                if !cloud.progress.is_done(p as u64) {
                    g.finals[p] = None;
                }
            }
        }
        Some((epoch, st))
    }

    /// Clears every stored epoch and final (epoch-0 fallback: the whole
    /// run restarts from scratch).
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        g.epochs.clear();
        g.last_sealed = None;
        for f in &mut g.finals {
            *f = None;
        }
    }
}

impl StoreInner {
    /// Checks whether `epoch` just became complete; if so, counts it
    /// and prunes every older epoch (recovery only ever wants the
    /// newest complete one). A redundant part deposited into an
    /// already-sealed epoch must not double-count.
    fn seal(&mut self, epoch: u64) {
        let complete = self
            .epochs
            .get(&epoch)
            .is_some_and(|st| st.is_complete(&self.expected_sites));
        if complete && self.last_sealed.is_none_or(|last| epoch > last) {
            let stale: Vec<u64> = self.epochs.range(..epoch).map(|(e, _)| *e).collect();
            for e in stale {
                self.epochs.remove(&e);
            }
            self.taken += 1;
            self.last_sealed = Some(epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump_part(snapshottable: bool) -> PumpPart {
        PumpPart {
            ops: snapshottable.then(Vec::new),
            batches: 4,
            max_ts: 0,
            stats: QueryMetrics::default(),
        }
    }

    fn cloud_part(done: &[bool]) -> CloudPart {
        let mut progress = ProgressTracker::with_origins(done.len() as u64);
        for (p, d) in done.iter().enumerate() {
            if *d {
                progress.finish(p as u64);
            }
        }
        CloudPart {
            ops: Some(Vec::new()),
            buffers: Vec::new(),
            progress,
            latency: Histogram::new(),
        }
    }

    #[test]
    fn epoch_completes_only_with_all_parts() {
        let store = CheckpointStore::new(2);
        store.set_expected_sites(vec![1, 1]);
        store.put_pump(1, 0, pump_part(true));
        store.put_site(1, 0, 0, SitePart { ops: Some(vec![]) });
        store.put_cloud(1, cloud_part(&[false, false]));
        assert!(store.take_for_restore().is_none(), "pipe 1 parts missing");
        store.put_pump(1, 0, pump_part(true));
        store.put_site(1, 0, 0, SitePart { ops: Some(vec![]) });
        store.put_cloud(1, cloud_part(&[false, false]));
        store.put_pump(1, 1, pump_part(true));
        store.put_site(1, 1, 0, SitePart { ops: Some(vec![]) });
        let (epoch, _) = store.take_for_restore().expect("complete now");
        assert_eq!(epoch, 1);
        assert!(store.checkpoints_taken() >= 1);
    }

    #[test]
    fn done_pipes_need_no_parts() {
        let store = CheckpointStore::new(2);
        store.set_expected_sites(vec![1, 1]);
        store.put_pump(3, 0, pump_part(true));
        store.put_site(3, 0, 0, SitePart { ops: Some(vec![]) });
        // Pipe 1 already finished at the cloud's cut.
        store.put_cloud(3, cloud_part(&[false, true]));
        let (epoch, st) = store.take_for_restore().expect("pipe 1 exempt");
        assert_eq!(epoch, 3);
        assert!(st.cloud.unwrap().progress.is_done(1));
    }

    #[test]
    fn unsnapshottable_chain_blocks_restore() {
        let store = CheckpointStore::new(1);
        store.set_expected_sites(vec![0]);
        store.put_pump(1, 0, pump_part(false));
        store.put_cloud(1, cloud_part(&[false]));
        assert!(
            store.take_for_restore().is_none(),
            "complete but not usable: epoch-0 fallback required"
        );
    }

    #[test]
    fn restore_takes_newest_and_voids_live_finals() {
        let store = CheckpointStore::new(2);
        store.set_expected_sites(vec![0, 0]);
        store.record_pump_final(0, QueryMetrics::default(), 0);
        store.record_pump_final(1, QueryMetrics::default(), 2);
        store.add_site_final_late(1, 3);
        for epoch in 1..=3 {
            store.put_pump(epoch, 0, pump_part(true));
            store.put_pump(epoch, 1, pump_part(true));
            store.put_cloud(epoch, cloud_part(&[false, true]));
        }
        let (epoch, _) = store.take_for_restore().expect("usable");
        assert_eq!(epoch, 3, "newest usable epoch wins");
        assert!(
            store.final_for(0).is_none(),
            "live pipe re-runs: its stale final is void"
        );
        let kept = store
            .final_for(1)
            .expect("done pipe keeps its final totals");
        assert_eq!(kept.pump_late + kept.site_late, 5);
        assert!(store.take_for_restore().is_none(), "store drained");
    }
}
