//! # nebula — a NebulaStream-style IoT stream processing engine
//!
//! A from-scratch Rust reimplementation of the architectural skeleton of
//! [NebulaStream] that the SIGMOD 2025 NebulaMEOS demonstration builds
//! on:
//!
//! - **Buffer-batched push pipelines** — operators exchange
//!   [`record::RecordBuffer`]s (the TupleBuffer analogue), not single
//!   records ([`record`], [`runtime`]).
//! - **An expression framework with runtime function registration** —
//!   the plugin mechanism that lets extensions such as MEOS surface new
//!   operations inside queries without engine changes ([`expr`]).
//! - **Event-time windowing by stream slicing** — tumbling, sliding and
//!   NebulaStream's *threshold* windows, closed by watermarks under
//!   bounded out-of-orderness; overlapping sliding windows share
//!   `gcd(size, slide)`-wide slice aggregates, so per-record cost stays
//!   O(1) however large the overlap ([`window`], [`ops`]).
//! - **Complex event processing** — keyed sequence patterns with a time
//!   bound ([`ops::Pattern`]).
//! - **A declarative query builder** compiled into physical operator
//!   chains ([`query`]).
//! - **Topology-aware operator placement** — sensor/edge/cloud tiers,
//!   link cost accounting, edge-first vs cloud-only strategies, and
//!   re-placement under node churn ([`topology`]).
//! - **A distributed cluster runtime** — placed plans actually execute
//!   across topology nodes: per-node site threads joined by bounded
//!   channels carrying a byte-accounted wire format, cross-boundary
//!   watermark propagation, edge pre-aggregation of splittable window
//!   aggregates, and pause-and-migrate failure re-planning ([`cluster`],
//!   [`wire`], [`preagg`]).
//! - **Per-origin punctuated progress tracking** — every buffer is
//!   stamped with its origin, sequence number and watermark
//!   punctuation; [`runtime::ProgressTracker`] folds the stamps into a
//!   gap-aware per-origin frontier (min across live origins, monotone)
//!   that drives window close and late-record decisions identically in
//!   every mode — including the work-stealing partitioned executor,
//!   whose out-of-order task completions are re-serialized in frontier
//!   order with no post-hoc sort ([`buffer`], [`runtime`]).
//! - **Runtime telemetry** — per-operator metrics (records, buffers,
//!   selectivity, service-time histograms, state size), periodic
//!   sampling of throughput/queue depth/frontier lag into a bounded
//!   time series, a bounded trace-event ring (deploys, checkpoints,
//!   failures, replans, late-drop bursts, backpressure stalls), and a
//!   JSON-exportable [`telemetry::QueryReport`] — collected uniformly
//!   across all four execution modes, with cluster nodes shipping
//!   per-node snapshots over the wire ([`telemetry`]).
//! - **Pre-flight static query analysis** — every run entry point first
//!   passes the plan through a multi-pass analyzer: typed schema
//!   inference over the whole operator chain, watermark-safety checks,
//!   and partitioning/placement capability analysis. Findings carry
//!   stable `E0xx`/`W0xx` codes and operator paths; errors reject the
//!   plan before any thread spawns, warnings land in the
//!   [`telemetry::QueryReport`] ([`analysis`]).
//! - **Chaos-hardened fault tolerance** — seeded fault injection over
//!   every cluster link (drops, duplicates, reordering, corruption,
//!   flaps, abrupt crashes), a resilient wire protocol (CRC32 envelopes,
//!   sequence numbers, ack/retransmit, heartbeats), and barrier-based
//!   checkpointing with source replay for exactly-once crash recovery
//!   ([`chaos`], [`checkpoint`], [`cluster`]).
//!
//! [NebulaStream]: https://nebula.stream
//!
//! ## Quick example
//!
//! ```
//! use nebula::prelude::*;
//!
//! // A source of (ts, train, speed) records.
//! let schema = Schema::of(&[
//!     ("ts", DataType::Timestamp),
//!     ("train", DataType::Int),
//!     ("speed", DataType::Float),
//! ]);
//! let records: Vec<Record> = (0..100)
//!     .map(|i| Record::new(vec![
//!         Value::Timestamp(i * 1_000_000),
//!         Value::Int(i % 3),
//!         Value::Float((i % 60) as f64),
//!     ]))
//!     .collect();
//!
//! let mut env = StreamEnvironment::new();
//! env.add_source(
//!     "trains",
//!     Box::new(VecSource::new(schema, records)),
//!     WatermarkStrategy::None,
//! );
//!
//! let query = Query::from("trains").filter(col("speed").gt(lit(50.0)));
//! let (mut sink, results) = CollectingSink::new();
//! let metrics = env.run(&query, &mut sink).unwrap();
//! assert_eq!(metrics.records_in, 100);
//! assert_eq!(results.len(), 9); // speeds 51..=59
//! ```

pub mod analysis;
pub mod buffer;
pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod error;
pub mod expr;
pub mod metrics;
pub mod ops;
pub mod preagg;
pub mod query;
pub mod record;
pub(crate) mod reliable;
pub mod runtime;
pub mod schema;
pub mod sink;
pub mod source;
pub mod telemetry;
pub mod topology;
pub mod value;
pub mod window;
pub mod wire;

pub use error::{NebulaError, Result};

/// The types needed by almost every engine user.
pub mod prelude {
    pub use crate::analysis::{
        analyze, AnalysisContext, AnalysisError, AnalysisOptions, AnalysisReport,
        CapabilityRegistry, Code, Diagnostic, LintLevel, Severity, Target,
    };
    pub use crate::buffer::{BufferMeta, Column, ColumnBuilder, TupleBuffer};
    pub use crate::chaos::{CrashFault, FaultPlan, LinkFlap};
    pub use crate::cluster::{
        ClusterConfig, ClusterEnvironment, ClusterMetrics, ClusterReport, FailureInjection,
        LinkMetrics,
    };
    pub use crate::error::{ClusterError, NebulaError, Result};
    pub use crate::expr::{
        call, col, lit, BoundExpr, ClosureFunction, Expr, FunctionRegistry, Plugin, ScalarFunction,
    };
    pub use crate::metrics::{Histogram, QueryMetrics};
    pub use crate::ops::{
        record_sort_key, CepOp, FilterOp, FlatMapOp, GroupKey, MapOp, Operator, OperatorFactory,
        Pattern, PatternStep, WindowOp,
    };
    pub use crate::preagg::{split_window, SplitWindow, WindowMergeOp, WindowPartialOp};
    pub use crate::query::{compile, LogicalOp, PartitionScheme, Query};
    pub use crate::record::{Record, RecordBuffer, StreamMessage};
    pub use crate::runtime::{ColumnarMode, EnvConfig, ProgressTracker, StreamEnvironment};
    pub use crate::schema::{Field, Schema, SchemaRef};
    pub use crate::sink::{
        merge_partitions, normalize_records, BufferSink, CallbackSink, Collected, CollectingSink,
        CountingSink, CsvSink, NullSink, Sink, SinkCounters,
    };
    pub use crate::source::{
        CsvSource, GapSource, GeneratorSource, JitterSource, ReplaySource, Source, SourceBatch,
        VecSource, WatermarkStrategy, XorShift,
    };
    pub use crate::telemetry::{
        NodeSnapshot, OperatorReport, QueryReport, TelemetryConfig, TelemetrySample, TraceEvent,
        TraceKind,
    };
    pub use crate::topology::{
        measure_stage_bytes, network_cost, place, replace_after_failure, NetworkCost, Node, NodeId,
        NodeKind, Placement, PlacementStrategy, StageBytes, Topology,
    };
    pub use crate::value::{DataType, DurationUs, EventTime, OpaqueValue, Value, MICROS_PER_SEC};
    pub use crate::window::{
        AggSpec, Aggregator, AggregatorFactory, SliceLayout, WindowAgg, WindowSpec,
    };
    pub use crate::wire::{
        crc32, decode_envelope, decode_frame, encode_envelope, encode_frame, Envelope, Frame,
        OpaqueWireCodec, WireRegistry, ENVELOPE_OVERHEAD,
    };
}
