//! Topology modelling and operator placement.
//!
//! NebulaStream runs queries over a hierarchy of sensor, edge and cloud
//! nodes, pushing operators toward the data sources to cut egress. This
//! module models that: a tree topology with link costs, placement
//! strategies (edge-first vs. cloud-only), a per-stage byte measurement
//! harness, and network-cost evaluation — the quantities behind the
//! paper's "process at the edge, reduce reliance on connectivity" claim.
//! Node churn is handled by incremental re-placement (cf. Chaudhary et
//! al., ICDE 2025).

use crate::error::{NebulaError, Result};
use crate::expr::FunctionRegistry;
use crate::query::{compile, LogicalOp, Query};
use crate::record::{RecordBuffer, StreamMessage};
use crate::source::{Source, SourceBatch};
use std::collections::HashMap;

/// A node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Node tiers, ordered from data source to data centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A sensor/device producing data (train sensor bus).
    Sensor,
    /// An onboard/trackside edge processor (the paper's Intel Atom box).
    Edge,
    /// The cloud/coordinator tier.
    Cloud,
}

/// A compute node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// Tier.
    pub kind: NodeKind,
    /// Parallel operator slots (capacity model).
    pub cpu_slots: u32,
}

/// A directed link from a child node up toward the cloud.
#[derive(Debug, Clone)]
pub struct Link {
    /// Lower (child) endpoint.
    pub from: NodeId,
    /// Upper (parent) endpoint.
    pub to: NodeId,
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

/// A tree topology rooted at a cloud node.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    parent: HashMap<NodeId, usize>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind, cpu_slots: u32) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name: name.into(),
            kind,
            cpu_slots,
        });
        id
    }

    /// Connects `child` upward to `parent`.
    pub fn connect(&mut self, child: NodeId, parent: NodeId, bandwidth_mbps: f64, latency_ms: f64) {
        let idx = self.links.len();
        self.links.push(Link {
            from: child,
            to: parent,
            bandwidth_mbps,
            latency_ms,
        });
        self.parent.insert(child, idx);
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The cloud root (first cloud node).
    pub fn cloud(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.kind == NodeKind::Cloud)
            .map(|n| n.id)
    }

    /// Link indices on the upward path `from → to` (`to` must be an
    /// ancestor).
    pub fn path_up(&self, from: NodeId, to: NodeId) -> Result<Vec<usize>> {
        let mut path = Vec::new();
        let mut cur = from;
        while cur != to {
            let idx = *self.parent.get(&cur).ok_or_else(|| {
                NebulaError::Plan(format!(
                    "no path from {} to {}",
                    self.node(from).name,
                    self.node(to).name
                ))
            })?;
            path.push(idx);
            cur = self.links[idx].to;
        }
        Ok(path)
    }

    /// First ancestor (inclusive) of `from` with the given kind.
    pub fn first_ancestor_of_kind(&self, from: NodeId, kind: NodeKind) -> Option<NodeId> {
        let mut cur = from;
        loop {
            if self.node(cur).kind == kind {
                return Some(cur);
            }
            match self.parent.get(&cur) {
                Some(idx) => cur = self.links[*idx].to,
                None => return None,
            }
        }
    }

    /// Removes a node (simulating churn): its children re-attach to its
    /// parent. Returns false when the node had no parent (cannot remove
    /// the root this way).
    pub fn fail_node(&mut self, failed: NodeId) -> bool {
        let Some(&up_idx) = self.parent.get(&failed) else {
            return false;
        };
        let new_parent = self.links[up_idx].to;
        let (bw, lat) = (
            self.links[up_idx].bandwidth_mbps,
            self.links[up_idx].latency_ms,
        );
        // Re-attach children.
        let child_links: Vec<usize> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.to == failed)
            .map(|(i, _)| i)
            .collect();
        for idx in child_links {
            self.links[idx].to = new_parent;
            // Serial hop removed: combine costs pessimistically.
            self.links[idx].bandwidth_mbps = self.links[idx].bandwidth_mbps.min(bw);
            self.links[idx].latency_ms += lat;
        }
        self.parent.remove(&failed);
        true
    }

    /// The standard demo deployment: sensors → onboard edge → cloud.
    pub fn train_fleet(num_trains: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let cloud = t.add_node("cloud", NodeKind::Cloud, 64);
        let mut sensors = Vec::with_capacity(num_trains);
        for i in 0..num_trains {
            let edge = t.add_node(format!("train-{i}-edge"), NodeKind::Edge, 2);
            let sensor = t.add_node(format!("train-{i}-sensors"), NodeKind::Sensor, 1);
            t.connect(edge, cloud, 10.0, 40.0); // cellular uplink
            t.connect(sensor, edge, 100.0, 1.0); // onboard bus
            sensors.push(sensor);
        }
        (t, sensors)
    }
}

/// Where each pipeline stage runs. Stage 0 is the source; stage `i + 1`
/// is logical operator `i`; the final stage is the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Node per stage (source, ops…, sink).
    pub stages: Vec<NodeId>,
}

/// Placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Push stateless operators onto the source node and stateful ones to
    /// the nearest edge; sink in the cloud. The NebulaMEOS deployment.
    EdgeFirst,
    /// Ship raw data to the cloud and run everything there. The baseline
    /// the paper argues against.
    CloudOnly,
}

/// Computes a placement for `query` with its source on `source_node`.
pub fn place(
    query: &Query,
    topo: &Topology,
    source_node: NodeId,
    strategy: PlacementStrategy,
) -> Result<Placement> {
    let cloud = topo
        .cloud()
        .ok_or_else(|| NebulaError::Plan("topology has no cloud node".into()))?;
    let mut stages = Vec::with_capacity(query.ops().len() + 2);
    stages.push(source_node);
    match strategy {
        PlacementStrategy::CloudOnly => {
            for _ in query.ops() {
                stages.push(cloud);
            }
        }
        PlacementStrategy::EdgeFirst => {
            let edge = topo
                .first_ancestor_of_kind(source_node, NodeKind::Edge)
                .unwrap_or(cloud);
            // Once a stage moves up a tier, later stages never move back
            // down (data flows toward the cloud).
            let mut current = source_node;
            for op in query.ops() {
                let want = match op {
                    LogicalOp::Filter(_) | LogicalOp::Map { .. } => current,
                    LogicalOp::Window { .. } | LogicalOp::Cep(_) | LogicalOp::Custom(_) => edge,
                };
                // Never place below the current stage's node.
                current = if topo.path_up(current, want).is_ok() {
                    current // want is an ancestor check failed direction
                } else {
                    want
                };
                // Simpler monotone rule: stateless stays, stateful goes to
                // the edge (or stays at the edge if already there).
                if !matches!(op, LogicalOp::Filter(_) | LogicalOp::Map { .. }) {
                    current = edge;
                }
                stages.push(current);
            }
        }
    }
    stages.push(cloud);
    Ok(Placement { stages })
}

/// Bytes observed leaving each pipeline stage (stage 0 = raw source).
#[derive(Debug, Clone)]
pub struct StageBytes {
    /// `stage_bytes[0]` is source bytes; `stage_bytes[i+1]` is bytes
    /// emitted by logical operator `i`.
    pub stage_bytes: Vec<u64>,
    /// Records per stage, same indexing.
    pub stage_records: Vec<u64>,
}

/// Runs the query over `source` once, measuring bytes/records crossing
/// every operator boundary — the input to network-cost evaluation.
pub fn measure_stage_bytes(
    mut source: Box<dyn Source>,
    query: &Query,
    registry: &FunctionRegistry,
    buffer_size: usize,
) -> Result<StageBytes> {
    let schema = source.schema();
    let plan = compile(query, schema.clone(), registry)?;
    let mut ops = plan.operators;
    let n = ops.len();
    let mut bytes = vec![0u64; n + 1];
    let mut records = vec![0u64; n + 1];

    let push = |ops: &mut [Box<dyn crate::ops::Operator>],
                first: StreamMessage,
                bytes: &mut [u64],
                records: &mut [u64]|
     -> Result<()> {
        let mut cur = vec![first];
        let mut next: Vec<StreamMessage> = Vec::new();
        for (i, op) in ops.iter_mut().enumerate() {
            for msg in cur.drain(..) {
                match msg {
                    StreamMessage::Data(b) => op.process(b, &mut next)?,
                    StreamMessage::Columnar(b) => op.process_columnar(b, &mut next)?,
                    StreamMessage::Watermark(w) => op.on_watermark(w, &mut next)?,
                    StreamMessage::Eos => op.on_eos(&mut next)?,
                }
            }
            for m in &next {
                bytes[i + 1] += m.data_bytes() as u64;
                records[i + 1] += m.record_count() as u64;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(())
    };

    loop {
        match source.poll(buffer_size)? {
            SourceBatch::Data(recs) => {
                let buf = RecordBuffer::new(schema.clone(), recs);
                bytes[0] += buf.est_bytes() as u64;
                records[0] += buf.len() as u64;
                push(&mut ops, StreamMessage::Data(buf), &mut bytes, &mut records)?;
            }
            SourceBatch::Idle => {}
            SourceBatch::Exhausted => break,
        }
    }
    push(&mut ops, StreamMessage::Eos, &mut bytes, &mut records)?;
    Ok(StageBytes {
        stage_bytes: bytes,
        stage_records: records,
    })
}

/// Network cost of running a placement: bytes crossing each link and the
/// end-to-end path latency.
#[derive(Debug, Clone)]
pub struct NetworkCost {
    /// Bytes per link index.
    pub bytes_per_link: Vec<u64>,
    /// Total bytes crossing any link.
    pub total_bytes: u64,
    /// Sum of one-way latencies along the stage path.
    pub path_latency_ms: f64,
    /// Bytes leaving the *edge tier* toward the cloud (the paper's
    /// scarce resource: the cellular uplink).
    pub cloud_uplink_bytes: u64,
}

/// Combines measured stage bytes with a placement over a topology.
pub fn network_cost(
    topo: &Topology,
    placement: &Placement,
    stages: &StageBytes,
) -> Result<NetworkCost> {
    if placement.stages.len() != stages.stage_bytes.len() + 1 {
        return Err(NebulaError::Plan(format!(
            "placement has {} stages, measurements {}",
            placement.stages.len(),
            stages.stage_bytes.len() + 1
        )));
    }
    let mut bytes_per_link = vec![0u64; topo.links().len()];
    let mut path_latency_ms = 0.0;
    let mut cloud_uplink = 0u64;
    for (i, w) in placement.stages.windows(2).enumerate() {
        let (from, to) = (w[0], w[1]);
        if from == to {
            continue;
        }
        let b = stages.stage_bytes[i];
        for idx in topo.path_up(from, to)? {
            bytes_per_link[idx] += b;
            path_latency_ms += topo.links()[idx].latency_ms;
            if topo.node(topo.links()[idx].to).kind == NodeKind::Cloud {
                cloud_uplink += b;
            }
        }
    }
    Ok(NetworkCost {
        total_bytes: bytes_per_link.iter().sum(),
        bytes_per_link,
        path_latency_ms,
        cloud_uplink_bytes: cloud_uplink,
    })
}

/// Re-places a query after a node failure: every stage assigned to the
/// failed node migrates to that node's former parent. Returns the new
/// placement and the number of migrated stages (the metric incremental
/// placement minimizes).
pub fn replace_after_failure(
    topo: &Topology,
    placement: &Placement,
    failed: NodeId,
    fallback: NodeId,
) -> (Placement, usize) {
    let mut migrated = 0;
    let stages = placement
        .stages
        .iter()
        .map(|&n| {
            if n == failed {
                migrated += 1;
                fallback
            } else {
                n
            }
        })
        .collect();
    let _ = topo;
    (Placement { stages }, migrated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::record::Record;
    use crate::schema::Schema;
    use crate::source::VecSource;
    use crate::value::{DataType, Value, MICROS_PER_SEC};
    use crate::window::{AggSpec, WindowAgg, WindowSpec};

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn records(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(vec![
                    Value::Timestamp(i * MICROS_PER_SEC),
                    Value::Int(i % 3),
                    Value::Float((i % 100) as f64),
                ])
            })
            .collect()
    }

    fn demo_query() -> Query {
        Query::from("trains")
            .filter(col("speed").gt(lit(90.0))) // selective
            .window(
                vec![("train", col("train"))],
                WindowSpec::Tumbling {
                    size: 60 * MICROS_PER_SEC,
                },
                vec![WindowAgg::new("n", AggSpec::Count)],
            )
    }

    #[test]
    fn fleet_topology_structure() {
        let (topo, sensors) = Topology::train_fleet(6);
        assert_eq!(sensors.len(), 6);
        assert_eq!(topo.nodes().len(), 13);
        let cloud = topo.cloud().unwrap();
        for s in &sensors {
            let path = topo.path_up(*s, cloud).unwrap();
            assert_eq!(path.len(), 2, "sensor -> edge -> cloud");
        }
        let edge = topo
            .first_ancestor_of_kind(sensors[0], NodeKind::Edge)
            .unwrap();
        assert_eq!(topo.node(edge).kind, NodeKind::Edge);
    }

    #[test]
    fn edge_first_vs_cloud_only_placement() {
        let (topo, sensors) = Topology::train_fleet(1);
        let q = demo_query();
        let edge = place(&q, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
        let cloud = place(&q, &topo, sensors[0], PlacementStrategy::CloudOnly).unwrap();
        assert_eq!(edge.stages.len(), 4); // source, filter, window, sink
                                          // Filter stays on the sensor; window moves to the edge.
        assert_eq!(edge.stages[1], sensors[0]);
        assert_eq!(topo.node(edge.stages[2]).kind, NodeKind::Edge);
        assert_eq!(topo.node(edge.stages[3]).kind, NodeKind::Cloud);
        // Cloud-only runs ops in the cloud.
        assert_eq!(topo.node(cloud.stages[1]).kind, NodeKind::Cloud);
    }

    #[test]
    fn stage_bytes_decrease_after_selective_filter() {
        let reg = FunctionRegistry::with_builtins();
        let src = Box::new(VecSource::new(schema(), records(1000)));
        let sb = measure_stage_bytes(src, &demo_query(), &reg, 128).unwrap();
        assert_eq!(sb.stage_records[0], 1000);
        assert!(sb.stage_records[1] < 200, "filter keeps ~9%");
        assert!(sb.stage_bytes[1] < sb.stage_bytes[0] / 5);
        assert!(sb.stage_records[2] <= sb.stage_records[1]);
    }

    #[test]
    fn edge_placement_cuts_uplink_bytes() {
        let (topo, sensors) = Topology::train_fleet(1);
        let reg = FunctionRegistry::with_builtins();
        let q = demo_query();
        let sb = measure_stage_bytes(
            Box::new(VecSource::new(schema(), records(1000))),
            &q,
            &reg,
            128,
        )
        .unwrap();
        let edge_pl = place(&q, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
        let cloud_pl = place(&q, &topo, sensors[0], PlacementStrategy::CloudOnly).unwrap();
        let edge_cost = network_cost(&topo, &edge_pl, &sb).unwrap();
        let cloud_cost = network_cost(&topo, &cloud_pl, &sb).unwrap();
        assert!(
            edge_cost.cloud_uplink_bytes < cloud_cost.cloud_uplink_bytes / 5,
            "edge {} vs cloud {}",
            edge_cost.cloud_uplink_bytes,
            cloud_cost.cloud_uplink_bytes
        );
        assert!(edge_cost.total_bytes < cloud_cost.total_bytes);
    }

    #[test]
    fn failure_replacement_migrates_stages() {
        let (mut topo, sensors) = Topology::train_fleet(1);
        let q = demo_query();
        let pl = place(&q, &topo, sensors[0], PlacementStrategy::EdgeFirst).unwrap();
        let edge = topo
            .first_ancestor_of_kind(sensors[0], NodeKind::Edge)
            .unwrap();
        let cloud = topo.cloud().unwrap();
        assert!(topo.fail_node(edge));
        let (new_pl, migrated) = replace_after_failure(&topo, &pl, edge, cloud);
        assert!(migrated >= 1);
        assert!(!new_pl.stages.contains(&edge));
        // Sensor now reaches the cloud directly.
        assert_eq!(topo.path_up(sensors[0], cloud).unwrap().len(), 1);
    }

    #[test]
    fn cannot_fail_root() {
        let (mut topo, _) = Topology::train_fleet(1);
        let cloud = topo.cloud().unwrap();
        assert!(!topo.fail_node(cloud));
    }
}
