//! Deterministic fault injection for the distributed cluster runtime.
//!
//! A [`FaultPlan`] describes, with a seed, what goes wrong during a
//! placed run: per-link frame drops, duplication, reordering, bit
//! corruption, added latency, periodic link flaps, and one *abrupt*
//! node crash (the node dies mid-batch without the cooperative
//! `Handoff` drain of [`crate::cluster::FailureInjection`]). Every
//! link derives its own [`XorShift`] stream from `(plan.seed, link
//! id)`, so a given plan injects exactly the same faults on every run —
//! which is what lets the differential chaos suite assert byte-exact
//! output equality under fire.
//!
//! The chaos layer sits *under* the resilient wire protocol: faults are
//! applied to encoded envelopes just before they enter a channel, and
//! the receiving end's checksum/sequence machinery is what has to
//! detect and repair them.

use crate::error::{ClusterError, NebulaError, Result};
use crate::source::XorShift;
use crate::topology::{NodeId, Topology};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// An abrupt, unannounced node death: after the doomed node has handled
/// `after_frames` frames it is killed mid-batch — its thread drops all
/// state and every channel without sending `Eos` or `Handoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The node to kill. Must not be the cloud root or host a source.
    pub node: NodeId,
    /// Frames the node handles before dying (0 = immediately).
    pub after_frames: u64,
}

/// A periodic link outage, indexed by frame count for determinism: of
/// every `period` transmissions on a link, the first `down` are lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Cycle length in transmissions.
    pub period: u64,
    /// Transmissions lost at the start of each cycle.
    pub down: u64,
}

/// A seeded, deterministic schedule of injected faults.
///
/// Probabilities are per transmission and independent per link. The
/// plan validates up front ([`FaultPlan::validate`]) so an impossible
/// crash target is a clear planning error, not a late runtime surprise.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed from which every link derives its fault stream.
    pub seed: u64,
    /// Probability a transmission is silently dropped.
    pub drop_p: f64,
    /// Probability a transmission is delivered twice.
    pub dup_p: f64,
    /// Probability a transmission is held back and delivered after its
    /// successor (pairwise reorder).
    pub reorder_p: f64,
    /// Probability one random bit of a transmission is flipped.
    pub corrupt_p: f64,
    /// Extra latency added to every transmission.
    pub delay: Duration,
    /// Optional periodic link outage.
    pub flap: Option<LinkFlap>,
    /// Optional abrupt node crash.
    pub crash: Option<CrashFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for the builder).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            corrupt_p: 0.0,
            delay: Duration::ZERO,
            flap: None,
            crash: None,
        }
    }

    /// Sets the per-transmission drop probability.
    pub fn drop_frames(mut self, p: f64) -> Self {
        self.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-transmission duplication probability.
    pub fn duplicate_frames(mut self, p: f64) -> Self {
        self.dup_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-transmission pairwise-reorder probability.
    pub fn reorder_frames(mut self, p: f64) -> Self {
        self.reorder_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-transmission bit-corruption probability.
    pub fn corrupt_frames(mut self, p: f64) -> Self {
        self.corrupt_p = p.clamp(0.0, 1.0);
        self
    }

    /// Adds fixed latency to every transmission.
    pub fn add_latency(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Makes every link flap: of every `period` transmissions, the
    /// first `down` are lost.
    pub fn flap_links(mut self, period: u64, down: u64) -> Self {
        self.flap = Some(LinkFlap {
            period: period.max(1),
            down: down.min(period.max(1) - 1),
        });
        self
    }

    /// Abruptly kills `node` after it has handled `after_frames` frames.
    pub fn crash_node(mut self, node: NodeId, after_frames: u64) -> Self {
        self.crash = Some(CrashFault { node, after_frames });
        self
    }

    /// Validates the plan against a topology before any thread spawns.
    /// The crash target must exist, must not be the cloud root (failing
    /// the root is unrecoverable — there is nowhere to migrate to), and
    /// must not host a source (`source_nodes`). The error lists every
    /// ineligible node with its reason.
    pub fn validate(&self, topo: &Topology, source_nodes: &[NodeId]) -> Result<()> {
        let Some(crash) = &self.crash else {
            return Ok(());
        };
        let mut problems = Vec::new();
        if crash.node.0 >= topo.nodes().len() {
            problems.push(format!("node #{} does not exist", crash.node.0));
        } else {
            let name = &topo.node(crash.node).name;
            if topo.cloud() == Some(crash.node) {
                problems.push(format!("'{name}' is the cloud root"));
            }
            if source_nodes.contains(&crash.node) {
                problems.push(format!("'{name}' hosts a source"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(NebulaError::Cluster(ClusterError::IneligibleFault {
                detail: problems.join("; "),
            }))
        }
    }
}

/// Shared fault/recovery counters, merged into
/// [`crate::cluster::ClusterMetrics`] when the run finishes.
#[derive(Debug, Default)]
pub(crate) struct ChaosStats {
    pub injected_drops: AtomicU64,
    pub injected_dups: AtomicU64,
    pub injected_corruptions: AtomicU64,
    pub injected_reorders: AtomicU64,
    pub retransmits: AtomicU64,
    pub corrupt_dropped: AtomicU64,
    pub duplicates_suppressed: AtomicU64,
    pub heartbeats: AtomicU64,
    pub ack_bytes: AtomicU64,
    /// Site threads spawned across all phases (survives a crashed
    /// phase, unlike the phase's own return value).
    pub sites_spawned: AtomicU64,
}

/// The one-shot trigger for an abrupt crash, shared by every thread of
/// a phase. Frame handling on the doomed node calls [`CrashSwitch::observe`];
/// once the counter reaches the threshold the switch trips and stays
/// tripped, and every thread that consults it winds down.
#[derive(Debug)]
pub(crate) struct CrashSwitch {
    pub node: NodeId,
    after_frames: u64,
    counter: AtomicU64,
    tripped: AtomicBool,
}

impl CrashSwitch {
    pub fn new(fault: CrashFault) -> Self {
        CrashSwitch {
            node: fault.node,
            after_frames: fault.after_frames,
            counter: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Counts one frame handled by (or routed through) the doomed node;
    /// returns true once the crash has triggered.
    pub fn observe(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        if self.counter.fetch_add(1, Ordering::Relaxed) + 1 > self.after_frames {
            self.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-link deterministic chaos: applied to each encoded envelope just
/// before it enters the channel. Owns a hold-back slot for pairwise
/// reordering; [`LinkChaos::release`] must be called when the link
/// drains so a held frame is not lost by the chaos layer itself.
pub(crate) struct LinkChaos {
    rng: XorShift,
    drop_p: f64,
    dup_p: f64,
    reorder_p: f64,
    corrupt_p: f64,
    delay: Duration,
    flap: Option<LinkFlap>,
    held: Option<Vec<u8>>,
    frame_idx: u64,
    pub drops: u64,
    pub dups: u64,
    pub corruptions: u64,
    pub reorders: u64,
}

impl LinkChaos {
    /// Chaos state for link `link_id`, seeded from the plan.
    pub fn new(plan: &FaultPlan, link_id: u64) -> Self {
        LinkChaos {
            rng: XorShift::new(splitmix64(plan.seed ^ splitmix64(link_id))),
            drop_p: plan.drop_p,
            dup_p: plan.dup_p,
            reorder_p: plan.reorder_p,
            corrupt_p: plan.corrupt_p,
            delay: plan.delay,
            flap: plan.flap,
            held: None,
            frame_idx: 0,
            drops: 0,
            dups: 0,
            corruptions: 0,
            reorders: 0,
        }
    }

    /// Applies the fault schedule to one outgoing transmission and
    /// returns what actually crosses the link: possibly nothing (drop,
    /// flap outage, or held for reordering), possibly a duplicate,
    /// possibly a corrupted copy, possibly a swapped pair.
    pub fn transmit(&mut self, bytes: Vec<u8>) -> Vec<Vec<u8>> {
        self.frame_idx += 1;
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if let Some(flap) = self.flap {
            if self.frame_idx % flap.period < flap.down {
                self.drops += 1;
                return Vec::new();
            }
        }
        if self.rng.next_f64() < self.drop_p {
            self.drops += 1;
            return Vec::new();
        }
        let mut bytes = bytes;
        if self.rng.next_f64() < self.corrupt_p {
            let bit = self.rng.next_below(bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.corruptions += 1;
        }
        if self.rng.next_f64() < self.reorder_p {
            match self.held.take() {
                // Hold this frame; it goes out after its successor.
                None => {
                    self.held = Some(bytes);
                    return Vec::new();
                }
                // Release the held frame after this one: a swap.
                Some(prev) => {
                    self.reorders += 1;
                    return vec![bytes, prev];
                }
            }
        }
        let mut out = Vec::with_capacity(2);
        if let Some(prev) = self.held.take() {
            self.reorders += 1;
            out.push(bytes.clone());
            out.push(prev);
        } else {
            out.push(bytes.clone());
        }
        if self.rng.next_f64() < self.dup_p {
            self.dups += 1;
            out.push(bytes);
        }
        out
    }

    /// Releases a frame still held for reordering (call when the link
    /// drains, so chaos itself never permanently loses a frame).
    pub fn release(&mut self) -> Option<Vec<u8>> {
        self.held.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn link_chaos_is_deterministic_per_seed_and_link() {
        let plan = FaultPlan::seeded(7)
            .drop_frames(0.2)
            .duplicate_frames(0.1)
            .corrupt_frames(0.1)
            .reorder_frames(0.15);
        let run = |link: u64| {
            let mut chaos = LinkChaos::new(&plan, link);
            let mut out = Vec::new();
            for i in 0..200u32 {
                out.extend(chaos.transmit(i.to_le_bytes().to_vec()));
            }
            out.extend(chaos.release());
            out
        };
        assert_eq!(run(1), run(1), "same link, same faults");
        assert_ne!(run(1), run(2), "links fault independently");
    }

    #[test]
    fn chaos_conserves_frames_modulo_drops_and_dups() {
        let plan = FaultPlan::seeded(3)
            .drop_frames(0.3)
            .duplicate_frames(0.2)
            .reorder_frames(0.3);
        let mut chaos = LinkChaos::new(&plan, 9);
        let mut delivered = 0usize;
        for i in 0..500u32 {
            delivered += chaos.transmit(i.to_le_bytes().to_vec()).len();
        }
        delivered += chaos.release().iter().count();
        assert_eq!(
            delivered as u64,
            500 - chaos.drops + chaos.dups,
            "every non-dropped frame is delivered exactly once plus dups"
        );
        assert!(chaos.drops > 0 && chaos.dups > 0 && chaos.reorders > 0);
    }

    #[test]
    fn flap_drops_a_deterministic_fraction() {
        let plan = FaultPlan::seeded(1).flap_links(10, 3);
        let mut chaos = LinkChaos::new(&plan, 0);
        let mut lost = 0;
        for i in 0..100u32 {
            if chaos.transmit(i.to_le_bytes().to_vec()).is_empty() {
                lost += 1;
            }
        }
        assert_eq!(lost, 30, "3 of every 10 transmissions lost");
    }

    #[test]
    fn crash_switch_trips_once_after_threshold() {
        let sw = CrashSwitch::new(CrashFault {
            node: NodeId(1),
            after_frames: 3,
        });
        assert!(!sw.observe());
        assert!(!sw.observe());
        assert!(!sw.observe());
        assert!(sw.observe(), "fourth frame trips");
        assert!(sw.tripped());
        assert!(sw.observe(), "stays tripped");
    }

    #[test]
    fn validate_rejects_root_source_and_missing_nodes() {
        let (topo, sensors) = Topology::train_fleet(2);
        let cloud = topo.cloud().unwrap();
        let err = FaultPlan::seeded(0)
            .crash_node(cloud, 5)
            .validate(&topo, &sensors)
            .unwrap_err();
        assert!(err.to_string().contains("cloud root"), "{err}");
        let err = FaultPlan::seeded(0)
            .crash_node(sensors[0], 5)
            .validate(&topo, &sensors)
            .unwrap_err();
        assert!(err.to_string().contains("hosts a source"), "{err}");
        let err = FaultPlan::seeded(0)
            .crash_node(NodeId(999), 5)
            .validate(&topo, &sensors)
            .unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        // An edge node is eligible.
        let edge = topo
            .nodes()
            .iter()
            .enumerate()
            .find(|(i, n)| {
                Some(NodeId(*i)) != topo.cloud()
                    && !sensors.contains(&NodeId(*i))
                    && n.name.contains("edge")
            })
            .map(|(i, _)| NodeId(i))
            .unwrap();
        assert!(FaultPlan::seeded(0)
            .crash_node(edge, 5)
            .validate(&topo, &sensors)
            .is_ok());
    }
}
