//! The cluster wire format: length-prefixed frames carrying record
//! batches and control messages across node boundaries.
//!
//! NebulaStream workers exchange serialized TupleBuffers plus control
//! messages over the network; this module is the analogue for the
//! [`crate::cluster`] runtime. A [`Frame`] is either a batch of records,
//! a watermark advance, end-of-stream, or the pause-and-migrate
//! [`Frame::Handoff`] marker used during failure re-planning.
//!
//! ## Encoding
//!
//! Frames are length-prefixed: a little-endian `u32` body length, one
//! frame-type byte, then the body. Record batches are *schema-typed*:
//! both channel endpoints know the channel's schema (fixed when the
//! placed plan is deployed), so values are encoded without per-value
//! type tags — a `u8` field count, a null bitmap, then the non-null
//! values in field order using their schema type's layout. This keeps
//! measured wire bytes close to [`crate::record::Record::est_bytes`]
//! (the analytic estimator behind `topology::network_cost`): numeric
//! payloads match exactly, and the per-record overhead is the field
//! count plus the bitmap.
//!
//! Two value/schema flexibilities mirror the engine's accessor rules
//! ([`Value::as_int`] / [`Value::as_timestamp`] accept either variant):
//! an `INT` column accepts a `Timestamp` value and a `TIMESTAMP` column
//! accepts an `Int` value; decoding normalizes to the schema's variant.
//! Any other variant mismatch is a [`NebulaError::Wire`] error.
//!
//! ## Opaque payloads
//!
//! Plugin values ([`Value::Opaque`], e.g. MEOS temporal sequences) are
//! encoded through a [`WireRegistry`] of [`OpaqueWireCodec`]s keyed by
//! the value's type tag — the wire half of the plugin seam. A payload
//! whose tag has no registered codec fails encoding with a clear error
//! instead of being silently dropped.
//!
//! ## Robustness
//!
//! Decoding never panics on malformed input: every read is
//! bounds-checked, declared lengths are validated against the remaining
//! buffer, and trailing garbage is rejected — corrupted frames surface
//! as [`NebulaError::Wire`] errors (see the `prop_wire` property suite).

use crate::error::{NebulaError, Result};
use crate::record::Record;
use crate::schema::Schema;
use crate::value::{DataType, EventTime, OpaqueValue, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A unit of transmission between cluster sites.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A batch of records (the channel schema gives their layout).
    Data(Vec<Record>),
    /// Control: no record with event time `< wm` will arrive anymore.
    Watermark(EventTime),
    /// Control: the upstream site has flushed its state and finished.
    Eos,
    /// Control: pause for migration — the upstream pipeline is about to
    /// be re-planned; sites forward the marker and return their state.
    Handoff,
    /// Control: checkpoint barrier — everything before this marker
    /// belongs to checkpoint epoch `.0`. Sites snapshot their operator
    /// state when the barrier passes; the cloud aligns barriers across
    /// pipes before snapshotting (Chandy–Lamport style consistent cut).
    Barrier(u64),
    /// Out-of-band telemetry: a periodic per-node snapshot shipped to
    /// the cloud for fan-in next to the query results. Relay sites
    /// forward it unchanged; it never affects data or progress.
    Telemetry(crate::telemetry::NodeSnapshot),
}

const FRAME_DATA: u8 = 0;
const FRAME_WATERMARK: u8 = 1;
const FRAME_EOS: u8 = 2;
const FRAME_HANDOFF: u8 = 3;
const FRAME_BARRIER: u8 = 4;
const FRAME_TELEMETRY: u8 = 5;

/// Serializes one plugin type for wire transport — the codec counterpart
/// of [`OpaqueValue`]. Implementations live with the plugin that owns
/// the type (e.g. `nebulameos` provides codecs for MEOS temporals).
pub trait OpaqueWireCodec: Send + Sync {
    /// The [`OpaqueValue::type_tag`] this codec handles.
    fn tag(&self) -> &'static str;
    /// Appends the payload encoding of `value` to `out`.
    fn encode(&self, value: &dyn OpaqueValue, out: &mut Vec<u8>) -> Result<()>;
    /// Rebuilds the value from its payload encoding.
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn OpaqueValue>>;
}

/// Codec lookup by opaque type tag; cheap to clone (codecs are shared).
#[derive(Default, Clone)]
pub struct WireRegistry {
    codecs: HashMap<&'static str, Arc<dyn OpaqueWireCodec>>,
}

impl WireRegistry {
    /// An empty registry (sufficient for primitive-only schemas).
    pub fn new() -> Self {
        WireRegistry::default()
    }

    /// Registers a codec, replacing any previous codec for its tag.
    pub fn register(&mut self, codec: Arc<dyn OpaqueWireCodec>) {
        self.codecs.insert(codec.tag(), codec);
    }

    /// The tags with registered codecs, sorted (capability reporting).
    pub fn tags(&self) -> Vec<&str> {
        let mut tags: Vec<&str> = self.codecs.keys().copied().collect();
        tags.sort_unstable();
        tags
    }

    /// The codec for `tag`, or a wire error naming the missing tag.
    fn get(&self, tag: &str) -> Result<&Arc<dyn OpaqueWireCodec>> {
        self.codecs.get(tag).ok_or_else(|| {
            NebulaError::Wire(format!("no wire codec registered for opaque type '{tag}'"))
        })
    }
}

impl std::fmt::Debug for WireRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut tags: Vec<&str> = self.codecs.keys().copied().collect();
        tags.sort_unstable();
        write!(f, "WireRegistry{tags:?}")
    }
}

fn corrupt(msg: impl Into<String>) -> NebulaError {
    NebulaError::Wire(msg.into())
}

/// Encodes a frame for a channel whose records follow `schema`.
pub fn encode_frame(frame: &Frame, schema: &Schema, registry: &WireRegistry) -> Result<Vec<u8>> {
    let mut body = Vec::with_capacity(64);
    match frame {
        Frame::Data(records) => {
            body.push(FRAME_DATA);
            body.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for rec in records {
                encode_record(rec, schema, registry, &mut body)?;
            }
        }
        Frame::Watermark(wm) => {
            body.push(FRAME_WATERMARK);
            body.extend_from_slice(&wm.to_le_bytes());
        }
        Frame::Eos => body.push(FRAME_EOS),
        Frame::Handoff => body.push(FRAME_HANDOFF),
        Frame::Barrier(epoch) => {
            body.push(FRAME_BARRIER);
            body.extend_from_slice(&epoch.to_le_bytes());
        }
        Frame::Telemetry(snap) => {
            body.push(FRAME_TELEMETRY);
            body.extend_from_slice(&snap.origin.to_le_bytes());
            body.extend_from_slice(&snap.seq.to_le_bytes());
            body.extend_from_slice(&snap.at_us.to_le_bytes());
            body.extend_from_slice(&snap.records_in.to_le_bytes());
            body.extend_from_slice(&snap.records_out.to_le_bytes());
            body.extend_from_slice(&snap.queue_depth.to_le_bytes());
            body.extend_from_slice(&snap.frontier_lag_us.to_le_bytes());
            match snap.frontier {
                Some(f) => {
                    body.push(1);
                    body.extend_from_slice(&f.to_le_bytes());
                }
                None => body.push(0),
            }
            body.extend_from_slice(&(snap.node.len() as u32).to_le_bytes());
            body.extend_from_slice(snap.node.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

fn encode_record(
    rec: &Record,
    schema: &Schema,
    registry: &WireRegistry,
    out: &mut Vec<u8>,
) -> Result<()> {
    let n = schema.len();
    if n > u8::MAX as usize {
        return Err(NebulaError::Wire(format!(
            "schema too wide for the wire format: {n} fields (max 255)"
        )));
    }
    if rec.len() != n {
        return Err(NebulaError::Wire(format!(
            "record has {} fields, channel schema {n}",
            rec.len()
        )));
    }
    out.push(n as u8);
    let bitmap_at = out.len();
    out.resize(bitmap_at + n.div_ceil(8), 0);
    for (i, v) in rec.values().iter().enumerate() {
        if !v.is_null() {
            out[bitmap_at + i / 8] |= 1 << (i % 8);
        }
    }
    for (field, v) in schema.fields().iter().zip(rec.values()) {
        if v.is_null() {
            continue;
        }
        encode_value(v, field.dtype, registry, out)
            .map_err(|e| NebulaError::Wire(format!("column '{}': {e}", field.name)))?;
    }
    Ok(())
}

fn encode_value(
    v: &Value,
    dtype: DataType,
    registry: &WireRegistry,
    out: &mut Vec<u8>,
) -> Result<()> {
    let mismatch = || {
        NebulaError::Wire(format!(
            "{dtype} column cannot carry value '{v}' ({})",
            v.data_type()
        ))
    };
    match dtype {
        DataType::Bool => out.push(v.as_bool().ok_or_else(mismatch)? as u8),
        DataType::Int | DataType::Timestamp => {
            // Mirrors `as_int`/`as_timestamp`: either integer-family
            // variant travels; decode normalizes to the schema type.
            let i = match v {
                Value::Int(i) | Value::Timestamp(i) => *i,
                _ => return Err(mismatch()),
            };
            out.extend_from_slice(&i.to_le_bytes());
        }
        DataType::Float => match v {
            Value::Float(f) => out.extend_from_slice(&f.to_bits().to_le_bytes()),
            _ => return Err(mismatch()),
        },
        DataType::Text => match v {
            Value::Text(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            _ => return Err(mismatch()),
        },
        DataType::Point => match v {
            Value::Point { x, y } => {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
                out.extend_from_slice(&y.to_bits().to_le_bytes());
            }
            _ => return Err(mismatch()),
        },
        DataType::Opaque => match v {
            Value::Opaque(o) => {
                let codec = registry.get(o.type_tag())?;
                let tag = codec.tag().as_bytes();
                out.extend_from_slice(&(tag.len() as u16).to_le_bytes());
                out.extend_from_slice(tag);
                let len_at = out.len();
                out.extend_from_slice(&[0; 4]);
                codec.encode(o.as_ref(), out)?;
                let payload_len = (out.len() - len_at - 4) as u32;
                out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
            }
            _ => return Err(mismatch()),
        },
        // A NULL-typed column only ever carries nulls, which the bitmap
        // already encodes; a non-null value here is a contract breach.
        DataType::Null => return Err(mismatch()),
    }
    Ok(())
}

/// Bounds-checked reader over an encoded frame.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated frame: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        )))
    }

    /// A length field that must fit in the remaining buffer (rejects
    /// absurd lengths before any allocation).
    fn checked_len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(corrupt(format!(
                "declared length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Decodes a frame produced by [`encode_frame`] for the same schema.
/// Corrupted input returns [`NebulaError::Wire`]; it never panics.
pub fn decode_frame(bytes: &[u8], schema: &Schema, registry: &WireRegistry) -> Result<Frame> {
    let mut c = Cursor::new(bytes);
    let len = c.u32()? as usize;
    if len != c.remaining() {
        return Err(corrupt(format!(
            "frame length {len} does not match body length {}",
            c.remaining()
        )));
    }
    let frame = match c.u8()? {
        FRAME_DATA => {
            let count = c.u32()? as usize;
            // Every record needs at least its field count byte + bitmap.
            let min_per_record = 1 + schema.len().div_ceil(8);
            if count.saturating_mul(min_per_record) > c.remaining() {
                return Err(corrupt(format!(
                    "record count {count} impossible in {} bytes",
                    c.remaining()
                )));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(decode_record(&mut c, schema, registry)?);
            }
            Frame::Data(records)
        }
        FRAME_WATERMARK => Frame::Watermark(c.i64()?),
        FRAME_EOS => Frame::Eos,
        FRAME_HANDOFF => Frame::Handoff,
        FRAME_BARRIER => Frame::Barrier(c.u64()?),
        FRAME_TELEMETRY => {
            let origin = c.u64()?;
            let seq = c.u64()?;
            let at_us = c.u64()?;
            let records_in = c.u64()?;
            let records_out = c.u64()?;
            let queue_depth = c.u64()?;
            let frontier_lag_us = c.u64()?;
            let frontier = match c.u8()? {
                0 => None,
                1 => Some(c.i64()?),
                b => return Err(corrupt(format!("invalid frontier presence byte {b}"))),
            };
            let node_len = c.checked_len()?;
            let node = std::str::from_utf8(c.take(node_len)?)
                .map_err(|_| corrupt("node name is not valid UTF-8"))?
                .to_string();
            Frame::Telemetry(crate::telemetry::NodeSnapshot {
                origin,
                node,
                seq,
                at_us,
                records_in,
                records_out,
                queue_depth,
                frontier,
                frontier_lag_us,
            })
        }
        t => return Err(corrupt(format!("unknown frame type {t}"))),
    };
    if c.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after frame body",
            c.remaining()
        )));
    }
    Ok(frame)
}

fn decode_record(c: &mut Cursor<'_>, schema: &Schema, registry: &WireRegistry) -> Result<Record> {
    let n = c.u8()? as usize;
    if n != schema.len() {
        return Err(corrupt(format!(
            "record declares {n} fields, channel schema has {}",
            schema.len()
        )));
    }
    let bitmap = c.take(n.div_ceil(8))?.to_vec();
    let mut values = Vec::with_capacity(n);
    for (i, field) in schema.fields().iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) == 0 {
            values.push(Value::Null);
            continue;
        }
        let v = match field.dtype {
            DataType::Bool => match c.u8()? {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                b => return Err(corrupt(format!("invalid bool byte {b}"))),
            },
            DataType::Int => Value::Int(c.i64()?),
            DataType::Timestamp => Value::Timestamp(c.i64()?),
            DataType::Float => Value::Float(c.f64()?),
            DataType::Text => {
                let len = c.checked_len()?;
                let s = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| corrupt("text payload is not valid UTF-8"))?;
                Value::text(s)
            }
            DataType::Point => Value::Point {
                x: c.f64()?,
                y: c.f64()?,
            },
            DataType::Opaque => {
                let tag_len = c.u16()? as usize;
                let tag = std::str::from_utf8(c.take(tag_len)?)
                    .map_err(|_| corrupt("opaque tag is not valid UTF-8"))?
                    .to_string();
                let payload_len = c.checked_len()?;
                let payload = c.take(payload_len)?;
                Value::Opaque(registry.get(&tag)?.decode(payload)?)
            }
            DataType::Null => {
                return Err(corrupt(format!(
                    "NULL-typed column '{}' marked non-null",
                    field.name
                )))
            }
        };
        values.push(v);
    }
    Ok(Record::new(values))
}

// ---------------------------------------------------------------------------
// Resilient link envelope
// ---------------------------------------------------------------------------
//
// Chaos-hardened cluster links wrap every transmission in an *envelope*
// carrying a per-link sequence number and a CRC32 checksum:
//
// ```text
// [kind u8][seq u64 le][crc u32 le][payload ...]
// ```
//
// `crc` covers the kind byte, the sequence number, and the payload, so
// corruption anywhere in the envelope is detected. The envelope is
// opt-in: legacy (non-chaos) cluster runs ship bare frames and their
// byte accounting is unchanged.

/// Envelope kind: a data-bearing frame (payload = encoded [`Frame`]).
pub const ENV_PAYLOAD: u8 = 0;
/// Envelope kind: cumulative acknowledgement (`seq` = highest delivered).
pub const ENV_ACK: u8 = 1;
/// Envelope kind: negative ack (`seq` = first missing sequence number).
pub const ENV_NACK: u8 = 2;
/// Envelope kind: liveness heartbeat (`seq` = sender's next sequence).
pub const ENV_HEARTBEAT: u8 = 3;

/// Fixed envelope overhead in bytes (kind + seq + crc).
pub const ENVELOPE_OVERHEAD: usize = 1 + 8 + 4;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 checksum (IEEE polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn crc32_parts(kind: u8, seq: u64, payload: &[u8]) -> u32 {
    let mut head = [0u8; 9];
    head[0] = kind;
    head[1..9].copy_from_slice(&seq.to_le_bytes());
    let mut crc = !0u32;
    for &b in head.iter().chain(payload) {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A decoded resilient-link envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// One of [`ENV_PAYLOAD`], [`ENV_ACK`], [`ENV_NACK`], [`ENV_HEARTBEAT`].
    pub kind: u8,
    /// Per-link sequence number (meaning depends on `kind`).
    pub seq: u64,
    /// Encoded frame bytes for [`ENV_PAYLOAD`]; empty for control kinds.
    pub payload: Vec<u8>,
}

/// Wraps `payload` in a checksummed, sequence-numbered envelope.
pub fn encode_envelope(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_OVERHEAD + payload.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc32_parts(kind, seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes and verifies an envelope; a checksum mismatch (bit corruption
/// anywhere in the transmission) is a [`NebulaError::Wire`] error.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope> {
    if bytes.len() < ENVELOPE_OVERHEAD {
        return Err(corrupt(format!(
            "envelope too short: {} bytes, need {ENVELOPE_OVERHEAD}",
            bytes.len()
        )));
    }
    let kind = bytes[0];
    let seq = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
    let declared = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes"));
    let payload = &bytes[ENVELOPE_OVERHEAD..];
    let actual = crc32_parts(kind, seq, payload);
    if declared != actual {
        return Err(corrupt(format!(
            "envelope checksum mismatch: declared {declared:#010x}, computed {actual:#010x}"
        )));
    }
    if kind > ENV_HEARTBEAT {
        return Err(corrupt(format!("unknown envelope kind {kind}")));
    }
    Ok(Envelope {
        kind,
        seq,
        payload: payload.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("id", DataType::Int),
            ("v", DataType::Float),
            ("name", DataType::Text),
            ("ok", DataType::Bool),
            ("pos", DataType::Point),
        ])
    }

    fn rec() -> Record {
        Record::new(vec![
            Value::Timestamp(1_000_000),
            Value::Int(-7),
            Value::Float(2.5),
            Value::text("α train"),
            Value::Bool(true),
            Value::Point { x: 4.35, y: 50.85 },
        ])
    }

    #[test]
    fn data_round_trip() {
        let reg = WireRegistry::new();
        let s = schema();
        let nulls = Record::new(vec![Value::Null; 6]);
        let frame = Frame::Data(vec![rec(), nulls.clone()]);
        let bytes = encode_frame(&frame, &s, &reg).unwrap();
        match decode_frame(&bytes, &s, &reg).unwrap() {
            Frame::Data(recs) => {
                assert_eq!(recs.len(), 2);
                assert_eq!(recs[0], rec());
                assert_eq!(recs[1], nulls);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_round_trips() {
        let reg = WireRegistry::new();
        let s = schema();
        for frame in [
            Frame::Watermark(-5),
            Frame::Eos,
            Frame::Handoff,
            Frame::Barrier(7),
        ] {
            let bytes = encode_frame(&frame, &s, &reg).unwrap();
            let back = decode_frame(&bytes, &s, &reg).unwrap();
            match (&frame, &back) {
                (Frame::Watermark(a), Frame::Watermark(b)) => assert_eq!(a, b),
                (Frame::Eos, Frame::Eos) | (Frame::Handoff, Frame::Handoff) => {}
                (Frame::Barrier(a), Frame::Barrier(b)) => assert_eq!(a, b),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn telemetry_frame_round_trips() {
        let reg = WireRegistry::new();
        let s = schema();
        for frontier in [None, Some(12_345_678i64), Some(-1)] {
            let snap = crate::telemetry::NodeSnapshot {
                origin: 3,
                node: "edge-α".to_string(),
                seq: 17,
                at_us: 250_000,
                records_in: 1_000,
                records_out: 900,
                queue_depth: 4,
                frontier,
                frontier_lag_us: 777,
            };
            let bytes = encode_frame(&Frame::Telemetry(snap.clone()), &s, &reg).unwrap();
            match decode_frame(&bytes, &s, &reg).unwrap() {
                Frame::Telemetry(back) => assert_eq!(back, snap),
                other => panic!("{other:?}"),
            }
            // Truncations never panic.
            for cut in 0..bytes.len() {
                let _ = decode_frame(&bytes[..cut], &s, &reg);
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_round_trips_and_rejects_corruption() {
        let payload = b"hello frames".to_vec();
        let bytes = encode_envelope(ENV_PAYLOAD, 42, &payload);
        let env = decode_envelope(&bytes).unwrap();
        assert_eq!(env.kind, ENV_PAYLOAD);
        assert_eq!(env.seq, 42);
        assert_eq!(env.payload, payload);
        // Every single-bit flip anywhere in the envelope is detected.
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(decode_envelope(&bad).is_err(), "flip at byte {i} bit {bit}");
            }
        }
        // Truncations never panic.
        for cut in 0..bytes.len() {
            let _ = decode_envelope(&bytes[..cut]);
        }
    }

    #[test]
    fn control_envelopes_round_trip() {
        for kind in [ENV_ACK, ENV_NACK, ENV_HEARTBEAT] {
            let bytes = encode_envelope(kind, 9, &[]);
            let env = decode_envelope(&bytes).unwrap();
            assert_eq!((env.kind, env.seq), (kind, 9));
            assert!(env.payload.is_empty());
        }
    }

    #[test]
    fn wire_bytes_track_est_bytes() {
        // The schema-typed encoding keeps measured bytes within the
        // field-count + bitmap overhead of the analytic estimator.
        let reg = WireRegistry::new();
        let s = schema();
        let r = rec();
        let est = r.est_bytes();
        let bytes = encode_frame(&Frame::Data(vec![r]), &s, &reg).unwrap();
        let overhead = 4 + 1 + 4 + 1 + 1; // frame len+type+count, nfields, bitmap
        assert_eq!(bytes.len(), est + overhead);
    }

    #[test]
    fn integer_family_normalizes_to_schema_type() {
        let reg = WireRegistry::new();
        let s = Schema::of(&[("ts", DataType::Timestamp), ("n", DataType::Int)]);
        let frame = Frame::Data(vec![Record::new(vec![
            Value::Int(42),       // int in a timestamp column
            Value::Timestamp(99), // timestamp in an int column
        ])]);
        let bytes = encode_frame(&frame, &s, &reg).unwrap();
        match decode_frame(&bytes, &s, &reg).unwrap() {
            Frame::Data(recs) => {
                assert_eq!(recs[0].get(0), Some(&Value::Timestamp(42)));
                assert_eq!(recs[0].get(1), Some(&Value::Int(99)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let reg = WireRegistry::new();
        let s = Schema::of(&[("v", DataType::Float)]);
        let frame = Frame::Data(vec![Record::new(vec![Value::text("nope")])]);
        let err = encode_frame(&frame, &s, &reg).unwrap_err();
        assert!(matches!(err, NebulaError::Wire(_)), "{err}");
    }

    #[test]
    fn missing_opaque_codec_is_an_error() {
        #[derive(Debug)]
        struct Blob;
        impl OpaqueValue for Blob {
            fn type_tag(&self) -> &'static str {
                "test.blob"
            }
            fn est_bytes(&self) -> usize {
                0
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn opaque_eq(&self, _other: &dyn OpaqueValue) -> bool {
                true
            }
        }
        let reg = WireRegistry::new();
        let s = Schema::of(&[("o", DataType::Opaque)]);
        let frame = Frame::Data(vec![Record::new(vec![Value::Opaque(Arc::new(Blob))])]);
        let err = encode_frame(&frame, &s, &reg).unwrap_err();
        assert!(err.to_string().contains("test.blob"), "{err}");
    }

    #[test]
    fn corrupted_frames_error_not_panic() {
        let reg = WireRegistry::new();
        let s = schema();
        let good = encode_frame(&Frame::Data(vec![rec()]), &s, &reg).unwrap();
        // Truncations at every length.
        for cut in 0..good.len() {
            let _ = decode_frame(&good[..cut], &s, &reg);
        }
        // Unknown frame type.
        let mut bad = good.clone();
        bad[4] = 200;
        assert!(decode_frame(&bad, &s, &reg).is_err());
        // Length lie.
        let mut bad = good.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(decode_frame(&bad, &s, &reg).is_err());
        // Absurd record count must not allocate or panic.
        let mut bad = good;
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&bad, &s, &reg).is_err());
    }
}
