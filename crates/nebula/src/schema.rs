//! Stream schemas: named, typed field lists shared across buffers.

use crate::value::DataType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (unique within a schema).
    pub name: String,
    /// Field type.
    pub dtype: DataType,
}

impl Field {
    /// Builds a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An immutable stream schema. Shared via [`SchemaRef`]; field lookup by
/// name is O(1).
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    index: HashMap<String, usize>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema from fields. Duplicate names keep the first index
    /// (later duplicates are unreachable by name, matching SQL shadowing).
    pub fn new(fields: Vec<Field>) -> SchemaRef {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            index.entry(f.name.clone()).or_insert(i);
        }
        Arc::new(Schema { fields, index })
    }

    /// Convenience builder from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> SchemaRef {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by position.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// True iff `other` has the same names and types in the same order.
    pub fn same_layout(&self, other: &Schema) -> bool {
        self.fields == other.fields
    }

    /// A new schema with `extra` fields appended.
    pub fn extend(&self, extra: Vec<Field>) -> SchemaRef {
        let mut fields = self.fields.clone();
        fields.extend(extra);
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train_id", DataType::Int),
            ("pos", DataType::Point),
            ("speed", DataType::Float),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("pos"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field("speed").unwrap().dtype, DataType::Float);
        assert_eq!(s.field_at(0).unwrap().name, "ts");
        assert!(s.field_at(10).is_none());
    }

    #[test]
    fn duplicate_names_keep_first() {
        let s = Schema::of(&[("a", DataType::Int), ("a", DataType::Float)]);
        assert_eq!(s.index_of("a"), Some(0));
    }

    #[test]
    fn extend_appends() {
        let s = schema();
        let e = s.extend(vec![Field::new("alert", DataType::Text)]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.index_of("alert"), Some(4));
        assert!(!e.same_layout(&s));
        assert!(s.same_layout(&schema()));
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Text)]);
        assert_eq!(s.to_string(), "(a: INT, b: TEXT)");
    }
}
