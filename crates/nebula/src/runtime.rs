//! The execution runtime: registers sources, compiles queries, drives
//! buffers through operator chains, generates watermarks, and reports
//! throughput metrics.
//!
//! Three execution modes:
//! - [`StreamEnvironment::run`] — synchronous single-threaded loop
//!   (deterministic; what the benchmarks measure),
//! - [`StreamEnvironment::run_threaded`] — pipeline-parallel via a bounded
//!   crossbeam channel between the source and the operator chain
//!   (the shape of NebulaStream's worker threads),
//! - [`StreamEnvironment::run_partitioned`] — data-parallel: records are
//!   hash-partitioned by the plan's grouping key across
//!   [`EnvConfig::parallelism`] workers, each running its own compiled
//!   operator chain, with watermarks broadcast to every partition and
//!   per-worker metrics merged into one report (NebulaStream's
//!   worker-parallel execution model).

use crate::buffer::TupleBuffer;
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, FunctionRegistry, Plugin};
use crate::metrics::QueryMetrics;
use crate::ops::{chain_late_drops, GroupKey};
use crate::query::{compile, PartitionScheme, Query};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::sink::{merge_partitions, BufferSink, Sink};
use crate::source::{Source, SourceBatch, WatermarkStrategy};
use crate::value::EventTime;
use std::collections::HashMap;
use std::time::Instant;

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Records per source poll / buffer (NebulaStream's TupleBuffer
    /// capacity analogue).
    pub buffer_size: usize,
    /// Emit a watermark every N source batches.
    pub watermark_every: u64,
    /// Consecutive idle polls before the run gives up (prevents hangs on
    /// sources that never end).
    pub idle_limit: u64,
    /// Channel capacity (buffers) for threaded execution.
    pub channel_capacity: usize,
    /// Worker count for partitioned execution
    /// ([`StreamEnvironment::run_partitioned`]).
    pub parallelism: usize,
    /// Whether sources build columnar [`TupleBuffer`]s for the operator
    /// chain. `buffer_size = 1` degenerates to record-at-a-time in any
    /// mode.
    pub columnar: ColumnarMode,
}

/// Source-side batching policy: when to transpose polled records into
/// columnar [`TupleBuffer`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnarMode {
    /// Transpose when some operator in the chain's columnar-capable
    /// prefix actually runs a vectorized kernel (see
    /// [`crate::ops::Operator::columnar_benefit`]) — chains that would
    /// only pay the transpose (e.g. an opaque-geometry predicate
    /// straight into a window) keep the row path.
    #[default]
    Auto,
    /// Never transpose: every mode runs the per-record reference path.
    Off,
    /// Transpose whenever the chain head accepts buffers, benefit or
    /// not — pins the columnar kernels in differential tests.
    Force,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            buffer_size: 1024,
            watermark_every: 4,
            idle_limit: 100_000,
            channel_capacity: 8,
            parallelism: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            columnar: ColumnarMode::Auto,
        }
    }
}

/// A compiled chain of physical operators, executed in order.
type OperatorChain = Vec<Box<dyn Operator>>;

struct RegisteredSource {
    source: Box<dyn Source>,
    watermark: WatermarkStrategy,
}

/// The top-level runtime object: a function registry (with plugins), a
/// set of named sources, and the configuration.
pub struct StreamEnvironment {
    registry: FunctionRegistry,
    sources: HashMap<String, RegisteredSource>,
    config: EnvConfig,
}

impl Default for StreamEnvironment {
    fn default() -> Self {
        StreamEnvironment::new()
    }
}

impl StreamEnvironment {
    /// An environment with builtin functions and default config.
    pub fn new() -> Self {
        StreamEnvironment {
            registry: FunctionRegistry::with_builtins(),
            sources: HashMap::new(),
            config: EnvConfig::default(),
        }
    }

    /// An environment with a custom configuration.
    pub fn with_config(config: EnvConfig) -> Self {
        StreamEnvironment {
            config,
            ..StreamEnvironment::new()
        }
    }

    /// The function registry (immutable).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The function registry (for registrations).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The configuration (for tuning after construction, e.g. setting
    /// [`EnvConfig::parallelism`] on an already-wired environment).
    pub fn config_mut(&mut self) -> &mut EnvConfig {
        &mut self.config
    }

    /// Loads a plugin's functions into the registry.
    pub fn load_plugin(&mut self, plugin: &dyn Plugin) -> Result<()> {
        self.registry.load_plugin(plugin)
    }

    /// Registers a named source with its watermark strategy.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        source: Box<dyn Source>,
        watermark: WatermarkStrategy,
    ) {
        self.sources
            .insert(name.into(), RegisteredSource { source, watermark });
    }

    /// Human-readable physical plan for a query.
    pub fn explain(&self, query: &Query) -> Result<String> {
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let plan = compile(query, src.source.schema(), &self.registry)?;
        let mut s = format!("Source[{}] {}\n", query.source(), src.source.schema());
        for op in &plan.operators {
            s.push_str(&format!("  -> {} {}\n", op.name(), op.output_schema()));
        }
        Ok(s)
    }

    fn take_source(&mut self, name: &str) -> Result<RegisteredSource> {
        self.sources
            .remove(name)
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{name}'")))
    }

    /// Compiles `query` against the registered (still-owned) source's
    /// schema. Compiling *before* [`Self::take_source`] means a plan
    /// error leaves the source registered, so the caller can fix the
    /// query and run again.
    fn prepare(&self, query: &Query) -> Result<(Option<usize>, OperatorChain)> {
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let schema = src.source.schema();
        let ts_col = resolve_ts_col(&src.watermark, &schema)?;
        let plan = compile(query, schema, &self.registry)?;
        Ok((ts_col, plan.operators))
    }

    /// Runs a query to completion, synchronously, delivering results to
    /// `sink`. Consumes the registered source (only on a valid plan; a
    /// compile error leaves the source registered).
    pub fn run(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let (ts_col, mut ops) = self.prepare(query)?;
        let columnar = chain_wants_columnar(self.config.columnar, &ops);
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();
        let mut max_ts: EventTime = EventTime::MIN;
        let mut idle: u64 = 0;

        loop {
            match source.poll(self.config.buffer_size)? {
                SourceBatch::Data(recs) => {
                    idle = 0;
                    metrics.batches += 1;
                    let msg = make_data_message(
                        &schema,
                        recs,
                        columnar,
                        ts_col,
                        matches!(watermark, WatermarkStrategy::BoundedOutOfOrder { .. }),
                        metrics.batches,
                        &mut max_ts,
                    );
                    metrics.records_in += msg.record_count() as u64;
                    metrics.bytes_in += msg.data_bytes() as u64;
                    let t0 = Instant::now();
                    feed(&mut ops, msg, sink, &mut metrics)?;
                    metrics.latency.record(t0.elapsed().as_secs_f64() * 1e6);
                    if let WatermarkStrategy::BoundedOutOfOrder { slack, .. } = &watermark {
                        if metrics.batches % self.config.watermark_every == 0
                            && max_ts != EventTime::MIN
                        {
                            metrics.watermarks += 1;
                            feed(
                                &mut ops,
                                StreamMessage::Watermark(max_ts - slack),
                                sink,
                                &mut metrics,
                            )?;
                        }
                    }
                }
                SourceBatch::Idle => {
                    idle += 1;
                    if idle > self.config.idle_limit {
                        break;
                    }
                }
                SourceBatch::Exhausted => break,
            }
        }
        feed(&mut ops, StreamMessage::Eos, sink, &mut metrics)?;
        sink.finish()?;
        metrics.late_drops = chain_late_drops(&ops);
        metrics.wall = start.elapsed();
        Ok(metrics)
    }

    /// Runs a query with the source on its own thread, connected to the
    /// operator chain by a bounded channel — pipeline parallelism.
    pub fn run_threaded(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let (ts_col, mut ops) = self.prepare(query)?;
        let columnar = chain_wants_columnar(self.config.columnar, &ops);
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();

        let (tx, rx) = crossbeam::channel::bounded::<StreamMessage>(self.config.channel_capacity);
        let buffer_size = self.config.buffer_size;
        let watermark_every = self.config.watermark_every;
        let idle_limit = self.config.idle_limit;

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();

        let result: Result<()> = std::thread::scope(|scope| {
            let producer = scope.spawn(move || -> Result<()> {
                let mut max_ts: EventTime = EventTime::MIN;
                let mut batches: u64 = 0;
                let mut idle: u64 = 0;
                loop {
                    match source.poll(buffer_size)? {
                        SourceBatch::Data(recs) => {
                            idle = 0;
                            batches += 1;
                            let msg = make_data_message(
                                &schema,
                                recs,
                                columnar,
                                ts_col,
                                matches!(watermark, WatermarkStrategy::BoundedOutOfOrder { .. }),
                                batches,
                                &mut max_ts,
                            );
                            tx.send(msg)
                                .map_err(|_| NebulaError::Eval("consumer hung up".into()))?;
                            if let WatermarkStrategy::BoundedOutOfOrder { slack, .. } = &watermark {
                                if batches.is_multiple_of(watermark_every)
                                    && max_ts != EventTime::MIN
                                {
                                    tx.send(StreamMessage::Watermark(max_ts - slack)).map_err(
                                        |_| NebulaError::Eval("consumer hung up".into()),
                                    )?;
                                }
                            }
                        }
                        SourceBatch::Idle => {
                            idle += 1;
                            if idle > idle_limit {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        SourceBatch::Exhausted => break,
                    }
                }
                tx.send(StreamMessage::Eos)
                    .map_err(|_| NebulaError::Eval("consumer hung up".into()))?;
                Ok(())
            });

            for msg in rx.iter() {
                let is_eos = matches!(msg, StreamMessage::Eos);
                match &msg {
                    StreamMessage::Data(_) | StreamMessage::Columnar(_) => {
                        metrics.batches += 1;
                        metrics.records_in += msg.record_count() as u64;
                        metrics.bytes_in += msg.data_bytes() as u64;
                    }
                    StreamMessage::Watermark(_) => metrics.watermarks += 1,
                    StreamMessage::Eos => {}
                }
                feed(&mut ops, msg, sink, &mut metrics)?;
                if is_eos {
                    break;
                }
            }
            producer
                .join()
                .map_err(|_| NebulaError::Eval("producer panicked".into()))??;
            Ok(())
        });
        result?;
        sink.finish()?;
        metrics.late_drops = chain_late_drops(&ops);
        metrics.wall = start.elapsed();
        Ok(metrics)
    }

    /// Runs a query data-parallel across [`EnvConfig::parallelism`]
    /// worker threads — NebulaStream's worker-parallel execution model.
    ///
    /// The caller thread polls the source and routes each record to a
    /// worker according to the plan's [`Query::partition_scheme`]:
    /// hash of the grouping key (keyed windows / CEP), round-robin
    /// (stateless plans), or everything to worker 0 (keyless stateful
    /// plans, plugin operators, or keys that don't bind against the
    /// source schema). Watermarks are broadcast to every partition, so
    /// each worker's event-time clock advances exactly as in a
    /// single-worker run. Each worker drives its own compiled operator
    /// chain behind a bounded channel and collects results locally;
    /// after end-of-stream the partitions are merged order-normalized
    /// (canonically sorted, so output is deterministic and independent
    /// of the parallelism degree) and delivered to `sink` as one buffer.
    /// Per-worker metrics — including latency histograms — merge into
    /// the returned report.
    pub fn run_partitioned(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let (schema, ts_col) = {
            let src = self
                .sources
                .get(query.source())
                .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
            let schema = src.source.schema();
            let ts_col = resolve_ts_col(&src.watermark, &schema)?;
            (schema, ts_col)
        };
        // Key expressions that don't bind against the source schema
        // (e.g. keys over map-created columns) fall back to
        // single-worker routing, which is always correct.
        let route = match query.partition_scheme() {
            PartitionScheme::Key(exprs) => exprs
                .iter()
                .map(|e| e.bind(&schema, &self.registry).map(|(b, _)| b))
                .collect::<Result<Vec<BoundExpr>>>()
                .map_or(Route::Single, Route::Key),
            PartitionScheme::RoundRobin => Route::RoundRobin,
            PartitionScheme::Single => Route::Single,
        };
        // Single-routed plans get exactly one worker: extra partitions
        // would only relay watermarks and inflate the merged metrics.
        let parallelism = match route {
            Route::Single => 1,
            _ => self.config.parallelism.max(1),
        };
        // Compile one chain per worker before taking the source, so a
        // plan error leaves the source registered.
        let mut chains = Vec::with_capacity(parallelism);
        let mut output_schema = None;
        for _ in 0..parallelism {
            let plan = compile(query, schema.clone(), &self.registry)?;
            output_schema = Some(plan.output_schema.clone());
            chains.push(plan.operators);
        }
        let output_schema = output_schema.expect("parallelism >= 1");
        let columnar = chains
            .first()
            .is_some_and(|c| chain_wants_columnar(self.config.columnar, c));
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;

        let buffer_size = self.config.buffer_size;
        let watermark_every = self.config.watermark_every;
        let idle_limit = self.config.idle_limit;
        let channel_capacity = self.config.channel_capacity;

        let start = Instant::now();
        let mut merged = QueryMetrics::default();
        let mut parts: Vec<Vec<RecordBuffer>> = Vec::with_capacity(parallelism);

        let result: Result<()> = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(parallelism);
            let mut workers = Vec::with_capacity(parallelism);
            for mut ops in chains {
                let (tx, rx) =
                    crossbeam::channel::bounded::<StreamMessage>(channel_capacity.max(1));
                txs.push(tx);
                workers.push(
                    scope.spawn(move || -> Result<(QueryMetrics, Vec<RecordBuffer>)> {
                        let mut metrics = QueryMetrics::default();
                        let mut local = BufferSink::new();
                        for msg in rx.iter() {
                            let is_eos = matches!(msg, StreamMessage::Eos);
                            let is_data =
                                matches!(msg, StreamMessage::Data(_) | StreamMessage::Columnar(_));
                            match &msg {
                                StreamMessage::Data(_) | StreamMessage::Columnar(_) => {
                                    metrics.batches += 1;
                                    metrics.records_in += msg.record_count() as u64;
                                    metrics.bytes_in += msg.data_bytes() as u64;
                                }
                                StreamMessage::Watermark(_) => metrics.watermarks += 1,
                                StreamMessage::Eos => {}
                            }
                            let t0 = Instant::now();
                            feed(&mut ops, msg, &mut local, &mut metrics)?;
                            // Like `run`, the latency histogram samples
                            // only data buffers — watermark and Eos
                            // feeds would skew the profile and make it
                            // incomparable with single-threaded runs.
                            if is_data {
                                metrics.latency.record(t0.elapsed().as_secs_f64() * 1e6);
                            }
                            if is_eos {
                                break;
                            }
                        }
                        metrics.late_drops = chain_late_drops(&ops);
                        Ok((metrics, local.into_buffers()))
                    }),
                );
            }

            // Route records on the caller thread. A send fails only when
            // a worker errored and dropped its receiver; the join below
            // surfaces the worker's own error, which is the useful one.
            let n = txs.len();
            let hung = || NebulaError::Eval("partition worker hung up".into());
            let route_result: Result<()> = (|| {
                let mut max_ts: EventTime = EventTime::MIN;
                let mut batches: u64 = 0;
                let mut idle: u64 = 0;
                let mut rr: usize = 0;
                loop {
                    match source.poll(buffer_size)? {
                        SourceBatch::Data(recs) => {
                            idle = 0;
                            batches += 1;
                            if columnar {
                                let msg = make_data_message(
                                    &schema,
                                    recs,
                                    true,
                                    ts_col,
                                    matches!(
                                        watermark,
                                        WatermarkStrategy::BoundedOutOfOrder { .. }
                                    ),
                                    batches,
                                    &mut max_ts,
                                );
                                let tb = match msg {
                                    StreamMessage::Columnar(tb) => tb,
                                    _ => unreachable!("columnar build requested"),
                                };
                                match &route {
                                    // Whole-buffer transfer: the router
                                    // stays O(1) per buffer instead of
                                    // per record, which is where the
                                    // stateless par4 win comes from.
                                    Route::Single => txs[0]
                                        .send(StreamMessage::Columnar(tb))
                                        .map_err(|_| hung())?,
                                    Route::RoundRobin => {
                                        let w = rr % n;
                                        rr += 1;
                                        txs[w]
                                            .send(StreamMessage::Columnar(tb))
                                            .map_err(|_| hung())?;
                                    }
                                    Route::Key(exprs) => {
                                        let assign = columnar_partition_of(exprs, &tb, n);
                                        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
                                        for (row, &w) in assign.iter().enumerate() {
                                            rows[w].push(row);
                                        }
                                        for (w, rows) in rows.iter().enumerate() {
                                            if rows.is_empty() {
                                                continue;
                                            }
                                            let shard = if rows.len() == tb.len() {
                                                tb.clone()
                                            } else {
                                                tb.gather(rows)
                                            };
                                            txs[w]
                                                .send(StreamMessage::Columnar(shard))
                                                .map_err(|_| hung())?;
                                        }
                                    }
                                }
                            } else {
                                if let (Some(col), WatermarkStrategy::BoundedOutOfOrder { .. }) =
                                    (ts_col, &watermark)
                                {
                                    for rec in &recs {
                                        if let Some(t) =
                                            rec.get(col).and_then(crate::value::Value::as_timestamp)
                                        {
                                            max_ts = max_ts.max(t);
                                        }
                                    }
                                }
                                let mut shards: Vec<Vec<Record>> = vec![Vec::new(); n];
                                for rec in recs {
                                    let w = match &route {
                                        Route::Single => 0,
                                        Route::RoundRobin => {
                                            let w = rr % n;
                                            rr += 1;
                                            w
                                        }
                                        Route::Key(exprs) => {
                                            match GroupKey::evaluate(exprs, &rec) {
                                                Ok((key, _)) => {
                                                    (fnv1a(key.bytes()) % n as u64) as usize
                                                }
                                                // A record whose key fails to
                                                // evaluate has no group; route it
                                                // to worker 0. If it survives the
                                                // plan's filters the stateful
                                                // operator raises the same error
                                                // `run` would; if it is filtered
                                                // out, placement never mattered.
                                                Err(_) => 0,
                                            }
                                        }
                                    };
                                    shards[w].push(rec);
                                }
                                for (w, shard) in shards.into_iter().enumerate() {
                                    if !shard.is_empty() {
                                        txs[w]
                                            .send(StreamMessage::Data(RecordBuffer::new(
                                                schema.clone(),
                                                shard,
                                            )))
                                            .map_err(|_| hung())?;
                                    }
                                }
                            }
                            if let WatermarkStrategy::BoundedOutOfOrder { slack, .. } = &watermark {
                                if batches.is_multiple_of(watermark_every)
                                    && max_ts != EventTime::MIN
                                {
                                    for tx in &txs {
                                        tx.send(StreamMessage::Watermark(max_ts - slack))
                                            .map_err(|_| hung())?;
                                    }
                                }
                            }
                        }
                        SourceBatch::Idle => {
                            idle += 1;
                            if idle > idle_limit {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        SourceBatch::Exhausted => break,
                    }
                }
                for tx in &txs {
                    tx.send(StreamMessage::Eos).map_err(|_| hung())?;
                }
                Ok(())
            })();

            // Disconnect channels so no worker can block on a dead
            // producer, then join them all.
            drop(txs);
            let mut worker_err: Option<NebulaError> = None;
            for worker in workers {
                match worker.join() {
                    Err(_) => {
                        if worker_err.is_none() {
                            worker_err =
                                Some(NebulaError::Eval("partition worker panicked".into()));
                        }
                    }
                    Ok(Err(e)) => {
                        if worker_err.is_none() {
                            worker_err = Some(e);
                        }
                    }
                    Ok(Ok((m, buffers))) => {
                        merged.merge(&m);
                        parts.push(buffers);
                    }
                }
            }
            match worker_err {
                Some(e) => Err(e),
                None => route_result,
            }
        });
        result?;

        let merged_buf = merge_partitions(output_schema, parts);
        if !merged_buf.is_empty() {
            sink.consume(&merged_buf)?;
        }
        sink.finish()?;
        merged.wall = start.elapsed();
        Ok(merged)
    }
}

/// The bound routing decision for one partitioned run.
enum Route {
    /// Hash-partition by these key expressions over source records.
    Key(Vec<BoundExpr>),
    /// Distribute records evenly (stateless plans).
    RoundRobin,
    /// Everything to worker 0 (stateful keyless / opaque plans).
    Single,
}

/// FNV-1a over the canonical key bytes: deterministic across runs and
/// platforms, so a key's partition assignment is stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The source-side gate for building [`TupleBuffer`]s. Columnar flow
/// ends at the first row-only operator (CEP, threshold windows,
/// plugins — their buffers materialize back to rows), so under
/// [`ColumnarMode::Auto`] the transpose is worth paying only if some
/// operator *before* that point runs a vectorized kernel.
pub(crate) fn chain_wants_columnar(mode: ColumnarMode, ops: &[Box<dyn Operator>]) -> bool {
    match mode {
        ColumnarMode::Off => false,
        ColumnarMode::Force => ops.first().is_some_and(|op| op.supports_columnar()),
        ColumnarMode::Auto => {
            for op in ops {
                if !op.supports_columnar() {
                    return false;
                }
                if op.columnar_benefit() {
                    return true;
                }
                if !op.propagates_columnar() {
                    // Columnar flow ends here (e.g. a window emits row
                    // aggregates) and nothing so far wanted vectors.
                    return false;
                }
            }
            false
        }
    }
}

/// Converts one polled source batch into the runtime's data message —
/// columnar when the batched path is on — updating the event-time
/// clock used for watermark generation.
pub(crate) fn make_data_message(
    schema: &crate::schema::SchemaRef,
    recs: Vec<Record>,
    columnar: bool,
    ts_col: Option<usize>,
    track_ts: bool,
    sequence: u64,
    max_ts: &mut EventTime,
) -> StreamMessage {
    if columnar {
        let mut tb = TupleBuffer::from_records(
            schema.clone(),
            &recs,
            crate::buffer::BufferMeta {
                origin: 0,
                sequence,
                ..crate::buffer::BufferMeta::default()
            },
        );
        if let Some(col) = ts_col {
            tb.recompute_time_bounds(col);
            if track_ts {
                if let Some(t) = tb.meta().max_ts {
                    *max_ts = (*max_ts).max(t);
                }
            }
        }
        StreamMessage::Columnar(tb)
    } else {
        let buf = RecordBuffer::new(schema.clone(), recs);
        if track_ts {
            if let Some(col) = ts_col {
                if let Some(t) = buf.max_event_time(col) {
                    *max_ts = (*max_ts).max(t);
                }
            }
        }
        StreamMessage::Data(buf)
    }
}

/// Assigns each row of a columnar buffer to a partition by hashing its
/// evaluated grouping key. Key evaluation is vectorized when possible;
/// rows whose key fails to evaluate route to worker 0, exactly like
/// the per-record router.
fn columnar_partition_of(exprs: &[BoundExpr], tb: &TupleBuffer, n: usize) -> Vec<usize> {
    let mut cols = Vec::with_capacity(exprs.len());
    let vectorized = exprs.iter().all(|e| match e.eval_column(tb) {
        Ok(c) => {
            cols.push(c);
            true
        }
        Err(_) => false,
    });
    let mut out = Vec::with_capacity(tb.len());
    let mut bytes: Vec<u8> = Vec::with_capacity(exprs.len() * 9);
    for row in 0..tb.len() {
        bytes.clear();
        let ok = if vectorized {
            for c in &cols {
                crate::ops::encode_value(&c.value_at(row), &mut bytes);
            }
            true
        } else {
            // Some row errored during vector evaluation; redo this row
            // scalar so only the failing rows fall back to worker 0.
            exprs.iter().all(|e| match e.eval_row(tb, row) {
                Ok(v) => {
                    crate::ops::encode_value(&v, &mut bytes);
                    true
                }
                Err(_) => false,
            })
        };
        out.push(if ok {
            (fnv1a(&bytes) % n as u64) as usize
        } else {
            0
        });
    }
    out
}

pub(crate) fn resolve_ts_col(
    watermark: &WatermarkStrategy,
    schema: &crate::schema::Schema,
) -> Result<Option<usize>> {
    match watermark {
        WatermarkStrategy::None => Ok(None),
        WatermarkStrategy::BoundedOutOfOrder { ts_field, .. } => {
            let col = schema.index_of(ts_field).ok_or_else(|| {
                NebulaError::Plan(format!(
                    "watermark ts field '{ts_field}' not in source schema"
                ))
            })?;
            Ok(Some(col))
        }
    }
}

/// Pushes one message through the whole chain, delivering terminal data
/// buffers to the sink.
fn feed(
    ops: &mut [Box<dyn Operator>],
    first: StreamMessage,
    sink: &mut dyn Sink,
    metrics: &mut QueryMetrics,
) -> Result<()> {
    let mut cur = vec![first];
    let mut next: Vec<StreamMessage> = Vec::new();
    for op in ops.iter_mut() {
        for msg in cur.drain(..) {
            match msg {
                StreamMessage::Data(b) => op.process(b, &mut next)?,
                StreamMessage::Columnar(b) => op.process_columnar(b, &mut next)?,
                StreamMessage::Watermark(w) => op.on_watermark(w, &mut next)?,
                StreamMessage::Eos => op.on_eos(&mut next)?,
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    for msg in cur.drain(..) {
        match msg {
            StreamMessage::Data(b) => {
                metrics.records_out += b.len() as u64;
                metrics.bytes_out += b.est_bytes() as u64;
                sink.consume(&b)?;
            }
            StreamMessage::Columnar(b) => {
                metrics.records_out += b.len() as u64;
                metrics.bytes_out += b.est_bytes() as u64;
                sink.consume_columnar(&b)?;
            }
            StreamMessage::Watermark(_) | StreamMessage::Eos => {}
        }
    }
    Ok(())
}

use crate::ops::Operator;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::record::Record;
    use crate::schema::Schema;
    use crate::sink::{CollectingSink, CountingSink};
    use crate::source::{JitterSource, VecSource};
    use crate::value::{DataType, Value, MICROS_PER_SEC};
    use crate::window::{AggSpec, WindowAgg, WindowSpec};

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, speed: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(speed),
        ])
    }

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec(i, i % 3, (i % 50) as f64)).collect()
    }

    #[test]
    fn run_filter_query() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(100))),
            WatermarkStrategy::None,
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").filter(col("speed").ge(lit(40.0)));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(m.records_in, 100);
        assert_eq!(m.records_out as usize, got.len());
        assert_eq!(got.len(), 20, "speeds 40..49 of each 50-cycle");
        assert!(m.bytes_in > 0);
    }

    #[test]
    fn run_window_query_with_watermarks() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let m = env.run(&q, &mut sink).unwrap();
        assert!(m.watermarks > 0);
        // 300 seconds of data, 60 s windows, 3 keys => 15 windows.
        assert_eq!(got.len(), 15);
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(3).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "every record lands in exactly one window");
    }

    #[test]
    fn unknown_source_errors() {
        let mut env = StreamEnvironment::new();
        let (mut sink, _) = CollectingSink::new();
        let q = Query::from("nope").filter(lit(true));
        assert!(env.run(&q, &mut sink).is_err());
    }

    #[test]
    fn out_of_order_data_still_complete_with_slack() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 32,
            watermark_every: 1,
            ..EnvConfig::default()
        });
        let src = JitterSource::new(VecSource::new(schema(), records(300)), 8, 99);
        env.add_source(
            "trains",
            Box::new(src),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 40 * MICROS_PER_SEC, // generous slack > jitter
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        env.run(&q, &mut sink).unwrap();
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(2).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "slack absorbs the jitter; nothing dropped");
    }

    #[test]
    fn threaded_run_matches_sync() {
        let q = Query::from("trains")
            .filter(col("speed").ge(lit(25.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);

        let mut env1 = StreamEnvironment::new();
        env1.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s1, c1) = CollectingSink::new();
        env1.run(&q, &mut s1).unwrap();

        let mut env2 = StreamEnvironment::new();
        env2.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s2, c2) = CollectingSink::new();
        let m2 = env2.run_threaded(&q, &mut s2).unwrap();

        assert_eq!(c1.records(), c2.records());
        assert_eq!(m2.records_in, 500);
    }

    #[test]
    fn plan_error_keeps_source_registered() {
        // Regression: compiling used to happen after take_source, so a
        // bad plan permanently dropped the source.
        for mode in 0..3 {
            let mut env = StreamEnvironment::with_config(EnvConfig {
                parallelism: 2,
                ..EnvConfig::default()
            });
            env.add_source(
                "trains",
                Box::new(VecSource::new(schema(), records(50))),
                WatermarkStrategy::None,
            );
            let bad = Query::from("trains").filter(col("no_such_column").gt(lit(1.0)));
            let (mut sink, _) = CollectingSink::new();
            let err = match mode {
                0 => env.run(&bad, &mut sink),
                1 => env.run_threaded(&bad, &mut sink),
                _ => env.run_partitioned(&bad, &mut sink),
            };
            assert!(err.is_err(), "mode {mode}: bad plan must fail");

            // The source must still be registered and usable.
            let good = Query::from("trains").filter(col("speed").ge(lit(0.0)));
            let (mut sink, got) = CollectingSink::new();
            let m = match mode {
                0 => env.run(&good, &mut sink),
                1 => env.run_threaded(&good, &mut sink),
                _ => env.run_partitioned(&good, &mut sink),
            }
            .expect("source survived the plan error");
            assert_eq!(m.records_in, 50, "mode {mode}");
            assert_eq!(got.len(), 50, "mode {mode}");
        }
    }

    fn run_partitioned_with(
        query: &Query,
        parallelism: usize,
        watermark: WatermarkStrategy,
    ) -> (Vec<Record>, QueryMetrics) {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            parallelism,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            watermark,
        );
        let (mut sink, got) = CollectingSink::new();
        let m = env.run_partitioned(query, &mut sink).unwrap();
        (got.records(), m)
    }

    fn run_sync_normalized(query: &Query, watermark: WatermarkStrategy) -> Vec<Record> {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            watermark,
        );
        let (mut sink, got) = CollectingSink::new();
        env.run(query, &mut sink).unwrap();
        let mut recs = got.records();
        crate::sink::normalize_records(&mut recs);
        recs
    }

    #[test]
    fn partitioned_stateless_matches_run() {
        let q = Query::from("trains")
            .filter(col("speed").ge(lit(25.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);
        let expect = run_sync_normalized(&q, WatermarkStrategy::None);
        for p in [1, 2, 4] {
            let (got, m) = run_partitioned_with(&q, p, WatermarkStrategy::None);
            assert_eq!(got, expect, "parallelism {p}");
            assert_eq!(m.records_in, 300, "parallelism {p}");
            assert_eq!(m.records_out as usize, got.len(), "parallelism {p}");
        }
    }

    #[test]
    fn partitioned_keyed_window_matches_run() {
        let wm = || WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        };
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("avg_speed", AggSpec::Avg(col("speed"))),
            ],
        );
        let expect = run_sync_normalized(&q, wm());
        assert_eq!(expect.len(), 15, "300 s / 60 s windows x 3 keys");
        for p in [1, 2, 4] {
            let (got, m) = run_partitioned_with(&q, p, wm());
            assert_eq!(got, expect, "parallelism {p}");
            assert_eq!(m.records_in, 300, "parallelism {p}");
            assert!(!m.latency.is_empty(), "workers recorded latency");
        }
    }

    #[test]
    fn partitioned_keyless_window_falls_back_to_single() {
        // A keyless window must not be sharded (it would emit one row
        // per partition); Single routing keeps results identical.
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let expect = run_sync_normalized(&q, WatermarkStrategy::None);
        assert_eq!(expect.len(), 5);
        let (got, m) = run_partitioned_with(&q, 4, WatermarkStrategy::None);
        assert_eq!(got, expect);
        let total: i64 = got
            .iter()
            .map(|r| r.get(2).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300);
        assert_eq!(m.records_in, 300);
    }

    #[test]
    fn partitioned_watermarks_broadcast_to_all_workers() {
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let (_, m) = run_partitioned_with(
            &q,
            4,
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        // 300 records / 16 per batch = 19 batches; a broadcast every 2
        // batches reaches all 4 workers.
        assert_eq!(m.watermarks, 9 * 4, "each watermark counted per worker");
    }

    #[test]
    fn partitioned_key_eval_error_on_filtered_record_matches_run() {
        // The router evaluates the partition key on *pre-filter* source
        // records. A key expression that errors on records the filter
        // would exclude must not fail the partitioned run: such records
        // route to worker 0 and die in the filter there, exactly as in
        // `run`.
        use crate::expr::{call, ClosureFunction};
        let build_env = || {
            let mut env = StreamEnvironment::with_config(EnvConfig {
                buffer_size: 16,
                parallelism: 4,
                ..EnvConfig::default()
            });
            env.registry_mut()
                .register(ClosureFunction::new(
                    "strict_key",
                    1,
                    crate::value::DataType::Int,
                    |args| match &args[0] {
                        Value::Int(i) if *i >= 0 => Ok(Value::Int(*i)),
                        other => Err(NebulaError::Eval(format!("strict_key: bad {other}"))),
                    },
                ))
                .unwrap();
            // Trains 0..2 plus a poison key -1 on every 10th record.
            let recs: Vec<Record> = (0..200)
                .map(|i| rec(i, if i % 10 == 0 { -1 } else { i % 3 }, (i % 50) as f64))
                .collect();
            env.add_source(
                "trains",
                Box::new(VecSource::new(schema(), recs)),
                WatermarkStrategy::None,
            );
            env
        };
        let q = Query::from("trains")
            .filter(col("train").ge(lit(0.0)))
            .window(
                vec![("k", call("strict_key", vec![col("train")]))],
                WindowSpec::Tumbling {
                    size: 60 * MICROS_PER_SEC,
                },
                vec![WindowAgg::new("n", AggSpec::Count)],
            );

        let (mut s1, c1) = CollectingSink::new();
        build_env().run(&q, &mut s1).expect("run succeeds");
        let (mut s2, c2) = CollectingSink::new();
        build_env()
            .run_partitioned(&q, &mut s2)
            .expect("partitioned must not fail on filtered-out poison keys");
        let mut a = c1.records();
        let mut b = c2.records();
        crate::sink::normalize_records(&mut a);
        crate::sink::normalize_records(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_single_route_uses_one_worker() {
        // Single-routed plans clamp to one worker, so the merged
        // watermark count matches the synchronous run's instead of
        // being multiplied by the configured parallelism.
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let wm = || WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        };
        let (_, m) = run_partitioned_with(&q, 4, wm());
        assert_eq!(m.watermarks, 9, "one worker, not 4x broadcast");
    }

    #[test]
    fn partitioned_propagates_worker_errors() {
        // A record with a Null event time makes WindowOp::process fail
        // at eval time — inside a worker thread, not during planning.
        let mut env = StreamEnvironment::with_config(EnvConfig {
            parallelism: 2,
            ..EnvConfig::default()
        });
        let schema = Schema::of(&[("ts", DataType::Timestamp), ("k", DataType::Int)]);
        env.add_source(
            "bad",
            Box::new(VecSource::new(
                schema,
                vec![Record::new(vec![Value::Null, Value::Int(1)])],
            )),
            WatermarkStrategy::None,
        );
        let q = Query::from("bad").window(
            vec![("k", col("k"))],
            WindowSpec::Tumbling {
                size: MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let (mut sink, _) = CollectingSink::new();
        assert!(env.run_partitioned(&q, &mut sink).is_err());
    }

    #[test]
    fn counting_sink_and_metrics_agree() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(200))),
            WatermarkStrategy::None,
        );
        let (mut sink, counters) = CountingSink::new();
        let q = Query::from("trains").filter(lit(true));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(counters.records(), m.records_out);
        assert_eq!(counters.bytes(), m.bytes_out);
    }

    #[test]
    fn explain_renders_plan() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), vec![])),
            WatermarkStrategy::None,
        );
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map(vec![("t", col("train"))]);
        let plan = env.explain(&q).unwrap();
        assert!(plan.contains("Source[trains]"));
        assert!(plan.contains("filter"));
        assert!(plan.contains("map"));
    }
}
