//! The execution runtime: registers sources, compiles queries, drives
//! buffers through operator chains, tracks per-origin punctuated
//! progress, and reports throughput metrics.
//!
//! Three execution modes:
//! - [`StreamEnvironment::run`] — synchronous single-threaded loop
//!   (deterministic; what the benchmarks measure),
//! - [`StreamEnvironment::run_threaded`] — pipeline-parallel via a bounded
//!   crossbeam channel between the source and the operator chain
//!   (the shape of NebulaStream's worker threads),
//! - [`StreamEnvironment::run_partitioned`] — data-parallel: buffers are
//!   hash-partitioned by the plan's grouping key across
//!   [`EnvConfig::parallelism`] partitions executed by a work-stealing
//!   worker pool. Tasks complete out of order; an emission ledger
//!   releases results in dispatch order once the progress frontier
//!   passes them, so no end-of-run global sort is needed
//!   (NebulaStream's task-based worker execution model).
//!
//! Progress is *punctuated*: sources stamp every buffer with an
//! origin/sequence/watermark header ([`crate::buffer::BufferMeta`]) and
//! a [`ProgressTracker`] folds those stamps into the event-time
//! frontier that closes windows — there is no global clock besides the
//! per-origin frontiers.

use crate::analysis::{
    self, AnalysisContext, AnalysisOptions, AnalysisReport, CapabilityRegistry, Diagnostic,
};
use crate::buffer::TupleBuffer;
use crate::error::{NebulaError, Result};
use crate::expr::{BoundExpr, FunctionRegistry, Plugin};
use crate::metrics::QueryMetrics;
use crate::ops::{chain_late_drops, GroupKey};
use crate::query::{compile, PartitionScheme, Query};
use crate::record::{Record, RecordBuffer, StreamMessage};
use crate::sink::{BufferSink, Sink};
use crate::source::{Source, SourceBatch, WatermarkStrategy};
use crate::telemetry::{
    build_report, instrument_chain, ChainTelemetry, Gauges, QueryReport, TelemetryConfig,
    TelemetrySampler, TraceKind, TraceRing, COORDINATOR_ORIGIN,
};
use crate::value::EventTime;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Records per source poll / buffer (NebulaStream's TupleBuffer
    /// capacity analogue).
    pub buffer_size: usize,
    /// Emit a watermark every N source batches.
    pub watermark_every: u64,
    /// Consecutive idle polls before the run gives up (prevents hangs on
    /// sources that never end).
    pub idle_limit: u64,
    /// Channel capacity (buffers) for threaded execution.
    pub channel_capacity: usize,
    /// Worker count for partitioned execution
    /// ([`StreamEnvironment::run_partitioned`]).
    pub parallelism: usize,
    /// Whether sources build columnar [`TupleBuffer`]s for the operator
    /// chain. `buffer_size = 1` degenerates to record-at-a-time in any
    /// mode.
    pub columnar: ColumnarMode,
    /// Runtime telemetry: per-operator metrics, periodic sampling, and
    /// trace events (see [`crate::telemetry`]). Collected in every
    /// execution mode; the report of the most recent run is available
    /// via [`StreamEnvironment::last_report`].
    pub telemetry: TelemetryConfig,
    /// Lint-level overrides for the pre-flight static analyzer (see
    /// [`crate::analysis`]). Errors are always deny; warnings can be
    /// silenced or promoted per code.
    pub analysis: AnalysisOptions,
}

/// Source-side batching policy: when to transpose polled records into
/// columnar [`TupleBuffer`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnarMode {
    /// Transpose when some operator in the chain's columnar-capable
    /// prefix actually runs a vectorized kernel (see
    /// [`crate::ops::Operator::columnar_benefit`]) — chains that would
    /// only pay the transpose (e.g. an opaque-geometry predicate
    /// straight into a window) keep the row path.
    #[default]
    Auto,
    /// Never transpose: every mode runs the per-record reference path.
    Off,
    /// Transpose whenever the chain head accepts buffers, benefit or
    /// not — pins the columnar kernels in differential tests.
    Force,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            buffer_size: 1024,
            watermark_every: 4,
            idle_limit: 100_000,
            channel_capacity: 8,
            parallelism: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            columnar: ColumnarMode::Auto,
            telemetry: TelemetryConfig::default(),
            analysis: AnalysisOptions::new(),
        }
    }
}

/// The origin id used by the single-source local execution modes.
pub(crate) const LOCAL_ORIGIN: u64 = 0;

/// Per-origin state inside a [`ProgressTracker`].
#[derive(Debug, Clone, Default)]
struct OriginProgress {
    /// Highest sequence number of the contiguous processed prefix
    /// (sequences start at 1; 0 means nothing processed yet).
    processed: u64,
    /// Punctuations of buffers observed ahead of the prefix, keyed by
    /// sequence number, waiting for the gap to close.
    pending: BTreeMap<u64, Option<EventTime>>,
    /// Largest punctuation over the contiguous prefix — this origin's
    /// frontier.
    watermark: Option<EventTime>,
    done: bool,
}

/// Per-origin punctuated progress: the engine-wide event-time clock.
///
/// Each source pipeline (an *origin*) stamps every buffer it emits with
/// a monotonically increasing sequence number and, periodically, a
/// punctuation watermark (the [`crate::buffer::BufferMeta`] header).
/// The tracker folds those per-buffer stamps into frontiers:
///
/// - **Origin frontier** — the largest punctuation seen over the
///   *contiguous* processed-sequence prefix of that origin. Buffers
///   observed out of order park in a pending set until the gap closes,
///   so reordering can neither advance the clock early nor regress it.
/// - **Global frontier** — the minimum origin frontier across live
///   (not-yet-finished) origins, clamped monotone. `None` until every
///   live origin has reported a punctuation, because an origin that
///   has promised nothing may still hold arbitrarily old records.
///
/// Finishing an origin removes it from the minimum — its silence no
/// longer holds progress back — which can only *raise* the frontier: a
/// finished input never moves the clock backwards.
#[derive(Debug, Clone, Default)]
pub struct ProgressTracker {
    origins: BTreeMap<u64, OriginProgress>,
    frontier: Option<EventTime>,
    lag_max_us: u64,
}

impl ProgressTracker {
    /// An empty tracker; origins register lazily or via
    /// [`Self::register`].
    pub fn new() -> Self {
        ProgressTracker::default()
    }

    /// A tracker with origins `0..n` pre-registered.
    pub fn with_origins(n: u64) -> Self {
        let mut t = ProgressTracker::default();
        for origin in 0..n {
            t.register(origin);
        }
        t
    }

    /// Registers an origin so the global minimum waits for it.
    pub fn register(&mut self, origin: u64) {
        self.origins.entry(origin).or_default();
    }

    /// Number of registered origins.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// True iff no origin is registered.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// The global frontier: every record at or before this event time
    /// has been promised complete by all live origins.
    pub fn frontier(&self) -> Option<EventTime> {
        self.frontier
    }

    /// One origin's own frontier.
    pub fn origin_frontier(&self, origin: u64) -> Option<EventTime> {
        self.origins.get(&origin).and_then(|o| o.watermark)
    }

    /// Whether an origin has finished.
    pub fn is_done(&self, origin: u64) -> bool {
        self.origins.get(&origin).is_some_and(|o| o.done)
    }

    /// Whether every registered origin has finished.
    pub fn all_done(&self) -> bool {
        self.origins.values().all(|o| o.done)
    }

    /// Largest observed gap (µs) between the fastest live origin's
    /// frontier and the global frontier — how far one skewed input has
    /// run ahead of the clock.
    pub fn frontier_lag_us(&self) -> u64 {
        self.lag_max_us
    }

    /// Feeds one buffer's punctuation stamp. Out-of-order sequences
    /// park until the gap closes; duplicates and stale sequences are
    /// ignored. Returns the new global frontier iff it strictly
    /// advanced.
    pub fn observe(
        &mut self,
        origin: u64,
        sequence: u64,
        punctuation: Option<EventTime>,
    ) -> Option<EventTime> {
        {
            let o = self.origins.entry(origin).or_default();
            if o.done || sequence <= o.processed || o.pending.contains_key(&sequence) {
                return None;
            }
            o.pending.insert(sequence, punctuation);
            while let Some(p) = o.pending.remove(&(o.processed + 1)) {
                o.processed += 1;
                if let Some(w) = p {
                    o.watermark = Some(o.watermark.map_or(w, |cur| cur.max(w)));
                }
            }
        }
        self.advance()
    }

    /// Advances one origin's frontier directly — for in-order
    /// transports (e.g. cluster watermark frames) that carry the
    /// punctuation value without sequence numbers. Regressions clamp.
    /// Returns the new global frontier iff it strictly advanced.
    pub fn advance_origin(&mut self, origin: u64, watermark: EventTime) -> Option<EventTime> {
        {
            let o = self.origins.entry(origin).or_default();
            if o.done {
                return None;
            }
            o.watermark = Some(o.watermark.map_or(watermark, |cur| cur.max(watermark)));
        }
        self.advance()
    }

    /// Marks an origin finished, removing it from the global minimum.
    /// Returns the new global frontier iff dropping the origin strictly
    /// advanced it (`None` in particular once *no* live origin remains:
    /// the frontier freezes and end-of-stream carries the rest).
    pub fn finish(&mut self, origin: u64) -> Option<EventTime> {
        {
            let o = self.origins.entry(origin).or_default();
            o.done = true;
            o.pending.clear();
        }
        if self.all_done() {
            return None;
        }
        self.advance()
    }

    /// Recomputes the global frontier (min across live origins, clamped
    /// monotone) and the lag high-water mark.
    fn advance(&mut self) -> Option<EventTime> {
        let mut candidate: Option<EventTime> = None;
        for o in self.origins.values() {
            if o.done {
                continue;
            }
            match o.watermark {
                // A live origin with no promise yet blocks the clock.
                None => {
                    candidate = None;
                    break;
                }
                Some(w) => candidate = Some(candidate.map_or(w, |c| c.min(w))),
            }
        }
        let advanced = match (candidate, self.frontier) {
            (Some(c), Some(f)) if c > f => {
                self.frontier = Some(c);
                Some(c)
            }
            (Some(c), None) => {
                self.frontier = Some(c);
                Some(c)
            }
            _ => None,
        };
        if let Some(f) = self.frontier {
            let newest = self
                .origins
                .values()
                .filter(|o| !o.done)
                .filter_map(|o| o.watermark)
                .max();
            if let Some(newest) = newest {
                let lag = newest.saturating_sub(f);
                if lag > 0 {
                    self.lag_max_us = self.lag_max_us.max(lag as u64);
                }
            }
        }
        advanced
    }
}

/// A compiled chain of physical operators, executed in order.
type OperatorChain = Vec<Box<dyn Operator>>;

struct RegisteredSource {
    source: Box<dyn Source>,
    watermark: WatermarkStrategy,
}

/// The top-level runtime object: a function registry (with plugins), a
/// set of named sources, and the configuration.
pub struct StreamEnvironment {
    registry: FunctionRegistry,
    sources: HashMap<String, RegisteredSource>,
    config: EnvConfig,
    /// Static-analysis capabilities (opaque-type producers), merged
    /// from loaded plugins.
    capabilities: CapabilityRegistry,
    /// Telemetry report of the most recent run (any mode), kept until
    /// the next run replaces it or [`Self::take_report`] takes it.
    report: Option<QueryReport>,
}

impl Default for StreamEnvironment {
    fn default() -> Self {
        StreamEnvironment::new()
    }
}

impl StreamEnvironment {
    /// An environment with builtin functions and default config.
    pub fn new() -> Self {
        StreamEnvironment {
            registry: FunctionRegistry::with_builtins(),
            sources: HashMap::new(),
            config: EnvConfig::default(),
            capabilities: CapabilityRegistry::new(),
            report: None,
        }
    }

    /// An environment with a custom configuration.
    pub fn with_config(config: EnvConfig) -> Self {
        StreamEnvironment {
            config,
            ..StreamEnvironment::new()
        }
    }

    /// The function registry (immutable).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The function registry (for registrations).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The configuration (for tuning after construction, e.g. setting
    /// [`EnvConfig::parallelism`] on an already-wired environment).
    pub fn config_mut(&mut self) -> &mut EnvConfig {
        &mut self.config
    }

    /// Loads a plugin's functions into the registry and merges its
    /// static-analysis capabilities.
    pub fn load_plugin(&mut self, plugin: &dyn Plugin) -> Result<()> {
        self.registry.load_plugin(plugin)?;
        self.capabilities.merge(&plugin.capabilities());
        Ok(())
    }

    /// The static-analysis capability registry (for manual additions
    /// beyond what loaded plugins declare).
    pub fn capabilities_mut(&mut self) -> &mut CapabilityRegistry {
        &mut self.capabilities
    }

    /// The telemetry report of the most recent run, if telemetry was
    /// enabled ([`TelemetryConfig::enabled`]). Each run replaces it.
    pub fn last_report(&self) -> Option<&QueryReport> {
        self.report.as_ref()
    }

    /// Takes ownership of the most recent run's telemetry report.
    pub fn take_report(&mut self) -> Option<QueryReport> {
        self.report.take()
    }

    /// Registers a named source with its watermark strategy.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        source: Box<dyn Source>,
        watermark: WatermarkStrategy,
    ) {
        self.sources
            .insert(name.into(), RegisteredSource { source, watermark });
    }

    /// Human-readable physical plan for a query.
    pub fn explain(&self, query: &Query) -> Result<String> {
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let plan = compile(query, src.source.schema(), &self.registry)?;
        let mut s = format!("Source[{}] {}\n", query.source(), src.source.schema());
        for op in &plan.operators {
            s.push_str(&format!("  -> {} {}\n", op.name(), op.output_schema()));
        }
        Ok(s)
    }

    fn take_source(&mut self, name: &str) -> Result<RegisteredSource> {
        self.sources
            .remove(name)
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{name}'")))
    }

    /// Analyzes `query` for the given execution target without running
    /// it. The same pre-flight every run entry point performs; useful
    /// for inspecting diagnostics (including warnings) up front.
    pub fn analyze_for(&self, query: &Query, target: analysis::Target) -> Result<AnalysisReport> {
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let ctx = AnalysisContext {
            target,
            watermarks: vec![src.watermark.clone()],
            capabilities: self.capabilities.clone(),
            options: self.config.analysis.clone(),
        };
        Ok(analysis::analyze(
            query,
            src.source.schema(),
            &self.registry,
            &ctx,
        ))
    }

    /// Analyzes `query` for local execution (see [`Self::analyze_for`]).
    pub fn analyze(&self, query: &Query) -> Result<AnalysisReport> {
        self.analyze_for(query, analysis::Target::Local)
    }

    /// Pre-flight + compile for `query` against the registered
    /// (still-owned) source's schema. Analyzing and compiling *before*
    /// [`Self::take_source`] means a rejected plan leaves the source
    /// registered, so the caller can fix the query and run again.
    /// Returns the analyzer's warnings for the telemetry report.
    fn prepare(
        &self,
        query: &Query,
        target: analysis::Target,
    ) -> Result<(Option<usize>, OperatorChain, Vec<Diagnostic>)> {
        let warnings = self.analyze_for(query, target)?.into_accepted()?;
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let schema = src.source.schema();
        let ts_col = resolve_ts_col(&src.watermark, &schema)?;
        let plan = compile(query, schema, &self.registry)?;
        Ok((ts_col, plan.operators, warnings))
    }

    /// Runs a query to completion, synchronously, delivering results to
    /// `sink`. Consumes the registered source (only on a valid plan; a
    /// compile error leaves the source registered).
    pub fn run(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let (ts_col, ops, warnings) = self.prepare(query, analysis::Target::Local)?;
        let columnar = chain_wants_columnar(self.config.columnar, &ops);
        let tel_on = self.config.telemetry.enabled;
        let (mut ops, tel) = instrument_chain(ops, tel_on, 0);
        let chains = [tel];
        let trace = TraceRing::new(self.config.telemetry.max_events);
        if tel_on {
            trace.push(
                COORDINATOR_ORIGIN,
                TraceKind::QueryDeployed,
                format!("synchronous run, {} operator(s)", ops.len()),
            );
        }
        let mut sampler = TelemetrySampler::new(&self.config.telemetry);
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();
        let mut max_ts: EventTime = EventTime::MIN;
        let mut idle: u64 = 0;
        let mut tracker = ProgressTracker::new();
        tracker.register(LOCAL_ORIGIN);

        loop {
            match source.poll(self.config.buffer_size)? {
                SourceBatch::Data(recs) => {
                    idle = 0;
                    metrics.batches += 1;
                    let (msg, punctuation) = make_data_message(
                        &schema,
                        recs,
                        columnar,
                        ts_col,
                        LOCAL_ORIGIN,
                        metrics.batches,
                        &watermark,
                        self.config.watermark_every,
                        &mut max_ts,
                    );
                    metrics.records_in += msg.record_count() as u64;
                    metrics.bytes_in += msg.data_bytes() as u64;
                    let t0 = Instant::now();
                    feed(&mut ops, msg, sink, &mut metrics)?;
                    metrics.latency.record(t0.elapsed().as_secs_f64() * 1e6);
                    // The buffer's punctuation stamp, not a global
                    // clock, drives window progress: the tracker folds
                    // it into the frontier delivered to the chain.
                    tracker.observe(LOCAL_ORIGIN, metrics.batches, punctuation);
                    if punctuation.is_some() {
                        if let Some(w) = tracker.frontier() {
                            metrics.watermarks += 1;
                            feed(&mut ops, StreamMessage::Watermark(w), sink, &mut metrics)?;
                        }
                    }
                    // Synchronous mode has no channels, so queue depth
                    // and stalls are structurally zero.
                    sampler.maybe_sample(
                        &Gauges {
                            records_in: metrics.records_in,
                            records_out: metrics.records_out,
                            queue_depth: 0,
                            frontier: tracker.frontier(),
                            frontier_lag_us: tracker.frontier_lag_us(),
                            stalls: 0,
                        },
                        &chains,
                        Some((&trace, COORDINATOR_ORIGIN)),
                    );
                }
                SourceBatch::Idle => {
                    idle += 1;
                    if idle > self.config.idle_limit {
                        break;
                    }
                }
                SourceBatch::Exhausted => break,
            }
        }
        tracker.finish(LOCAL_ORIGIN);
        feed(&mut ops, StreamMessage::Eos, sink, &mut metrics)?;
        sink.finish()?;
        metrics.late_drops = chain_late_drops(&ops);
        metrics.frontier_lag_max_us = tracker.frontier_lag_us();
        metrics.wall = start.elapsed();
        sampler.force_sample(
            &Gauges {
                records_in: metrics.records_in,
                records_out: metrics.records_out,
                queue_depth: 0,
                frontier: tracker.frontier(),
                frontier_lag_us: metrics.frontier_lag_max_us,
                stalls: 0,
            },
            &chains,
            Some((&trace, COORDINATOR_ORIGIN)),
        );
        self.report = tel_on.then(|| {
            build_report(
                "run",
                &metrics,
                &chains,
                sampler,
                &trace,
                Vec::new(),
                0,
                warnings,
            )
        });
        Ok(metrics)
    }

    /// Runs a query with the source on its own thread, connected to the
    /// operator chain by a bounded channel — pipeline parallelism.
    pub fn run_threaded(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let (ts_col, ops, warnings) = self.prepare(query, analysis::Target::Local)?;
        let columnar = chain_wants_columnar(self.config.columnar, &ops);
        let tel_on = self.config.telemetry.enabled;
        let (mut ops, tel) = instrument_chain(ops, tel_on, 0);
        let chains = [tel];
        let trace = TraceRing::new(self.config.telemetry.max_events);
        if tel_on {
            trace.push(
                COORDINATOR_ORIGIN,
                TraceKind::QueryDeployed,
                format!("pipeline-parallel run, {} operator(s)", ops.len()),
            );
        }
        let mut sampler = TelemetrySampler::new(&self.config.telemetry);
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();

        let (tx, rx) = crossbeam::channel::bounded::<Task>(self.config.channel_capacity);
        let buffer_size = self.config.buffer_size;
        let watermark_every = self.config.watermark_every;
        let idle_limit = self.config.idle_limit;
        // Depth mirrors the channel occupancy (the vendored channel has
        // no len()); stalls count producer blocks on a full channel.
        // The producer increments depth *before* sending, so the
        // consumer's decrement after a receive can never underflow.
        let depth = AtomicU64::new(0);
        let stalls = AtomicU64::new(0);

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();
        let mut tracker = ProgressTracker::new();
        tracker.register(LOCAL_ORIGIN);

        let result: Result<()> = std::thread::scope(|scope| {
            let (depth, stalls) = (&depth, &stalls);
            // The producer only *stamps* punctuation (riding on the
            // task, like BufferMeta on a columnar buffer); the
            // consumer's tracker turns stamps into watermark feeds, so
            // progress decisions live with the executor, not the
            // transport.
            let producer = scope.spawn(move || -> Result<()> {
                // Try the non-blocking path first so a full channel is
                // observable: each fallback to the blocking send counts
                // one backpressure stall for the sampler.
                let send_task = |task: Task| -> Result<()> {
                    depth.fetch_add(1, Ordering::Relaxed);
                    let task = match tx.try_send(task) {
                        Ok(()) => return Ok(()),
                        Err(crossbeam::channel::TrySendError::Full(t)) => {
                            stalls.fetch_add(1, Ordering::Relaxed);
                            t
                        }
                        Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            return Err(NebulaError::Eval("consumer hung up".into()));
                        }
                    };
                    tx.send(task).map_err(|_| {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        NebulaError::Eval("consumer hung up".into())
                    })
                };
                let mut max_ts: EventTime = EventTime::MIN;
                let mut batches: u64 = 0;
                let mut idle: u64 = 0;
                loop {
                    match source.poll(buffer_size)? {
                        SourceBatch::Data(recs) => {
                            idle = 0;
                            batches += 1;
                            let (msg, punctuation) = make_data_message(
                                &schema,
                                recs,
                                columnar,
                                ts_col,
                                LOCAL_ORIGIN,
                                batches,
                                &watermark,
                                watermark_every,
                                &mut max_ts,
                            );
                            send_task(Task {
                                msg,
                                sequence: batches,
                                punctuation,
                            })?;
                        }
                        SourceBatch::Idle => {
                            idle += 1;
                            if idle > idle_limit {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        SourceBatch::Exhausted => break,
                    }
                }
                send_task(Task {
                    msg: StreamMessage::Eos,
                    sequence: 0,
                    punctuation: None,
                })?;
                Ok(())
            });

            for Task {
                msg,
                sequence,
                punctuation,
            } in rx.iter()
            {
                depth.fetch_sub(1, Ordering::Relaxed);
                let is_eos = matches!(msg, StreamMessage::Eos);
                if matches!(msg, StreamMessage::Data(_) | StreamMessage::Columnar(_)) {
                    metrics.batches += 1;
                    metrics.records_in += msg.record_count() as u64;
                    metrics.bytes_in += msg.data_bytes() as u64;
                }
                feed(&mut ops, msg, sink, &mut metrics)?;
                if is_eos {
                    tracker.finish(LOCAL_ORIGIN);
                    break;
                }
                tracker.observe(LOCAL_ORIGIN, sequence, punctuation);
                if punctuation.is_some() {
                    if let Some(w) = tracker.frontier() {
                        metrics.watermarks += 1;
                        feed(&mut ops, StreamMessage::Watermark(w), sink, &mut metrics)?;
                    }
                }
                sampler.maybe_sample(
                    &Gauges {
                        records_in: metrics.records_in,
                        records_out: metrics.records_out,
                        queue_depth: depth.load(Ordering::Relaxed),
                        frontier: tracker.frontier(),
                        frontier_lag_us: tracker.frontier_lag_us(),
                        stalls: stalls.load(Ordering::Relaxed),
                    },
                    &chains,
                    Some((&trace, COORDINATOR_ORIGIN)),
                );
            }
            producer
                .join()
                .map_err(|_| NebulaError::Eval("producer panicked".into()))??;
            Ok(())
        });
        result?;
        sink.finish()?;
        metrics.late_drops = chain_late_drops(&ops);
        metrics.frontier_lag_max_us = tracker.frontier_lag_us();
        metrics.wall = start.elapsed();
        sampler.force_sample(
            &Gauges {
                records_in: metrics.records_in,
                records_out: metrics.records_out,
                queue_depth: 0,
                frontier: tracker.frontier(),
                frontier_lag_us: metrics.frontier_lag_max_us,
                stalls: stalls.load(Ordering::Relaxed),
            },
            &chains,
            Some((&trace, COORDINATOR_ORIGIN)),
        );
        self.report = tel_on.then(|| {
            build_report(
                "run_threaded",
                &metrics,
                &chains,
                sampler,
                &trace,
                Vec::new(),
                0,
                warnings,
            )
        });
        Ok(metrics)
    }

    /// Runs a query data-parallel across [`EnvConfig::parallelism`]
    /// partitions executed by a work-stealing worker pool —
    /// NebulaStream's task-based worker execution model.
    ///
    /// The caller thread polls the source and routes each buffer to a
    /// partition queue according to the plan's
    /// [`Query::partition_scheme`]: hash of the grouping key (keyed
    /// windows / CEP), whole-buffer round-robin (stateless plans), or
    /// everything to partition 0 (keyless stateful plans, plugin
    /// operators, or keys that don't bind against the source schema).
    /// Any idle worker may claim any partition with queued tasks, so
    /// tasks complete out of order and a skewed hot key no longer
    /// serializes the pool behind one slow worker.
    ///
    /// Progress is punctuated: the router stamps each buffer's
    /// origin/sequence/watermark, a [`ProgressTracker`] folds the
    /// stamps into the frontier, and frontier punctuations are queued
    /// to every partition so each chain's event-time clock advances
    /// exactly as in a single-worker run. An emission ledger releases
    /// each dispatch step's outputs to `sink` once all of its owning
    /// partitions have executed it and every earlier step has been
    /// released — results stream out in deterministic dispatch order
    /// *without* the old end-of-run global sort. Per-partition metrics
    /// — including latency histograms and the frontier-lag high-water
    /// mark — merge into the returned report.
    pub fn run_partitioned(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let warnings = self
            .analyze_for(
                query,
                analysis::Target::Partitioned {
                    parallelism: self.config.parallelism.max(1),
                },
            )?
            .into_accepted()?;
        let (schema, ts_col) = {
            let src = self
                .sources
                .get(query.source())
                .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
            let schema = src.source.schema();
            let ts_col = resolve_ts_col(&src.watermark, &schema)?;
            (schema, ts_col)
        };
        // Key expressions that don't bind against the source schema
        // (e.g. keys over map-created columns) fall back to
        // single-worker routing, which is always correct.
        let route = match query.partition_scheme() {
            PartitionScheme::Key(exprs) => exprs
                .iter()
                .map(|e| e.bind(&schema, &self.registry).map(|(b, _)| b))
                .collect::<Result<Vec<BoundExpr>>>()
                .map_or(Route::Single, Route::Key),
            PartitionScheme::RoundRobin => Route::RoundRobin,
            PartitionScheme::Single => Route::Single,
        };
        // Single-routed plans get exactly one worker: extra partitions
        // would only relay watermarks and inflate the merged metrics.
        let parallelism = match route {
            Route::Single => 1,
            _ => self.config.parallelism.max(1),
        };
        // Compile one chain per worker before taking the source, so a
        // plan error leaves the source registered.
        let mut chains = Vec::with_capacity(parallelism);
        let mut output_schema = None;
        for _ in 0..parallelism {
            let plan = compile(query, schema.clone(), &self.registry)?;
            output_schema = Some(plan.output_schema.clone());
            chains.push(plan.operators);
        }
        let output_schema = output_schema.expect("parallelism >= 1");
        let columnar = chains
            .first()
            .is_some_and(|c| chain_wants_columnar(self.config.columnar, c));
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;

        let buffer_size = self.config.buffer_size;
        let watermark_every = self.config.watermark_every;
        let idle_limit = self.config.idle_limit;
        let channel_capacity = self.config.channel_capacity.max(1);

        let start = Instant::now();
        let n = parallelism;

        let tel_on = self.config.telemetry.enabled;
        let trace = TraceRing::new(self.config.telemetry.max_events);
        if tel_on {
            trace.push(
                COORDINATOR_ORIGIN,
                TraceKind::QueryDeployed,
                format!("partitioned run, {n} partition(s)"),
            );
        }
        let mut sampler = TelemetrySampler::new(&self.config.telemetry);

        // One slot per partition: a task queue plus the partition's
        // chain, separately locked so any worker can claim whichever
        // partition has work. Each partition's chain gets its own
        // instrumentation registry; the per-operator reports merge at
        // the end exactly like the partition QueryMetrics.
        let mut part_tels: Vec<ChainTelemetry> = Vec::with_capacity(n);
        let slots: Vec<PartitionSlot> = chains
            .into_iter()
            .map(|ops| {
                let (ops, tel) = instrument_chain(ops, tel_on, 0);
                part_tels.push(tel);
                PartitionSlot {
                    queue: Mutex::new(VecDeque::new()),
                    depth: AtomicUsize::new(0),
                    exec: Mutex::new(PartitionExec {
                        ops,
                        metrics: QueryMetrics::default(),
                    }),
                }
            })
            .collect();
        let key_count = match &route {
            Route::Key(exprs) => exprs.len(),
            _ => 0,
        };
        let ledger = Mutex::new(EmissionLedger::new(output_schema, key_count));
        let finished = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let stalls = AtomicU64::new(0);
        let first_err: Mutex<Option<NebulaError>> = Mutex::new(None);
        let mut tracker = ProgressTracker::new();
        tracker.register(LOCAL_ORIGIN);

        let result: Result<()> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for wid in 0..n {
                let (slots, ledger) = (&slots, &ledger);
                let (finished, abort, first_err) = (&finished, &abort, &first_err);
                handles.push(scope.spawn(move || {
                    partition_worker(wid, slots, ledger, finished, abort, first_err)
                }));
            }

            // Queues a task to one partition, bounded: wait while the
            // target queue is at capacity — workers drain concurrently,
            // stealing the partition if its last executor is busy. Each
            // wait episode counts one backpressure stall.
            let push_task = |p: usize, step: u64, msg: StreamMessage| {
                let mut stalled = false;
                while slots[p].depth.load(Ordering::Acquire) >= channel_capacity {
                    if !stalled {
                        stalled = true;
                        stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    if abort.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::yield_now();
                }
                slots[p].queue.lock().push_back(PartTask { step, msg });
                slots[p].depth.fetch_add(1, Ordering::AcqRel);
            };

            let tracker = &mut tracker;
            let sampler = &mut sampler;
            let route_result: Result<()> = (|| {
                let mut max_ts: EventTime = EventTime::MIN;
                let mut batches: u64 = 0;
                let mut idle: u64 = 0;
                let mut rr: usize = 0;
                let mut routed_records: u64 = 0;
                let mut released_records: u64 = 0;
                loop {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    match source.poll(buffer_size)? {
                        SourceBatch::Data(recs) => {
                            idle = 0;
                            batches += 1;
                            let (msg, punctuation) = make_data_message(
                                &schema,
                                recs,
                                columnar,
                                ts_col,
                                LOCAL_ORIGIN,
                                batches,
                                &watermark,
                                watermark_every,
                                &mut max_ts,
                            );
                            routed_records += msg.record_count() as u64;
                            // Shard the buffer to its owning partitions.
                            // Whole-buffer transfer wherever possible:
                            // the router stays O(1) per buffer, and a
                            // single-owner step preserves source order
                            // through the ledger untouched.
                            let shards: Vec<(usize, StreamMessage)> = match msg {
                                StreamMessage::Columnar(tb) => match &route {
                                    Route::Single => vec![(0, StreamMessage::Columnar(tb))],
                                    Route::RoundRobin => {
                                        let w = rr % n;
                                        rr += 1;
                                        vec![(w, StreamMessage::Columnar(tb))]
                                    }
                                    Route::Key(exprs) => {
                                        let assign = columnar_partition_of(exprs, &tb, n);
                                        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
                                        for (row, &w) in assign.iter().enumerate() {
                                            rows[w].push(row);
                                        }
                                        rows.iter()
                                            .enumerate()
                                            .filter(|(_, rows)| !rows.is_empty())
                                            .map(|(w, rows)| {
                                                let shard = if rows.len() == tb.len() {
                                                    tb.clone()
                                                } else {
                                                    tb.gather(rows)
                                                };
                                                (w, StreamMessage::Columnar(shard))
                                            })
                                            .collect()
                                    }
                                },
                                StreamMessage::Data(buf) => match &route {
                                    Route::Single => vec![(0, StreamMessage::Data(buf))],
                                    Route::RoundRobin => {
                                        let w = rr % n;
                                        rr += 1;
                                        vec![(w, StreamMessage::Data(buf))]
                                    }
                                    Route::Key(exprs) => {
                                        let mut shard_recs: Vec<Vec<Record>> = vec![Vec::new(); n];
                                        for rec in buf.into_records() {
                                            let w = match GroupKey::evaluate(exprs, &rec) {
                                                Ok((key, _)) => {
                                                    (fnv1a(key.bytes()) % n as u64) as usize
                                                }
                                                // A record whose key fails to
                                                // evaluate has no group; route it
                                                // to partition 0. If it survives
                                                // the plan's filters the stateful
                                                // operator raises the same error
                                                // `run` would; if it is filtered
                                                // out, placement never mattered.
                                                Err(_) => 0,
                                            };
                                            shard_recs[w].push(rec);
                                        }
                                        shard_recs
                                            .into_iter()
                                            .enumerate()
                                            .filter(|(_, recs)| !recs.is_empty())
                                            .map(|(w, recs)| {
                                                (
                                                    w,
                                                    StreamMessage::Data(RecordBuffer::new(
                                                        schema.clone(),
                                                        recs,
                                                    )),
                                                )
                                            })
                                            .collect()
                                    }
                                },
                                _ => unreachable!("make_data_message returns data"),
                            };
                            if !shards.is_empty() {
                                let step = ledger.lock().open(shards.len(), None);
                                for (w, m) in shards {
                                    push_task(w, step, m);
                                }
                            }
                            // Punctuation rides the buffer stamp; the
                            // tracker turns it into a frontier step
                            // owned by every partition, so each chain's
                            // clock advances exactly as in `run`.
                            tracker.observe(LOCAL_ORIGIN, batches, punctuation);
                            if punctuation.is_some() {
                                if let Some(w) = tracker.frontier() {
                                    let step = ledger.lock().open(n, Some(w));
                                    for p in 0..n {
                                        push_task(p, step, StreamMessage::Watermark(w));
                                    }
                                }
                            }
                            // Stream out whatever the frontier has
                            // already released.
                            let released = { ledger.lock().take_released() };
                            for b in released {
                                released_records += b.len() as u64;
                                sink.consume(&b)?;
                            }
                            // The router samples: records routed in,
                            // records released out, total queued tasks
                            // across the pool — the registries are
                            // atomic, so reading them races nothing.
                            let queue_depth: u64 = slots
                                .iter()
                                .map(|s| s.depth.load(Ordering::Acquire) as u64)
                                .sum();
                            sampler.maybe_sample(
                                &Gauges {
                                    records_in: routed_records,
                                    records_out: released_records,
                                    queue_depth,
                                    frontier: tracker.frontier(),
                                    frontier_lag_us: tracker.frontier_lag_us(),
                                    stalls: stalls.load(Ordering::Relaxed),
                                },
                                &part_tels,
                                Some((&trace, COORDINATOR_ORIGIN)),
                            );
                        }
                        SourceBatch::Idle => {
                            idle += 1;
                            if idle > idle_limit {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        SourceBatch::Exhausted => break,
                    }
                }
                if !abort.load(Ordering::Acquire) {
                    let step = ledger.lock().open(n, None);
                    for p in 0..n {
                        push_task(p, step, StreamMessage::Eos);
                    }
                }
                tracker.finish(LOCAL_ORIGIN);
                Ok(())
            })();

            if route_result.is_err() {
                // Unblock the pool: workers exit on the abort flag.
                abort.store(true, Ordering::Release);
            }
            let mut panicked = false;
            for handle in handles {
                if handle.join().is_err() {
                    panicked = true;
                }
            }
            // A worker's own error is the useful one; a routing error
            // matters only if no worker failed first.
            match first_err.lock().take() {
                Some(e) => Err(e),
                None if panicked => Err(NebulaError::Eval("partition worker panicked".into())),
                None => route_result,
            }
        });
        result?;

        // Every step completed: drain the ledger's remainder in
        // dispatch order — no post-hoc global sort.
        let mut ledger = ledger.into_inner();
        for b in ledger.take_released() {
            sink.consume(&b)?;
        }
        debug_assert!(ledger.steps.is_empty(), "all steps released");
        sink.finish()?;

        let mut merged = QueryMetrics::default();
        for slot in slots {
            merged.merge(&slot.exec.into_inner().metrics);
        }
        merged.frontier_lag_max_us = merged.frontier_lag_max_us.max(ledger.lag_max_us);
        merged.wall = start.elapsed();
        sampler.force_sample(
            &Gauges {
                records_in: merged.records_in,
                records_out: merged.records_out,
                queue_depth: 0,
                frontier: tracker.frontier(),
                frontier_lag_us: merged.frontier_lag_max_us,
                stalls: stalls.load(Ordering::Relaxed),
            },
            &part_tels,
            Some((&trace, COORDINATOR_ORIGIN)),
        );
        self.report = tel_on.then(|| {
            build_report(
                "run_partitioned",
                &merged,
                &part_tels,
                sampler,
                &trace,
                Vec::new(),
                0,
                warnings,
            )
        });
        Ok(merged)
    }
}

/// The bound routing decision for one partitioned run.
enum Route {
    /// Hash-partition by these key expressions over source records.
    Key(Vec<BoundExpr>),
    /// Distribute buffers evenly (stateless plans).
    RoundRobin,
    /// Everything to worker 0 (stateful keyless / opaque plans).
    Single,
}

/// One punctuated transport unit between a source loop and an
/// executor: the payload plus the origin-relative sequence and
/// punctuation stamps that row messages cannot carry inline (columnar
/// buffers also carry them in their [`crate::buffer::BufferMeta`]).
struct Task {
    msg: StreamMessage,
    sequence: u64,
    punctuation: Option<EventTime>,
}

/// A unit of work queued to one partition of the work-stealing pool:
/// the payload plus the emission-ledger step that orders its output.
struct PartTask {
    step: u64,
    msg: StreamMessage,
}

/// A partition's operator chain and metrics, owned by whichever worker
/// currently executes the partition.
struct PartitionExec {
    ops: OperatorChain,
    metrics: QueryMetrics,
}

/// One partition of the work-stealing pool. The queue and the chain
/// are separately locked: the router pushes to the queue while a
/// worker executes the chain, but a partition's tasks always run under
/// the `exec` lock — in queue order, one executor at a time — which
/// keeps per-key state and watermark application sequential even
/// though *which* worker runs the partition changes from task to task.
struct PartitionSlot {
    queue: Mutex<VecDeque<PartTask>>,
    /// Queue-depth mirror readable without the lock (router
    /// backpressure and fast skip during work stealing).
    depth: AtomicUsize,
    exec: Mutex<PartitionExec>,
}

/// Orders out-of-order task completions back into a deterministic
/// emission stream — the replacement for the old end-of-run global
/// sort.
///
/// The router assigns every dispatched unit of work a global *step*
/// index: a data buffer is one step even when sharded across several
/// partitions, and a broadcast punctuation is one step owned by all of
/// them. A step's outputs are released to the sink only when every
/// owner has completed it *and* all earlier steps have been released,
/// so the sink observes results in dispatch order no matter how the
/// pool interleaved execution. Multi-owner steps (sharded keyed
/// buffers; punctuations closing windows on several partitions) merge
/// their outputs in window emission order — each owner's rows arrive
/// already emission-sorted over a disjoint key subset, so re-sorting
/// the union with the same comparator reconstructs exactly the
/// sequence a single-partition run emits for that step. Single-owner
/// steps pass through untouched, preserving source order for
/// stateless plans. Either way the released stream is identical
/// across parallelism degrees — and identical to `run`'s.
struct EmissionLedger {
    schema: crate::schema::SchemaRef,
    /// Leading key-column count of keyed-window output rows — the
    /// emission comparator reads the window-start timestamp right
    /// after them (0 for unkeyed plans).
    key_count: usize,
    next_step: u64,
    next_release: u64,
    steps: BTreeMap<u64, LedgerStep>,
    released: Vec<RecordBuffer>,
    /// Punctuation value of the newest fully-released punctuation step.
    released_wm: Option<EventTime>,
    /// Max observed distance (µs) between a newly dispatched
    /// punctuation and the newest released one — how far execution
    /// trails dispatch under skew.
    lag_max_us: u64,
}

struct LedgerStep {
    owners_remaining: usize,
    multi_owner: bool,
    outputs: Vec<RecordBuffer>,
    punctuation: Option<EventTime>,
}

impl EmissionLedger {
    fn new(schema: crate::schema::SchemaRef, key_count: usize) -> Self {
        EmissionLedger {
            schema,
            key_count,
            next_step: 0,
            next_release: 0,
            steps: BTreeMap::new(),
            released: Vec::new(),
            released_wm: None,
            lag_max_us: 0,
        }
    }

    /// Opens the next step with `owners` pending completions.
    fn open(&mut self, owners: usize, punctuation: Option<EventTime>) -> u64 {
        debug_assert!(owners > 0, "a step needs at least one owner");
        let step = self.next_step;
        self.next_step += 1;
        if let (Some(w), Some(r)) = (punctuation, self.released_wm) {
            let lag = w.saturating_sub(r);
            if lag > 0 {
                self.lag_max_us = self.lag_max_us.max(lag as u64);
            }
        }
        self.steps.insert(
            step,
            LedgerStep {
                owners_remaining: owners,
                multi_owner: owners > 1,
                outputs: Vec::new(),
                punctuation,
            },
        );
        step
    }

    /// Banks one owner's completion with its outputs, then releases
    /// every fully-completed step at the front of the dispatch order.
    fn complete(&mut self, step: u64, outputs: Vec<RecordBuffer>) {
        if let Some(s) = self.steps.get_mut(&step) {
            s.outputs.extend(outputs);
            s.owners_remaining = s.owners_remaining.saturating_sub(1);
        }
        while self
            .steps
            .get(&self.next_release)
            .is_some_and(|s| s.owners_remaining == 0)
        {
            let s = self.steps.remove(&self.next_release).expect("checked");
            self.next_release += 1;
            if let Some(w) = s.punctuation {
                self.released_wm = Some(self.released_wm.map_or(w, |r| r.max(w)));
            }
            if s.multi_owner {
                let mut recs: Vec<Record> = Vec::new();
                for b in &s.outputs {
                    recs.extend_from_slice(b.records());
                }
                if !recs.is_empty() {
                    // Re-establish the window emission order over the
                    // union of the owners' outputs: bounded, per-step —
                    // not the old whole-run sort.
                    crate::ops::sort_emission(&mut recs, self.key_count);
                    self.released
                        .push(RecordBuffer::new(self.schema.clone(), recs));
                }
            } else {
                self.released
                    .extend(s.outputs.into_iter().filter(|b| !b.is_empty()));
            }
        }
    }

    /// Takes everything released so far, in dispatch order.
    fn take_released(&mut self) -> Vec<RecordBuffer> {
        std::mem::take(&mut self.released)
    }
}

/// A pool worker: repeatedly claims any partition that has queued
/// tasks and no current executor, then drains its queue. Partitions
/// are scanned starting at the worker's own index, so each worker
/// prefers "its" partition and steals only when otherwise idle.
fn partition_worker(
    wid: usize,
    slots: &[PartitionSlot],
    ledger: &Mutex<EmissionLedger>,
    finished: &AtomicUsize,
    abort: &AtomicBool,
    first_err: &Mutex<Option<NebulaError>>,
) {
    let n = slots.len();
    let mut spins: u32 = 0;
    loop {
        if abort.load(Ordering::Acquire) || finished.load(Ordering::Acquire) == n {
            return;
        }
        let mut progressed = false;
        for k in 0..n {
            let p = (wid + k) % n;
            let slot = &slots[p];
            if slot.depth.load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some(mut exec) = slot.exec.try_lock() else {
                // Another worker owns this partition right now; its
                // queue is their problem. Steal elsewhere.
                continue;
            };
            loop {
                let task = { slot.queue.lock().pop_front() };
                let Some(task) = task else { break };
                slot.depth.fetch_sub(1, Ordering::AcqRel);
                progressed = true;
                match run_partition_task(&mut exec, task, ledger) {
                    Ok(was_eos) => {
                        if was_eos {
                            finished.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                    Err(e) => {
                        {
                            let mut first = first_err.lock();
                            if first.is_none() {
                                *first = Some(e);
                            }
                        }
                        abort.store(true, Ordering::Release);
                        return;
                    }
                }
                if abort.load(Ordering::Acquire) {
                    return;
                }
            }
        }
        if progressed {
            spins = 0;
        } else {
            // Idle: yield briefly, then back off to a short sleep so an
            // empty pool doesn't burn the core the router needs.
            spins += 1;
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// Executes one task against a partition's chain, banking the outputs
/// in the emission ledger. Returns `true` when the task was this
/// partition's end-of-stream.
fn run_partition_task(
    exec: &mut PartitionExec,
    task: PartTask,
    ledger: &Mutex<EmissionLedger>,
) -> Result<bool> {
    let PartTask { step, msg } = task;
    let is_eos = matches!(msg, StreamMessage::Eos);
    let is_data = matches!(msg, StreamMessage::Data(_) | StreamMessage::Columnar(_));
    match &msg {
        StreamMessage::Data(_) | StreamMessage::Columnar(_) => {
            exec.metrics.batches += 1;
            exec.metrics.records_in += msg.record_count() as u64;
            exec.metrics.bytes_in += msg.data_bytes() as u64;
        }
        StreamMessage::Watermark(_) => exec.metrics.watermarks += 1,
        StreamMessage::Eos => {}
    }
    let mut local = BufferSink::new();
    let t0 = Instant::now();
    feed(&mut exec.ops, msg, &mut local, &mut exec.metrics)?;
    // Like `run`, the latency histogram samples only data buffers —
    // watermark and Eos feeds would skew the profile and make it
    // incomparable with single-threaded runs.
    if is_data {
        exec.metrics
            .latency
            .record(t0.elapsed().as_secs_f64() * 1e6);
    }
    if is_eos {
        exec.metrics.late_drops = chain_late_drops(&exec.ops);
    }
    ledger.lock().complete(step, local.into_buffers());
    Ok(is_eos)
}

/// FNV-1a over the canonical key bytes: deterministic across runs and
/// platforms, so a key's partition assignment is stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The source-side gate for building [`TupleBuffer`]s. Columnar flow
/// ends at the first row-only operator (CEP, threshold windows,
/// plugins — their buffers materialize back to rows), so under
/// [`ColumnarMode::Auto`] the transpose is worth paying only if some
/// operator *before* that point runs a vectorized kernel.
pub(crate) fn chain_wants_columnar(mode: ColumnarMode, ops: &[Box<dyn Operator>]) -> bool {
    match mode {
        ColumnarMode::Off => false,
        ColumnarMode::Force => ops.first().is_some_and(|op| op.supports_columnar()),
        ColumnarMode::Auto => {
            for op in ops {
                if !op.supports_columnar() {
                    return false;
                }
                if op.columnar_benefit() {
                    return true;
                }
                if !op.propagates_columnar() {
                    // Columnar flow ends here (e.g. a window emits row
                    // aggregates) and nothing so far wanted vectors.
                    return false;
                }
            }
            false
        }
    }
}

/// Converts one polled source batch into the runtime's data message —
/// columnar when the batched path is on — updating the origin's
/// event-time clock and stamping the buffer's punctuation header.
///
/// Returns the message plus the punctuation generated for this batch:
/// every `watermark_every`-th sequence under
/// [`WatermarkStrategy::BoundedOutOfOrder`] promises `max_ts - slack`.
/// Columnar buffers carry origin/sequence/punctuation inline in their
/// [`crate::buffer::BufferMeta`] (the NebulaStream TupleBuffer
/// header); for row buffers the stamps ride the surrounding transport.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_data_message(
    schema: &crate::schema::SchemaRef,
    recs: Vec<Record>,
    columnar: bool,
    ts_col: Option<usize>,
    origin: u64,
    sequence: u64,
    watermark: &WatermarkStrategy,
    watermark_every: u64,
    max_ts: &mut EventTime,
) -> (StreamMessage, Option<EventTime>) {
    let track_ts = matches!(watermark, WatermarkStrategy::BoundedOutOfOrder { .. });
    let msg = if columnar {
        let mut tb = TupleBuffer::from_records(
            schema.clone(),
            &recs,
            crate::buffer::BufferMeta {
                origin,
                sequence,
                ..crate::buffer::BufferMeta::default()
            },
        );
        if let Some(col) = ts_col {
            tb.recompute_time_bounds(col);
            if track_ts {
                if let Some(t) = tb.meta().max_ts {
                    *max_ts = (*max_ts).max(t);
                }
            }
        }
        StreamMessage::Columnar(tb)
    } else {
        let buf = RecordBuffer::new(schema.clone(), recs);
        if track_ts {
            if let Some(col) = ts_col {
                if let Some(t) = buf.max_event_time(col) {
                    *max_ts = (*max_ts).max(t);
                }
            }
        }
        StreamMessage::Data(buf)
    };
    let punctuation = match watermark {
        WatermarkStrategy::BoundedOutOfOrder { slack, .. }
            if sequence.is_multiple_of(watermark_every) && *max_ts != EventTime::MIN =>
        {
            Some(*max_ts - *slack)
        }
        _ => None,
    };
    let msg = match msg {
        StreamMessage::Columnar(mut tb) => {
            tb.meta_mut().watermark = punctuation;
            StreamMessage::Columnar(tb)
        }
        other => other,
    };
    (msg, punctuation)
}

/// Assigns each row of a columnar buffer to a partition by hashing its
/// evaluated grouping key. Key evaluation is vectorized when possible;
/// rows whose key fails to evaluate route to worker 0, exactly like
/// the per-record router.
fn columnar_partition_of(exprs: &[BoundExpr], tb: &TupleBuffer, n: usize) -> Vec<usize> {
    let mut cols = Vec::with_capacity(exprs.len());
    let vectorized = exprs.iter().all(|e| match e.eval_column(tb) {
        Ok(c) => {
            cols.push(c);
            true
        }
        Err(_) => false,
    });
    let mut out = Vec::with_capacity(tb.len());
    let mut bytes: Vec<u8> = Vec::with_capacity(exprs.len() * 9);
    for row in 0..tb.len() {
        bytes.clear();
        let ok = if vectorized {
            for c in &cols {
                crate::ops::encode_value(&c.value_at(row), &mut bytes);
            }
            true
        } else {
            // Some row errored during vector evaluation; redo this row
            // scalar so only the failing rows fall back to worker 0.
            exprs.iter().all(|e| match e.eval_row(tb, row) {
                Ok(v) => {
                    crate::ops::encode_value(&v, &mut bytes);
                    true
                }
                Err(_) => false,
            })
        };
        out.push(if ok {
            (fnv1a(&bytes) % n as u64) as usize
        } else {
            0
        });
    }
    out
}

pub(crate) fn resolve_ts_col(
    watermark: &WatermarkStrategy,
    schema: &crate::schema::Schema,
) -> Result<Option<usize>> {
    match watermark {
        WatermarkStrategy::None => Ok(None),
        WatermarkStrategy::BoundedOutOfOrder { ts_field, .. } => {
            let col = schema.index_of(ts_field).ok_or_else(|| {
                NebulaError::Plan(format!(
                    "watermark ts field '{ts_field}' not in source schema"
                ))
            })?;
            Ok(Some(col))
        }
    }
}

/// Pushes one message through the whole chain, delivering terminal data
/// buffers to the sink.
fn feed(
    ops: &mut [Box<dyn Operator>],
    first: StreamMessage,
    sink: &mut dyn Sink,
    metrics: &mut QueryMetrics,
) -> Result<()> {
    let mut cur = vec![first];
    let mut next: Vec<StreamMessage> = Vec::new();
    for op in ops.iter_mut() {
        for msg in cur.drain(..) {
            match msg {
                StreamMessage::Data(b) => op.process(b, &mut next)?,
                StreamMessage::Columnar(b) => op.process_columnar(b, &mut next)?,
                StreamMessage::Watermark(w) => op.on_watermark(w, &mut next)?,
                StreamMessage::Eos => op.on_eos(&mut next)?,
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    for msg in cur.drain(..) {
        match msg {
            StreamMessage::Data(b) => {
                metrics.records_out += b.len() as u64;
                metrics.bytes_out += b.est_bytes() as u64;
                sink.consume(&b)?;
            }
            StreamMessage::Columnar(b) => {
                metrics.records_out += b.len() as u64;
                metrics.bytes_out += b.est_bytes() as u64;
                sink.consume_columnar(&b)?;
            }
            StreamMessage::Watermark(_) | StreamMessage::Eos => {}
        }
    }
    Ok(())
}

use crate::ops::Operator;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::record::Record;
    use crate::schema::Schema;
    use crate::sink::{CollectingSink, CountingSink};
    use crate::source::{JitterSource, VecSource};
    use crate::value::{DataType, Value, MICROS_PER_SEC};
    use crate::window::{AggSpec, WindowAgg, WindowSpec};

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, speed: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(speed),
        ])
    }

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec(i, i % 3, (i % 50) as f64)).collect()
    }

    #[test]
    fn run_filter_query() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(100))),
            WatermarkStrategy::None,
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").filter(col("speed").ge(lit(40.0)));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(m.records_in, 100);
        assert_eq!(m.records_out as usize, got.len());
        assert_eq!(got.len(), 20, "speeds 40..49 of each 50-cycle");
        assert!(m.bytes_in > 0);
    }

    #[test]
    fn run_window_query_with_watermarks() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let m = env.run(&q, &mut sink).unwrap();
        assert!(m.watermarks > 0);
        // 300 seconds of data, 60 s windows, 3 keys => 15 windows.
        assert_eq!(got.len(), 15);
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(3).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "every record lands in exactly one window");
    }

    #[test]
    fn unknown_source_errors() {
        let mut env = StreamEnvironment::new();
        let (mut sink, _) = CollectingSink::new();
        let q = Query::from("nope").filter(lit(true));
        assert!(env.run(&q, &mut sink).is_err());
    }

    #[test]
    fn out_of_order_data_still_complete_with_slack() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 32,
            watermark_every: 1,
            ..EnvConfig::default()
        });
        let src = JitterSource::new(VecSource::new(schema(), records(300)), 8, 99);
        env.add_source(
            "trains",
            Box::new(src),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 40 * MICROS_PER_SEC, // generous slack > jitter
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        env.run(&q, &mut sink).unwrap();
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(2).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "slack absorbs the jitter; nothing dropped");
    }

    #[test]
    fn threaded_run_matches_sync() {
        let q = Query::from("trains")
            .filter(col("speed").ge(lit(25.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);

        let mut env1 = StreamEnvironment::new();
        env1.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s1, c1) = CollectingSink::new();
        env1.run(&q, &mut s1).unwrap();

        let mut env2 = StreamEnvironment::new();
        env2.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s2, c2) = CollectingSink::new();
        let m2 = env2.run_threaded(&q, &mut s2).unwrap();

        assert_eq!(c1.records(), c2.records());
        assert_eq!(m2.records_in, 500);
    }

    #[test]
    fn plan_error_keeps_source_registered() {
        // Regression: compiling used to happen after take_source, so a
        // bad plan permanently dropped the source.
        for mode in 0..3 {
            let mut env = StreamEnvironment::with_config(EnvConfig {
                parallelism: 2,
                ..EnvConfig::default()
            });
            env.add_source(
                "trains",
                Box::new(VecSource::new(schema(), records(50))),
                WatermarkStrategy::None,
            );
            let bad = Query::from("trains").filter(col("no_such_column").gt(lit(1.0)));
            let (mut sink, _) = CollectingSink::new();
            let err = match mode {
                0 => env.run(&bad, &mut sink),
                1 => env.run_threaded(&bad, &mut sink),
                _ => env.run_partitioned(&bad, &mut sink),
            };
            assert!(err.is_err(), "mode {mode}: bad plan must fail");

            // The source must still be registered and usable.
            let good = Query::from("trains").filter(col("speed").ge(lit(0.0)));
            let (mut sink, got) = CollectingSink::new();
            let m = match mode {
                0 => env.run(&good, &mut sink),
                1 => env.run_threaded(&good, &mut sink),
                _ => env.run_partitioned(&good, &mut sink),
            }
            .expect("source survived the plan error");
            assert_eq!(m.records_in, 50, "mode {mode}");
            assert_eq!(got.len(), 50, "mode {mode}");
        }
    }

    fn run_partitioned_with(
        query: &Query,
        parallelism: usize,
        watermark: WatermarkStrategy,
    ) -> (Vec<Record>, QueryMetrics) {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            parallelism,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            watermark,
        );
        let (mut sink, got) = CollectingSink::new();
        let m = env.run_partitioned(query, &mut sink).unwrap();
        (got.records(), m)
    }

    /// `run`'s output in its native emission order: the partitioned
    /// executor's ledger must reproduce it exactly — no normalization
    /// on either side.
    fn run_sync_raw(query: &Query, watermark: WatermarkStrategy) -> Vec<Record> {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            watermark,
        );
        let (mut sink, got) = CollectingSink::new();
        env.run(query, &mut sink).unwrap();
        got.records()
    }

    #[test]
    fn partitioned_stateless_matches_run() {
        let q = Query::from("trains")
            .filter(col("speed").ge(lit(25.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);
        let expect = run_sync_raw(&q, WatermarkStrategy::None);
        for p in [1, 2, 4] {
            let (got, m) = run_partitioned_with(&q, p, WatermarkStrategy::None);
            assert_eq!(got, expect, "parallelism {p}");
            assert_eq!(m.records_in, 300, "parallelism {p}");
            assert_eq!(m.records_out as usize, got.len(), "parallelism {p}");
        }
    }

    #[test]
    fn partitioned_keyed_window_matches_run() {
        let wm = || WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        };
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![
                WindowAgg::new("n", AggSpec::Count),
                WindowAgg::new("avg_speed", AggSpec::Avg(col("speed"))),
            ],
        );
        let expect = run_sync_raw(&q, wm());
        assert_eq!(expect.len(), 15, "300 s / 60 s windows x 3 keys");
        for p in [1, 2, 4] {
            let (got, m) = run_partitioned_with(&q, p, wm());
            assert_eq!(got, expect, "parallelism {p}");
            assert_eq!(m.records_in, 300, "parallelism {p}");
            assert!(!m.latency.is_empty(), "workers recorded latency");
        }
    }

    #[test]
    fn partitioned_keyless_window_falls_back_to_single() {
        // A keyless window must not be sharded (it would emit one row
        // per partition); Single routing keeps results identical.
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let expect = run_sync_raw(&q, WatermarkStrategy::None);
        assert_eq!(expect.len(), 5);
        let (got, m) = run_partitioned_with(&q, 4, WatermarkStrategy::None);
        assert_eq!(got, expect);
        let total: i64 = got
            .iter()
            .map(|r| r.get(2).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300);
        assert_eq!(m.records_in, 300);
    }

    #[test]
    fn partitioned_watermarks_broadcast_to_all_workers() {
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let (_, m) = run_partitioned_with(
            &q,
            4,
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        // 300 records / 16 per batch = 19 batches; a broadcast every 2
        // batches reaches all 4 workers.
        assert_eq!(m.watermarks, 9 * 4, "each watermark counted per worker");
    }

    #[test]
    fn partitioned_key_eval_error_on_filtered_record_matches_run() {
        // The router evaluates the partition key on *pre-filter* source
        // records. A key expression that errors on records the filter
        // would exclude must not fail the partitioned run: such records
        // route to worker 0 and die in the filter there, exactly as in
        // `run`.
        use crate::expr::{call, ClosureFunction};
        let build_env = || {
            let mut env = StreamEnvironment::with_config(EnvConfig {
                buffer_size: 16,
                parallelism: 4,
                ..EnvConfig::default()
            });
            env.registry_mut()
                .register(ClosureFunction::new(
                    "strict_key",
                    1,
                    crate::value::DataType::Int,
                    |args| match &args[0] {
                        Value::Int(i) if *i >= 0 => Ok(Value::Int(*i)),
                        other => Err(NebulaError::Eval(format!("strict_key: bad {other}"))),
                    },
                ))
                .unwrap();
            // Trains 0..2 plus a poison key -1 on every 10th record.
            let recs: Vec<Record> = (0..200)
                .map(|i| rec(i, if i % 10 == 0 { -1 } else { i % 3 }, (i % 50) as f64))
                .collect();
            env.add_source(
                "trains",
                Box::new(VecSource::new(schema(), recs)),
                WatermarkStrategy::None,
            );
            env
        };
        let q = Query::from("trains")
            .filter(col("train").ge(lit(0.0)))
            .window(
                vec![("k", call("strict_key", vec![col("train")]))],
                WindowSpec::Tumbling {
                    size: 60 * MICROS_PER_SEC,
                },
                vec![WindowAgg::new("n", AggSpec::Count)],
            );

        let (mut s1, c1) = CollectingSink::new();
        build_env().run(&q, &mut s1).expect("run succeeds");
        let (mut s2, c2) = CollectingSink::new();
        build_env()
            .run_partitioned(&q, &mut s2)
            .expect("partitioned must not fail on filtered-out poison keys");
        let mut a = c1.records();
        let mut b = c2.records();
        crate::sink::normalize_records(&mut a);
        crate::sink::normalize_records(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_single_route_uses_one_worker() {
        // Single-routed plans clamp to one worker, so the merged
        // watermark count matches the synchronous run's instead of
        // being multiplied by the configured parallelism.
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let wm = || WatermarkStrategy::BoundedOutOfOrder {
            ts_field: "ts".into(),
            slack: 5 * MICROS_PER_SEC,
        };
        let (_, m) = run_partitioned_with(&q, 4, wm());
        assert_eq!(m.watermarks, 9, "one worker, not 4x broadcast");
    }

    #[test]
    fn partitioned_propagates_worker_errors() {
        // A record with a Null event time makes WindowOp::process fail
        // at eval time — inside a worker thread, not during planning.
        let mut env = StreamEnvironment::with_config(EnvConfig {
            parallelism: 2,
            ..EnvConfig::default()
        });
        let schema = Schema::of(&[("ts", DataType::Timestamp), ("k", DataType::Int)]);
        env.add_source(
            "bad",
            Box::new(VecSource::new(
                schema,
                vec![Record::new(vec![Value::Null, Value::Int(1)])],
            )),
            WatermarkStrategy::None,
        );
        let q = Query::from("bad").window(
            vec![("k", col("k"))],
            WindowSpec::Tumbling {
                size: MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let (mut sink, _) = CollectingSink::new();
        assert!(env.run_partitioned(&q, &mut sink).is_err());
    }

    #[test]
    fn counting_sink_and_metrics_agree() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(200))),
            WatermarkStrategy::None,
        );
        let (mut sink, counters) = CountingSink::new();
        let q = Query::from("trains").filter(lit(true));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(counters.records(), m.records_out);
        assert_eq!(counters.bytes(), m.bytes_out);
    }

    #[test]
    fn explain_renders_plan() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), vec![])),
            WatermarkStrategy::None,
        );
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map(vec![("t", col("train"))]);
        let plan = env.explain(&q).unwrap();
        assert!(plan.contains("Source[trains]"));
        assert!(plan.contains("filter"));
        assert!(plan.contains("map"));
    }

    // -- ProgressTracker ---------------------------------------------------

    #[test]
    fn tracker_frontier_is_min_across_origins() {
        let mut t = ProgressTracker::with_origins(2);
        assert_eq!(
            t.observe(0, 1, Some(100)),
            None,
            "origin 1 silent: clock blocked"
        );
        assert_eq!(t.frontier(), None);
        assert_eq!(t.observe(1, 1, Some(40)), Some(40), "min of 100 and 40");
        assert_eq!(t.observe(1, 2, Some(70)), Some(70));
        assert_eq!(t.observe(1, 3, Some(90)), Some(90), "still capped by 100");
        assert_eq!(
            t.observe(1, 4, Some(130)),
            Some(100),
            "origin 0 now slowest"
        );
        assert_eq!(t.frontier(), Some(100));
    }

    #[test]
    fn tracker_parks_sequence_gaps() {
        let mut t = ProgressTracker::with_origins(1);
        // Sequence 2 arrives before 1: its punctuation must not count
        // yet — a reordered buffer cannot advance the clock past data
        // still in flight.
        assert_eq!(t.observe(0, 2, Some(200)), None);
        assert_eq!(t.frontier(), None);
        // The gap closes; both parked punctuations apply at once.
        assert_eq!(t.observe(0, 1, Some(100)), Some(200));
        // Duplicates and stale sequences are ignored.
        assert_eq!(t.observe(0, 1, Some(999)), None);
        assert_eq!(t.frontier(), Some(200));
    }

    #[test]
    fn tracker_finish_removes_origin_from_min() {
        let mut t = ProgressTracker::with_origins(2);
        t.observe(0, 1, Some(50));
        t.observe(1, 1, Some(300));
        assert_eq!(t.frontier(), Some(50));
        // Dropping the slow origin can only raise the frontier.
        assert_eq!(t.finish(0), Some(300));
        assert!(t.is_done(0));
        assert!(!t.all_done());
        // The last origin finishing freezes the clock: end-of-stream
        // carries the rest.
        assert_eq!(t.finish(1), None);
        assert!(t.all_done());
        assert_eq!(t.frontier(), Some(300));
    }

    #[test]
    fn tracker_frontier_never_regresses() {
        let mut t = ProgressTracker::new();
        t.advance_origin(0, 500);
        assert_eq!(t.frontier(), Some(500));
        // A regressing report clamps; the frontier holds.
        assert_eq!(t.advance_origin(0, 100), None);
        assert_eq!(t.frontier(), Some(500));
        // A late-registered origin with no report blocks further
        // advances but cannot pull the frontier back.
        t.register(1);
        assert_eq!(t.advance_origin(0, 900), None);
        assert_eq!(t.frontier(), Some(500));
        assert_eq!(t.advance_origin(1, 600), Some(600));
    }

    #[test]
    fn tracker_tracks_frontier_lag() {
        let mut t = ProgressTracker::with_origins(2);
        t.observe(0, 1, Some(1_000));
        t.observe(1, 1, Some(9_000));
        // Frontier 1000, fastest origin 9000: lag 8000 µs.
        assert_eq!(t.frontier(), Some(1_000));
        assert_eq!(t.frontier_lag_us(), 8_000);
        t.observe(0, 2, Some(9_000));
        // Catching up does not erase the high-water mark.
        assert_eq!(t.frontier_lag_us(), 8_000);
    }
}
