//! The execution runtime: registers sources, compiles queries, drives
//! buffers through operator chains, generates watermarks, and reports
//! throughput metrics.
//!
//! Two execution modes:
//! - [`StreamEnvironment::run`] — synchronous single-threaded loop
//!   (deterministic; what the benchmarks measure),
//! - [`StreamEnvironment::run_threaded`] — pipeline-parallel via a bounded
//!   crossbeam channel between the source and the operator chain
//!   (the shape of NebulaStream's worker threads).

use crate::error::{NebulaError, Result};
use crate::expr::{FunctionRegistry, Plugin};
use crate::metrics::QueryMetrics;
use crate::query::{compile, Query};
use crate::record::{RecordBuffer, StreamMessage};
use crate::sink::Sink;
use crate::source::{Source, SourceBatch, WatermarkStrategy};
use crate::value::EventTime;
use std::collections::HashMap;
use std::time::Instant;

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Records per source poll / buffer (NebulaStream's TupleBuffer
    /// capacity analogue).
    pub buffer_size: usize,
    /// Emit a watermark every N source batches.
    pub watermark_every: u64,
    /// Consecutive idle polls before the run gives up (prevents hangs on
    /// sources that never end).
    pub idle_limit: u64,
    /// Channel capacity (buffers) for threaded execution.
    pub channel_capacity: usize,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            buffer_size: 1024,
            watermark_every: 4,
            idle_limit: 100_000,
            channel_capacity: 8,
        }
    }
}

struct RegisteredSource {
    source: Box<dyn Source>,
    watermark: WatermarkStrategy,
}

/// The top-level runtime object: a function registry (with plugins), a
/// set of named sources, and the configuration.
pub struct StreamEnvironment {
    registry: FunctionRegistry,
    sources: HashMap<String, RegisteredSource>,
    config: EnvConfig,
}

impl Default for StreamEnvironment {
    fn default() -> Self {
        StreamEnvironment::new()
    }
}

impl StreamEnvironment {
    /// An environment with builtin functions and default config.
    pub fn new() -> Self {
        StreamEnvironment {
            registry: FunctionRegistry::with_builtins(),
            sources: HashMap::new(),
            config: EnvConfig::default(),
        }
    }

    /// An environment with a custom configuration.
    pub fn with_config(config: EnvConfig) -> Self {
        StreamEnvironment {
            config,
            ..StreamEnvironment::new()
        }
    }

    /// The function registry (immutable).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The function registry (for registrations).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Loads a plugin's functions into the registry.
    pub fn load_plugin(&mut self, plugin: &dyn Plugin) -> Result<()> {
        self.registry.load_plugin(plugin)
    }

    /// Registers a named source with its watermark strategy.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        source: Box<dyn Source>,
        watermark: WatermarkStrategy,
    ) {
        self.sources
            .insert(name.into(), RegisteredSource { source, watermark });
    }

    /// Human-readable physical plan for a query.
    pub fn explain(&self, query: &Query) -> Result<String> {
        let src = self
            .sources
            .get(query.source())
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{}'", query.source())))?;
        let plan = compile(query, src.source.schema(), &self.registry)?;
        let mut s = format!("Source[{}] {}\n", query.source(), src.source.schema());
        for op in &plan.operators {
            s.push_str(&format!("  -> {} {}\n", op.name(), op.output_schema()));
        }
        Ok(s)
    }

    fn take_source(&mut self, name: &str) -> Result<RegisteredSource> {
        self.sources
            .remove(name)
            .ok_or_else(|| NebulaError::Plan(format!("unknown source '{name}'")))
    }

    /// Runs a query to completion, synchronously, delivering results to
    /// `sink`. Consumes the registered source.
    pub fn run(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();
        let ts_col = resolve_ts_col(&watermark, &schema)?;
        let plan = compile(query, schema.clone(), &self.registry)?;
        let mut ops = plan.operators;

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();
        let mut max_ts: EventTime = EventTime::MIN;
        let mut idle: u64 = 0;

        loop {
            match source.poll(self.config.buffer_size)? {
                SourceBatch::Data(recs) => {
                    idle = 0;
                    metrics.batches += 1;
                    let buf = RecordBuffer::new(schema.clone(), recs);
                    metrics.records_in += buf.len() as u64;
                    metrics.bytes_in += buf.est_bytes() as u64;
                    if let (Some(col), WatermarkStrategy::BoundedOutOfOrder { .. }) =
                        (ts_col, &watermark)
                    {
                        if let Some(t) = buf.max_event_time(col) {
                            max_ts = max_ts.max(t);
                        }
                    }
                    let t0 = Instant::now();
                    feed(&mut ops, StreamMessage::Data(buf), sink, &mut metrics)?;
                    metrics.latency.record(t0.elapsed().as_secs_f64() * 1e6);
                    if let WatermarkStrategy::BoundedOutOfOrder { slack, .. } = &watermark {
                        if metrics.batches % self.config.watermark_every == 0
                            && max_ts != EventTime::MIN
                        {
                            metrics.watermarks += 1;
                            feed(
                                &mut ops,
                                StreamMessage::Watermark(max_ts - slack),
                                sink,
                                &mut metrics,
                            )?;
                        }
                    }
                }
                SourceBatch::Idle => {
                    idle += 1;
                    if idle > self.config.idle_limit {
                        break;
                    }
                }
                SourceBatch::Exhausted => break,
            }
        }
        feed(&mut ops, StreamMessage::Eos, sink, &mut metrics)?;
        sink.finish()?;
        metrics.wall = start.elapsed();
        Ok(metrics)
    }

    /// Runs a query with the source on its own thread, connected to the
    /// operator chain by a bounded channel — pipeline parallelism.
    pub fn run_threaded(&mut self, query: &Query, sink: &mut dyn Sink) -> Result<QueryMetrics> {
        let RegisteredSource {
            mut source,
            watermark,
        } = self.take_source(query.source())?;
        let schema = source.schema();
        let ts_col = resolve_ts_col(&watermark, &schema)?;
        let plan = compile(query, schema.clone(), &self.registry)?;
        let mut ops = plan.operators;

        let (tx, rx) = crossbeam::channel::bounded::<StreamMessage>(self.config.channel_capacity);
        let buffer_size = self.config.buffer_size;
        let watermark_every = self.config.watermark_every;
        let idle_limit = self.config.idle_limit;

        let mut metrics = QueryMetrics::default();
        let start = Instant::now();

        let result: Result<()> = std::thread::scope(|scope| {
            let producer = scope.spawn(move || -> Result<()> {
                let mut max_ts: EventTime = EventTime::MIN;
                let mut batches: u64 = 0;
                let mut idle: u64 = 0;
                loop {
                    match source.poll(buffer_size)? {
                        SourceBatch::Data(recs) => {
                            idle = 0;
                            batches += 1;
                            let buf = RecordBuffer::new(schema.clone(), recs);
                            if let (Some(col), WatermarkStrategy::BoundedOutOfOrder { .. }) =
                                (ts_col, &watermark)
                            {
                                if let Some(t) = buf.max_event_time(col) {
                                    max_ts = max_ts.max(t);
                                }
                            }
                            tx.send(StreamMessage::Data(buf))
                                .map_err(|_| NebulaError::Eval("consumer hung up".into()))?;
                            if let WatermarkStrategy::BoundedOutOfOrder { slack, .. } = &watermark {
                                if batches.is_multiple_of(watermark_every)
                                    && max_ts != EventTime::MIN
                                {
                                    tx.send(StreamMessage::Watermark(max_ts - slack)).map_err(
                                        |_| NebulaError::Eval("consumer hung up".into()),
                                    )?;
                                }
                            }
                        }
                        SourceBatch::Idle => {
                            idle += 1;
                            if idle > idle_limit {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        SourceBatch::Exhausted => break,
                    }
                }
                tx.send(StreamMessage::Eos)
                    .map_err(|_| NebulaError::Eval("consumer hung up".into()))?;
                Ok(())
            });

            for msg in rx.iter() {
                let is_eos = matches!(msg, StreamMessage::Eos);
                match &msg {
                    StreamMessage::Data(b) => {
                        metrics.batches += 1;
                        metrics.records_in += b.len() as u64;
                        metrics.bytes_in += b.est_bytes() as u64;
                    }
                    StreamMessage::Watermark(_) => metrics.watermarks += 1,
                    StreamMessage::Eos => {}
                }
                feed(&mut ops, msg, sink, &mut metrics)?;
                if is_eos {
                    break;
                }
            }
            producer
                .join()
                .map_err(|_| NebulaError::Eval("producer panicked".into()))??;
            Ok(())
        });
        result?;
        sink.finish()?;
        metrics.wall = start.elapsed();
        Ok(metrics)
    }
}

fn resolve_ts_col(
    watermark: &WatermarkStrategy,
    schema: &crate::schema::Schema,
) -> Result<Option<usize>> {
    match watermark {
        WatermarkStrategy::None => Ok(None),
        WatermarkStrategy::BoundedOutOfOrder { ts_field, .. } => {
            let col = schema.index_of(ts_field).ok_or_else(|| {
                NebulaError::Plan(format!(
                    "watermark ts field '{ts_field}' not in source schema"
                ))
            })?;
            Ok(Some(col))
        }
    }
}

/// Pushes one message through the whole chain, delivering terminal data
/// buffers to the sink.
fn feed(
    ops: &mut [Box<dyn Operator>],
    first: StreamMessage,
    sink: &mut dyn Sink,
    metrics: &mut QueryMetrics,
) -> Result<()> {
    let mut cur = vec![first];
    let mut next: Vec<StreamMessage> = Vec::new();
    for op in ops.iter_mut() {
        for msg in cur.drain(..) {
            match msg {
                StreamMessage::Data(b) => op.process(b, &mut next)?,
                StreamMessage::Watermark(w) => op.on_watermark(w, &mut next)?,
                StreamMessage::Eos => op.on_eos(&mut next)?,
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    for msg in cur.drain(..) {
        if let StreamMessage::Data(b) = msg {
            metrics.records_out += b.len() as u64;
            metrics.bytes_out += b.est_bytes() as u64;
            sink.consume(&b)?;
        }
    }
    Ok(())
}

use crate::ops::Operator;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::record::Record;
    use crate::schema::Schema;
    use crate::sink::{CollectingSink, CountingSink};
    use crate::source::{JitterSource, VecSource};
    use crate::value::{DataType, Value, MICROS_PER_SEC};
    use crate::window::{AggSpec, WindowAgg, WindowSpec};

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    fn rec(ts_s: i64, train: i64, speed: f64) -> Record {
        Record::new(vec![
            Value::Timestamp(ts_s * MICROS_PER_SEC),
            Value::Int(train),
            Value::Float(speed),
        ])
    }

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec(i, i % 3, (i % 50) as f64)).collect()
    }

    #[test]
    fn run_filter_query() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(100))),
            WatermarkStrategy::None,
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").filter(col("speed").ge(lit(40.0)));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(m.records_in, 100);
        assert_eq!(m.records_out as usize, got.len());
        assert_eq!(got.len(), 20, "speeds 40..49 of each 50-cycle");
        assert!(m.bytes_in > 0);
    }

    #[test]
    fn run_window_query_with_watermarks() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 16,
            watermark_every: 2,
            ..EnvConfig::default()
        });
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(300))),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 5 * MICROS_PER_SEC,
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![("train", col("train"))],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        let m = env.run(&q, &mut sink).unwrap();
        assert!(m.watermarks > 0);
        // 300 seconds of data, 60 s windows, 3 keys => 15 windows.
        assert_eq!(got.len(), 15);
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(3).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "every record lands in exactly one window");
    }

    #[test]
    fn unknown_source_errors() {
        let mut env = StreamEnvironment::new();
        let (mut sink, _) = CollectingSink::new();
        let q = Query::from("nope").filter(lit(true));
        assert!(env.run(&q, &mut sink).is_err());
    }

    #[test]
    fn out_of_order_data_still_complete_with_slack() {
        let mut env = StreamEnvironment::with_config(EnvConfig {
            buffer_size: 32,
            watermark_every: 1,
            ..EnvConfig::default()
        });
        let src = JitterSource::new(VecSource::new(schema(), records(300)), 8, 99);
        env.add_source(
            "trains",
            Box::new(src),
            WatermarkStrategy::BoundedOutOfOrder {
                ts_field: "ts".into(),
                slack: 40 * MICROS_PER_SEC, // generous slack > jitter
            },
        );
        let (mut sink, got) = CollectingSink::new();
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling {
                size: 60 * MICROS_PER_SEC,
            },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        env.run(&q, &mut sink).unwrap();
        let total: i64 = got
            .records()
            .iter()
            .map(|r| r.get(2).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 300, "slack absorbs the jitter; nothing dropped");
    }

    #[test]
    fn threaded_run_matches_sync() {
        let q = Query::from("trains")
            .filter(col("speed").ge(lit(25.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);

        let mut env1 = StreamEnvironment::new();
        env1.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s1, c1) = CollectingSink::new();
        env1.run(&q, &mut s1).unwrap();

        let mut env2 = StreamEnvironment::new();
        env2.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(500))),
            WatermarkStrategy::None,
        );
        let (mut s2, c2) = CollectingSink::new();
        let m2 = env2.run_threaded(&q, &mut s2).unwrap();

        assert_eq!(c1.records(), c2.records());
        assert_eq!(m2.records_in, 500);
    }

    #[test]
    fn counting_sink_and_metrics_agree() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), records(200))),
            WatermarkStrategy::None,
        );
        let (mut sink, counters) = CountingSink::new();
        let q = Query::from("trains").filter(lit(true));
        let m = env.run(&q, &mut sink).unwrap();
        assert_eq!(counters.records(), m.records_out);
        assert_eq!(counters.bytes(), m.bytes_out);
    }

    #[test]
    fn explain_renders_plan() {
        let mut env = StreamEnvironment::new();
        env.add_source(
            "trains",
            Box::new(VecSource::new(schema(), vec![])),
            WatermarkStrategy::None,
        );
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map(vec![("t", col("train"))]);
        let plan = env.explain(&q).unwrap();
        assert!(plan.contains("Source[trains]"));
        assert!(plan.contains("filter"));
        assert!(plan.contains("map"));
    }
}
