//! The function registry — NebulaStream's runtime extension point.
//!
//! Operators and expressions never hard-code domain logic; they call
//! functions resolved by name at bind time. Plugins (the MEOS integration
//! being the motivating one) implement [`Plugin`] and register
//! [`ScalarFunction`]s, making new operations available to every query
//! without engine changes.

use crate::error::{NebulaError, Result};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar function callable from expressions.
pub trait ScalarFunction: Send + Sync {
    /// Registry key (lower-case by convention).
    fn name(&self) -> &str;
    /// Minimum argument count.
    fn min_args(&self) -> usize;
    /// Maximum argument count (defaults to `min_args`).
    fn max_args(&self) -> usize {
        self.min_args()
    }
    /// Result type given argument types (bind-time check).
    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType>;
    /// Evaluates the function.
    fn invoke(&self, args: &[Value]) -> Result<Value>;
}

/// Boxed return-type inference function.
type RetFn = Box<dyn Fn(&[DataType]) -> Result<DataType> + Send + Sync>;
/// Boxed evaluation body.
type BodyFn = Box<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A [`ScalarFunction`] assembled from closures — the concise way for
/// plugins and builtins to define functions.
pub struct ClosureFunction {
    name: String,
    min_args: usize,
    max_args: usize,
    ret: RetFn,
    body: BodyFn,
}

impl ClosureFunction {
    /// Builds a function with a fixed arity and constant return type.
    /// Returns the trait-object handle registries store.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        ret: DataType,
        body: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Arc<dyn ScalarFunction> {
        Arc::new(ClosureFunction {
            name: name.into(),
            min_args: arity,
            max_args: arity,
            ret: Box::new(move |_| Ok(ret)),
            body: Box::new(body),
        })
    }

    /// Builds a function with an argument-count range and a computed
    /// return type.
    pub fn new_variadic(
        name: impl Into<String>,
        min_args: usize,
        max_args: usize,
        ret: impl Fn(&[DataType]) -> Result<DataType> + Send + Sync + 'static,
        body: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Arc<dyn ScalarFunction> {
        Arc::new(ClosureFunction {
            name: name.into(),
            min_args,
            max_args,
            ret: Box::new(ret),
            body: Box::new(body),
        })
    }
}

impl ScalarFunction for ClosureFunction {
    fn name(&self) -> &str {
        &self.name
    }

    fn min_args(&self) -> usize {
        self.min_args
    }

    fn max_args(&self) -> usize {
        self.max_args
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        (self.ret)(arg_types)
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        (self.body)(args)
    }
}

/// Named scalar functions available to expressions. Queries bind against
/// one registry; plugins extend it at startup.
#[derive(Default, Clone)]
pub struct FunctionRegistry {
    funcs: HashMap<String, Arc<dyn ScalarFunction>>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// A registry preloaded with the engine builtins.
    pub fn with_builtins() -> Self {
        let mut reg = FunctionRegistry::new();
        super::builtins::register_builtins(&mut reg);
        reg
    }

    /// Registers a function; fails on a duplicate name so plugin
    /// collisions surface at startup rather than as silently shadowed
    /// semantics.
    pub fn register(&mut self, f: Arc<dyn ScalarFunction>) -> Result<()> {
        let name = f.name().to_string();
        if self.funcs.contains_key(&name) {
            return Err(NebulaError::Plan(format!(
                "function '{name}' already registered"
            )));
        }
        self.funcs.insert(name, f);
        Ok(())
    }

    /// Registers or replaces (for tests / deliberate overrides).
    pub fn register_or_replace(&mut self, f: Arc<dyn ScalarFunction>) {
        self.funcs.insert(f.name().to_string(), f);
    }

    /// Resolves a function by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ScalarFunction>> {
        self.funcs.get(name).cloned()
    }

    /// True iff `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }

    /// Registered function names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.funcs.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Loads a plugin's functions.
    pub fn load_plugin(&mut self, plugin: &dyn Plugin) -> Result<()> {
        plugin.register(self)
    }
}

/// A runtime extension bundling function registrations — the engine-side
/// half of NebulaStream's plugin mechanism.
pub trait Plugin {
    /// Plugin name for diagnostics.
    fn name(&self) -> &str;
    /// Registers the plugin's functions.
    fn register(&self, registry: &mut FunctionRegistry) -> Result<()>;
    /// Static-analysis capabilities the plugin contributes: which of
    /// its functions produce opaque values (and their type tags), and
    /// which tags it ships wire codecs for. Environments merge this
    /// into their [`crate::analysis::CapabilityRegistry`] on load.
    fn capabilities(&self) -> crate::analysis::CapabilityRegistry {
        crate::analysis::CapabilityRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double_fn() -> Arc<dyn ScalarFunction> {
        ClosureFunction::new("double", 1, DataType::Float, |args| {
            let v = args[0]
                .as_float()
                .ok_or_else(|| NebulaError::Eval("double: non-numeric".into()))?;
            Ok(Value::Float(v * 2.0))
        })
    }

    #[test]
    fn register_and_invoke() {
        let mut reg = FunctionRegistry::new();
        reg.register(double_fn()).unwrap();
        let f = reg.get("double").unwrap();
        assert_eq!(f.invoke(&[Value::Int(4)]).unwrap(), Value::Float(8.0));
        assert_eq!(f.return_type(&[DataType::Int]).unwrap(), DataType::Float);
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut reg = FunctionRegistry::new();
        reg.register(double_fn()).unwrap();
        assert!(reg.register(double_fn()).is_err());
        reg.register_or_replace(double_fn());
        assert!(reg.contains("double"));
    }

    #[test]
    fn plugin_loading() {
        struct P;
        impl Plugin for P {
            fn name(&self) -> &str {
                "test-plugin"
            }
            fn register(&self, reg: &mut FunctionRegistry) -> Result<()> {
                reg.register(double_fn())
            }
        }
        let mut reg = FunctionRegistry::new();
        reg.load_plugin(&P).unwrap();
        assert!(reg.contains("double"));
        assert_eq!(reg.names(), vec!["double"]);
    }

    #[test]
    fn builtins_present() {
        let reg = FunctionRegistry::with_builtins();
        for name in ["abs", "sqrt", "least", "greatest", "coalesce", "if"] {
            assert!(reg.contains(name), "missing builtin '{name}'");
        }
    }
}
