//! Bound (index-resolved, type-checked) expressions and their evaluator.

use super::registry::ScalarFunction;
use super::{BinOp, UnOp};
use crate::error::{NebulaError, Result};
use crate::record::Record;
use crate::value::Value;
use std::sync::Arc;

/// A bound expression: columns are positional, functions resolved.
#[derive(Clone)]
pub enum BoundExpr {
    /// A constant.
    Literal(Value),
    /// A column by index.
    Column(usize),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// A resolved function call.
    Call {
        /// The function handle.
        func: Arc<dyn ScalarFunction>,
        /// Bound arguments.
        args: Vec<BoundExpr>,
    },
}

impl std::fmt::Debug for BoundExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundExpr::Literal(v) => write!(f, "lit({v})"),
            BoundExpr::Column(i) => write!(f, "col#{i}"),
            BoundExpr::Binary { op, lhs, rhs } => {
                write!(f, "({lhs:?} {op} {rhs:?})")
            }
            BoundExpr::Unary { op, expr } => write!(f, "({op:?} {expr:?})"),
            BoundExpr::Call { func, args } => {
                write!(f, "{}({args:?})", func.name())
            }
        }
    }
}

impl BoundExpr {
    /// Evaluates against one record.
    pub fn eval(&self, rec: &Record) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(idx) => rec.get(*idx).cloned().ok_or_else(|| {
                NebulaError::Eval(format!(
                    "record has {} fields, column #{idx} missing",
                    rec.len()
                ))
            }),
            BoundExpr::Binary { op, lhs, rhs } => {
                // Short-circuit logic operators.
                match op {
                    BinOp::And => {
                        let l = lhs.eval(rec)?.as_bool().unwrap_or(false);
                        if !l {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(rhs.eval(rec)?.as_bool().unwrap_or(false)));
                    }
                    BinOp::Or => {
                        let l = lhs.eval(rec)?.as_bool().unwrap_or(false);
                        if l {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(rhs.eval(rec)?.as_bool().unwrap_or(false)));
                    }
                    _ => {}
                }
                let l = lhs.eval(rec)?;
                let r = rhs.eval(rec)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(rec)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.as_bool().unwrap_or(false))),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(NebulaError::Eval(format!("cannot negate {other}"))),
                    },
                }
            }
            BoundExpr::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(rec)?);
                }
                func.invoke(&values)
            }
        }
    }

    /// Evaluates as a predicate: non-true (false or null) drops.
    pub fn eval_predicate(&self, rec: &Record) -> Result<bool> {
        Ok(self.eval(rec)?.as_bool().unwrap_or(false))
    }
}

pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            // Integer fast path.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                return Ok(match op {
                    BinOp::Add => Value::Int(a.wrapping_add(*b)),
                    BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
                    BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
                    BinOp::Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a % b)
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = (float_of(l)?, float_of(r)?);
            Ok(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => unreachable!(),
            })
        }
        BinOp::Eq => Ok(Value::Bool(l == r)),
        BinOp::Ne => Ok(Value::Bool(l != r)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match l.partial_cmp_num(r) {
            Some(ord) => {
                use std::cmp::Ordering::*;
                let b = match op {
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    BinOp::Ge => ord != Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
            None => Ok(Value::Null),
        },
        BinOp::And | BinOp::Or => unreachable!("handled in eval"),
    }
}

fn float_of(v: &Value) -> Result<f64> {
    v.as_float()
        .ok_or_else(|| NebulaError::Eval(format!("expected numeric, got {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, FunctionRegistry};
    use crate::schema::Schema;
    use crate::value::DataType;

    fn eval_on(e: &crate::expr::Expr, rec: &Record) -> Value {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Float)]);
        let reg = FunctionRegistry::with_builtins();
        let (b, _) = e.bind(&schema, &reg).unwrap();
        b.eval(rec).unwrap()
    }

    fn rec(a: i64, b: f64) -> Record {
        Record::new(vec![Value::Int(a), Value::Float(b)])
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            eval_on(&col("a").div(lit(0i64)), &rec(10, 0.0)),
            Value::Null
        );
        assert_eq!(eval_on(&col("b").div(lit(0.0)), &rec(0, 5.0)), Value::Null);
        assert_eq!(
            eval_on(&col("a").modulo(lit(0i64)), &rec(10, 0.0)),
            Value::Null
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = col("a").div(lit(0i64)).add(lit(5i64));
        assert_eq!(eval_on(&e, &rec(1, 0.0)), Value::Null);
    }

    #[test]
    fn null_predicate_is_false() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let reg = FunctionRegistry::with_builtins();
        let (b, _) = col("a")
            .div(lit(0i64))
            .gt(lit(1i64))
            .bind(&schema, &reg)
            .unwrap();
        let r = Record::new(vec![Value::Int(5)]);
        assert!(!b.eval_predicate(&r).unwrap());
    }

    #[test]
    fn mixed_numeric_promotion() {
        assert_eq!(
            eval_on(&col("a").add(col("b")), &rec(2, 0.5)),
            Value::Float(2.5)
        );
        assert_eq!(
            eval_on(&col("a").mul(lit(3i64)), &rec(2, 0.0)),
            Value::Int(6)
        );
    }

    #[test]
    fn short_circuit_logic() {
        // The right side would error (column out of range) if evaluated.
        let bad = BoundExpr::Column(99);
        let and = BoundExpr::Binary {
            op: BinOp::And,
            lhs: Box::new(BoundExpr::Literal(Value::Bool(false))),
            rhs: Box::new(bad.clone()),
        };
        assert_eq!(and.eval(&rec(0, 0.0)).unwrap(), Value::Bool(false));
        let or = BoundExpr::Binary {
            op: BinOp::Or,
            lhs: Box::new(BoundExpr::Literal(Value::Bool(true))),
            rhs: Box::new(bad),
        };
        assert_eq!(or.eval(&rec(0, 0.0)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn missing_column_is_eval_error() {
        let b = BoundExpr::Column(5);
        assert!(b.eval(&rec(0, 0.0)).is_err());
    }
}
