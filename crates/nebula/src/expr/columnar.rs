//! Columnar expression kernels over [`TupleBuffer`]s.
//!
//! Vectorized evaluation of [`BoundExpr`] against whole columns, with
//! per-row fallbacks that reuse the scalar evaluator, so the batched
//! path is semantically identical to the per-record reference: null
//! propagation, the Int/Int wrapping fast path, float promotion (any
//! Timestamp or Float operand), division-by-zero-is-null, short-circuit
//! `And`/`Or` (errors on short-circuited rows never surface), and
//! predicate truth (`as_bool().unwrap_or(false)`).

use super::eval::eval_binary;
use super::{BinOp, BoundExpr, UnOp};
use crate::buffer::{Column, ColumnBuilder, TupleBuffer};
use crate::error::{NebulaError, Result};
use crate::value::Value;
use std::borrow::Cow;

impl BoundExpr {
    /// True iff evaluating this expression over a column actually runs
    /// a vectorized kernel somewhere — i.e. the tree is not *entirely*
    /// per-row work. [`BoundExpr::eval_column`] falls back to scalar
    /// invocation for [`BoundExpr::Call`] nodes, so a chain head whose
    /// expressions are pure calls (e.g. an opaque-geometry predicate)
    /// gains nothing from columnar input and should not ask the source
    /// to transpose for it.
    pub fn vectorizes(&self) -> bool {
        match self {
            BoundExpr::Literal(_) | BoundExpr::Column(_) => true,
            BoundExpr::Binary { lhs, rhs, .. } => lhs.vectorizes() && rhs.vectorizes(),
            BoundExpr::Unary { expr, .. } => expr.vectorizes(),
            BoundExpr::Call { .. } => false,
        }
    }

    /// Evaluates against row `row` of a buffer, reading columns
    /// directly — no [`crate::record::Record`] materialization.
    pub fn eval_row(&self, buf: &TupleBuffer, row: usize) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(idx) => buf.value_at(row, *idx).ok_or_else(|| {
                NebulaError::Eval(format!(
                    "record has {} fields, column #{idx} missing",
                    buf.columns().len()
                ))
            }),
            BoundExpr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::And => {
                        let l = lhs.eval_row(buf, row)?.as_bool().unwrap_or(false);
                        if !l {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(
                            rhs.eval_row(buf, row)?.as_bool().unwrap_or(false),
                        ));
                    }
                    BinOp::Or => {
                        let l = lhs.eval_row(buf, row)?.as_bool().unwrap_or(false);
                        if l {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(
                            rhs.eval_row(buf, row)?.as_bool().unwrap_or(false),
                        ));
                    }
                    _ => {}
                }
                let l = lhs.eval_row(buf, row)?;
                let r = rhs.eval_row(buf, row)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval_row(buf, row)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.as_bool().unwrap_or(false))),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(NebulaError::Eval(format!("cannot negate {other}"))),
                    },
                }
            }
            BoundExpr::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval_row(buf, row)?);
                }
                func.invoke(&values)
            }
        }
    }

    /// Evaluates as a predicate on one row: non-true (false/null) drops.
    pub fn eval_predicate_row(&self, buf: &TupleBuffer, row: usize) -> Result<bool> {
        Ok(self.eval_row(buf, row)?.as_bool().unwrap_or(false))
    }

    /// Evaluates over every row, producing one result [`Column`].
    pub fn eval_column(&self, buf: &TupleBuffer) -> Result<Column> {
        let n = buf.len();
        match self {
            BoundExpr::Literal(v) => {
                let mut b = ColumnBuilder::with_capacity(n);
                for _ in 0..n {
                    b.push(v.clone());
                }
                Ok(b.finish())
            }
            BoundExpr::Column(idx) => buf.column(*idx).cloned().ok_or_else(|| {
                NebulaError::Eval(format!(
                    "record has {} fields, column #{idx} missing",
                    buf.columns().len()
                ))
            }),
            BoundExpr::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => Ok(Column::Bool {
                    data: self.eval_mask(buf)?,
                    validity: None,
                }),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let lc = lhs.eval_column(buf)?;
                    let rc = rhs.eval_column(buf)?;
                    arith_kernel(*op, &lc, &rc).unwrap_or_else(|| per_row_binary(*op, &lc, &rc, n))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let lc = lhs.eval_column(buf)?;
                    let rc = rhs.eval_column(buf)?;
                    cmp_kernel(*op, &lc, &rc).unwrap_or_else(|| per_row_binary(*op, &lc, &rc, n))
                }
            },
            BoundExpr::Unary { op, expr } => {
                let c = expr.eval_column(buf)?;
                match op {
                    UnOp::Not => Ok(Column::Bool {
                        data: truth_mask(&c).iter().map(|&b| !b).collect(),
                        validity: None,
                    }),
                    UnOp::Neg => neg_kernel(&c),
                }
            }
            BoundExpr::Call { func, args } => {
                // Vector-evaluate the arguments, then invoke per row with
                // a reused scratch vector: the argument subtrees get the
                // batched kernels even though the call itself is scalar.
                let mut cols = Vec::with_capacity(args.len());
                for a in args {
                    cols.push(a.eval_column(buf)?);
                }
                let mut out = ColumnBuilder::with_capacity(n);
                let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
                for row in 0..n {
                    scratch.clear();
                    for c in &cols {
                        scratch.push(c.value_at(row));
                    }
                    out.push(func.invoke(&scratch)?);
                }
                Ok(out.finish())
            }
        }
    }

    /// Evaluates as a predicate over every row: `mask[i]` is true iff
    /// row `i` passes. Errors on short-circuited rows never surface,
    /// exactly as in the scalar evaluator.
    pub fn eval_mask(&self, buf: &TupleBuffer) -> Result<Vec<bool>> {
        let n = buf.len();
        match self {
            BoundExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let lm = lhs.eval_mask(buf)?;
                match rhs.eval_mask(buf) {
                    Ok(rm) => Ok(lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect()),
                    Err(_) => {
                        // A row the reference would have short-circuited
                        // may be the one that errored: re-evaluate only
                        // the rows whose left side was true.
                        let mut out = vec![false; n];
                        for (row, o) in out.iter_mut().enumerate() {
                            if lm[row] {
                                *o = rhs.eval_predicate_row(buf, row)?;
                            }
                        }
                        Ok(out)
                    }
                }
            }
            BoundExpr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                let lm = lhs.eval_mask(buf)?;
                match rhs.eval_mask(buf) {
                    Ok(rm) => Ok(lm.iter().zip(&rm).map(|(&a, &b)| a || b).collect()),
                    Err(_) => {
                        let mut out = lm.clone();
                        for (row, o) in out.iter_mut().enumerate() {
                            if !lm[row] {
                                *o = rhs.eval_predicate_row(buf, row)?;
                            }
                        }
                        Ok(out)
                    }
                }
            }
            _ => Ok(truth_mask(&self.eval_column(buf)?)),
        }
    }
}

/// Predicate truth of a column: `Bool` rows pass when valid and true;
/// every non-bool value (incl. null) is false, matching
/// `as_bool().unwrap_or(false)`.
fn truth_mask(c: &Column) -> Vec<bool> {
    match c {
        Column::Bool { data, validity } => match validity {
            None => data.clone(),
            Some(m) => data.iter().zip(m).map(|(&b, &v)| b && v).collect(),
        },
        Column::Values(vals) => vals.iter().map(|v| v.as_bool().unwrap_or(false)).collect(),
        other => vec![false; other.len()],
    }
}

/// A borrowed/widened f64 view of a numeric column with its validity.
type NumericView<'a> = (Cow<'a, [f64]>, Option<&'a [bool]>);

/// The numeric view of a column (`Int`, `Float`, `Timestamp`);
/// `None` for anything else.
fn numeric_view(c: &Column) -> Option<NumericView<'_>> {
    match c {
        Column::Float { data, validity } => Some((Cow::Borrowed(&data[..]), validity.as_deref())),
        Column::Int { data, validity } | Column::Timestamp { data, validity } => Some((
            Cow::Owned(data.iter().map(|&i| i as f64).collect()),
            validity.as_deref(),
        )),
        _ => None,
    }
}

fn valid_at(m: Option<&[bool]>, i: usize) -> bool {
    m.is_none_or(|m| m[i])
}

/// Vectorized arithmetic; `None` when operand types need the scalar
/// fallback. `Int ⊕ Int` stays integer (wrapping, `/0`→null); any
/// `Float`/`Timestamp` operand promotes the whole kernel to f64,
/// exactly like the scalar evaluator does per row.
fn arith_kernel(op: BinOp, lc: &Column, rc: &Column) -> Option<Result<Column>> {
    if let (
        Column::Int {
            data: la,
            validity: lv,
        },
        Column::Int {
            data: ra,
            validity: rv,
        },
    ) = (lc, rc)
    {
        let n = la.len();
        let mut data = vec![0i64; n];
        let mut validity: Option<Vec<bool>> = None;
        for i in 0..n {
            let ok = valid_at(lv.as_deref(), i) && valid_at(rv.as_deref(), i);
            let v = if ok {
                let (a, b) = (la[i], ra[i]);
                match op {
                    BinOp::Add => Some(a.wrapping_add(b)),
                    BinOp::Sub => Some(a.wrapping_sub(b)),
                    BinOp::Mul => Some(a.wrapping_mul(b)),
                    BinOp::Div => (b != 0).then(|| a / b),
                    BinOp::Mod => (b != 0).then(|| a % b),
                    _ => unreachable!(),
                }
            } else {
                None
            };
            match v {
                Some(v) => data[i] = v,
                None => mark_null(&mut validity, n, i),
            }
        }
        return Some(Ok(Column::Int { data, validity }));
    }
    let (la, lv) = numeric_view(lc)?;
    let (ra, rv) = numeric_view(rc)?;
    let n = la.len();
    let mut data = vec![0f64; n];
    let mut validity: Option<Vec<bool>> = None;
    for i in 0..n {
        let ok = valid_at(lv, i) && valid_at(rv, i);
        let v = if ok {
            let (a, b) = (la[i], ra[i]);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => (b != 0.0).then(|| a / b),
                BinOp::Mod => (b != 0.0).then(|| a % b),
                _ => unreachable!(),
            }
        } else {
            None
        };
        match v {
            Some(v) => data[i] = v,
            None => mark_null(&mut validity, n, i),
        }
    }
    Some(Ok(Column::Float { data, validity }))
}

/// Vectorized comparison over numeric columns; `None` when either side
/// needs the scalar fallback (text, bool, points, mixed columns).
fn cmp_kernel(op: BinOp, lc: &Column, rc: &Column) -> Option<Result<Column>> {
    let (la, lv) = numeric_view(lc)?;
    let (ra, rv) = numeric_view(rc)?;
    let n = la.len();
    let mut data = vec![false; n];
    let mut validity: Option<Vec<bool>> = None;
    for i in 0..n {
        if !(valid_at(lv, i) && valid_at(rv, i)) {
            mark_null(&mut validity, n, i);
            continue;
        }
        let (a, b) = (la[i], ra[i]);
        let v = match op {
            // Numeric equality mirrors `Value::eq`: plain f64 compare,
            // so NaN != NaN is false, not null.
            BinOp::Eq => Some(a == b),
            BinOp::Ne => Some(a != b),
            // Ordering mirrors `partial_cmp_num`: NaN is incomparable
            // and yields null.
            _ => a.partial_cmp(&b).map(|ord| {
                use std::cmp::Ordering::*;
                match op {
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    BinOp::Ge => ord != Less,
                    _ => unreachable!(),
                }
            }),
        };
        match v {
            Some(v) => data[i] = v,
            None => mark_null(&mut validity, n, i),
        }
    }
    Some(Ok(Column::Bool { data, validity }))
}

fn neg_kernel(c: &Column) -> Result<Column> {
    match c {
        Column::Int { data, validity } => Ok(Column::Int {
            data: data.iter().map(|&i| i.wrapping_neg()).collect(),
            validity: validity.clone(),
        }),
        Column::Float { data, validity } => Ok(Column::Float {
            data: data.iter().map(|&f| -f).collect(),
            validity: validity.clone(),
        }),
        other => {
            let mut b = ColumnBuilder::with_capacity(other.len());
            for i in 0..other.len() {
                match other.value_at(i) {
                    Value::Int(v) => b.push(Value::Int(v.wrapping_neg())),
                    Value::Float(v) => b.push(Value::Float(-v)),
                    Value::Null => b.push(Value::Null),
                    v => return Err(NebulaError::Eval(format!("cannot negate {v}"))),
                }
            }
            Ok(b.finish())
        }
    }
}

/// Scalar fallback: applies `eval_binary` row by row over two
/// materialized operand columns.
fn per_row_binary(op: BinOp, lc: &Column, rc: &Column, n: usize) -> Result<Column> {
    let mut b = ColumnBuilder::with_capacity(n);
    for i in 0..n {
        b.push(eval_binary(op, &lc.value_at(i), &rc.value_at(i))?);
    }
    Ok(b.finish())
}

fn mark_null(validity: &mut Option<Vec<bool>>, n: usize, i: usize) {
    validity.get_or_insert_with(|| vec![true; n])[i] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMeta;
    use crate::expr::{col, lit, Expr, FunctionRegistry};
    use crate::record::Record;
    use crate::schema::{Schema, SchemaRef};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("t", DataType::Text),
            ("ts", DataType::Timestamp),
        ])
    }

    fn buffer() -> TupleBuffer {
        let recs: Vec<Record> = (0..20)
            .map(|i| {
                Record::new(vec![
                    if i == 7 { Value::Null } else { Value::Int(i) },
                    Value::Float(i as f64 * 0.5),
                    Value::text(format!("t{}", i % 3)),
                    Value::Timestamp(i * 1000),
                ])
            })
            .collect();
        TupleBuffer::from_records(schema(), &recs, BufferMeta::default())
    }

    fn bind(e: &Expr) -> BoundExpr {
        let reg = FunctionRegistry::with_builtins();
        e.bind(&schema(), &reg).unwrap().0
    }

    /// The columnar result must equal per-record scalar evaluation.
    fn assert_matches_scalar(e: &Expr) {
        let b = bind(e);
        let tb = buffer();
        let colr = b.eval_column(&tb).unwrap();
        for i in 0..tb.len() {
            let rec = tb.row(i);
            let want = b.eval(&rec).unwrap();
            assert_eq!(colr.value_at(i), want, "row {i} of {e:?}");
            assert_eq!(b.eval_row(&tb, i).unwrap(), want, "eval_row {i}");
        }
        let mask = b.eval_mask(&tb).unwrap();
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(m, b.eval_predicate(&tb.row(i)).unwrap(), "mask {i}");
        }
    }

    #[test]
    fn kernels_match_scalar_reference() {
        for e in [
            col("a").add(lit(3i64)),
            col("a").mul(col("a")),
            col("a").div(lit(0i64)),
            col("a").modulo(lit(4i64)),
            col("b").add(col("a")),
            col("ts").add(col("a")),
            col("b").div(lit(0.0)),
            col("a").ge(lit(10i64)),
            col("b").lt(lit(5.0)),
            col("a").eq(col("b").mul(lit(2.0))),
            col("a").ne(lit(7i64)),
            col("t").eq(lit("t1")),
            col("t").lt(lit("t2")),
            col("a").gt(lit(5i64)).and(col("b").lt(lit(8.0))),
            col("a").gt(lit(5i64)).or(col("t").eq(lit("t0"))),
            col("a").gt(lit(5i64)).not(),
            col("a").neg(),
            col("b").neg(),
            lit(2.5).mul(col("a")),
        ] {
            assert_matches_scalar(&e);
        }
    }

    #[test]
    fn short_circuit_suppresses_rhs_errors() {
        // rhs is a missing column: scalar short-circuit hides the error
        // when lhs decides; the mask path must do the same.
        let bad = BoundExpr::Column(99);
        let and = BoundExpr::Binary {
            op: BinOp::And,
            lhs: Box::new(BoundExpr::Literal(Value::Bool(false))),
            rhs: Box::new(bad.clone()),
        };
        let tb = buffer();
        assert_eq!(and.eval_mask(&tb).unwrap(), vec![false; tb.len()]);
        let or = BoundExpr::Binary {
            op: BinOp::Or,
            lhs: Box::new(BoundExpr::Literal(Value::Bool(true))),
            rhs: Box::new(bad),
        };
        assert_eq!(or.eval_mask(&tb).unwrap(), vec![true; tb.len()]);
    }

    #[test]
    fn non_short_circuited_error_surfaces() {
        let bad = BoundExpr::Column(99);
        let and = BoundExpr::Binary {
            op: BinOp::And,
            lhs: Box::new(BoundExpr::Literal(Value::Bool(true))),
            rhs: Box::new(bad),
        };
        assert!(and.eval_mask(&buffer()).is_err());
    }

    #[test]
    fn call_vectorizes_arguments() {
        // if(a > 10, "hi", "lo") via the builtin registry: mixed-branch
        // text output exercises the per-row invoke with vector args.
        let e = crate::expr::call("if", vec![col("a").gt(lit(10i64)), lit("hi"), lit("lo")]);
        assert_matches_scalar(&e);
    }
}
