//! Engine builtin scalar functions: math, selection, text and point
//! helpers. Spatiotemporal functions deliberately live in the MEOS plugin,
//! not here — the engine core stays domain-free.

use super::registry::{ClosureFunction, FunctionRegistry};
use crate::error::{NebulaError, Result};
use crate::value::{DataType, Value};

fn num(v: &Value, ctx: &str) -> Result<f64> {
    v.as_float()
        .ok_or_else(|| NebulaError::Eval(format!("{ctx}: expected numeric, got {v}")))
}

/// Registers all builtins into `reg`. Called by
/// [`FunctionRegistry::with_builtins`].
pub fn register_builtins(reg: &mut FunctionRegistry) {
    let numeric_ret = |args: &[DataType]| -> Result<DataType> {
        Ok(if args.contains(&DataType::Float) {
            DataType::Float
        } else {
            DataType::Int
        })
    };

    reg.register_or_replace(ClosureFunction::new_variadic(
        "abs",
        1,
        1,
        numeric_ret,
        |args| match &args[0] {
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Float(v) => Ok(Value::Float(v.abs())),
            Value::Null => Ok(Value::Null),
            other => Err(NebulaError::Eval(format!("abs: non-numeric {other}"))),
        },
    ));

    reg.register_or_replace(ClosureFunction::new("sqrt", 1, DataType::Float, |args| {
        if args[0].is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Float(num(&args[0], "sqrt")?.sqrt()))
    }));

    for (name, f) in [
        ("floor", f64::floor as fn(f64) -> f64),
        ("ceil", f64::ceil),
        ("round", f64::round),
    ] {
        reg.register_or_replace(ClosureFunction::new(
            name,
            1,
            DataType::Float,
            move |args| {
                if args[0].is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Float(f(num(&args[0], name)?)))
            },
        ));
    }

    reg.register_or_replace(ClosureFunction::new_variadic(
        "least",
        2,
        8,
        numeric_ret,
        |args| {
            let mut best: Option<&Value> = None;
            for a in args.iter().filter(|a| !a.is_null()) {
                best = match best {
                    Some(b) if b.partial_cmp_num(a) != Some(std::cmp::Ordering::Greater) => Some(b),
                    _ => Some(a),
                };
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        },
    ));

    reg.register_or_replace(ClosureFunction::new_variadic(
        "greatest",
        2,
        8,
        numeric_ret,
        |args| {
            let mut best: Option<&Value> = None;
            for a in args.iter().filter(|a| !a.is_null()) {
                best = match best {
                    Some(b) if b.partial_cmp_num(a) != Some(std::cmp::Ordering::Less) => Some(b),
                    _ => Some(a),
                };
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        },
    ));

    reg.register_or_replace(ClosureFunction::new_variadic(
        "coalesce",
        1,
        8,
        |args| {
            Ok(args
                .iter()
                .find(|t| **t != DataType::Null)
                .copied()
                .unwrap_or(DataType::Null))
        },
        |args| {
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null))
        },
    ));

    // if(cond, then, else)
    reg.register_or_replace(ClosureFunction::new_variadic(
        "if",
        3,
        3,
        |args| {
            Ok(if args[1] != DataType::Null {
                args[1]
            } else {
                args[2]
            })
        },
        |args| {
            if args[0].as_bool().unwrap_or(false) {
                Ok(args[1].clone())
            } else {
                Ok(args[2].clone())
            }
        },
    ));

    reg.register_or_replace(ClosureFunction::new("clamp", 3, DataType::Float, |args| {
        if args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        let v = num(&args[0], "clamp")?;
        let lo = num(&args[1], "clamp")?;
        let hi = num(&args[2], "clamp")?;
        Ok(Value::Float(v.clamp(lo, hi)))
    }));

    // Text helpers.
    reg.register_or_replace(ClosureFunction::new(
        "upper",
        1,
        DataType::Text,
        |args| match &args[0] {
            Value::Text(s) => Ok(Value::text(s.to_uppercase())),
            Value::Null => Ok(Value::Null),
            other => Err(NebulaError::Eval(format!("upper: non-text {other}"))),
        },
    ));

    reg.register_or_replace(ClosureFunction::new(
        "lower",
        1,
        DataType::Text,
        |args| match &args[0] {
            Value::Text(s) => Ok(Value::text(s.to_lowercase())),
            Value::Null => Ok(Value::Null),
            other => Err(NebulaError::Eval(format!("lower: non-text {other}"))),
        },
    ));

    reg.register_or_replace(ClosureFunction::new_variadic(
        "concat",
        2,
        8,
        |_| Ok(DataType::Text),
        |args| {
            let mut s = String::new();
            for a in args {
                if !a.is_null() {
                    s.push_str(&a.to_string());
                }
            }
            Ok(Value::text(s))
        },
    ));

    // Point helpers — Point is an engine-native type.
    reg.register_or_replace(ClosureFunction::new("point", 2, DataType::Point, |args| {
        if args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        Ok(Value::Point {
            x: num(&args[0], "point")?,
            y: num(&args[1], "point")?,
        })
    }));

    reg.register_or_replace(ClosureFunction::new(
        "px",
        1,
        DataType::Float,
        |args| match &args[0] {
            Value::Point { x, .. } => Ok(Value::Float(*x)),
            Value::Null => Ok(Value::Null),
            other => Err(NebulaError::Eval(format!("px: non-point {other}"))),
        },
    ));

    reg.register_or_replace(ClosureFunction::new(
        "py",
        1,
        DataType::Float,
        |args| match &args[0] {
            Value::Point { y, .. } => Ok(Value::Float(*y)),
            Value::Null => Ok(Value::Null),
            other => Err(NebulaError::Eval(format!("py: non-point {other}"))),
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoke(name: &str, args: &[Value]) -> Value {
        FunctionRegistry::with_builtins()
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .invoke(args)
            .unwrap()
    }

    #[test]
    fn math_functions() {
        assert_eq!(invoke("abs", &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(invoke("abs", &[Value::Float(-2.5)]), Value::Float(2.5));
        assert_eq!(invoke("sqrt", &[Value::Int(9)]), Value::Float(3.0));
        assert_eq!(invoke("floor", &[Value::Float(2.9)]), Value::Float(2.0));
        assert_eq!(invoke("ceil", &[Value::Float(2.1)]), Value::Float(3.0));
        assert_eq!(invoke("round", &[Value::Float(2.5)]), Value::Float(3.0));
        assert_eq!(
            invoke(
                "clamp",
                &[Value::Float(5.0), Value::Float(0.0), Value::Float(2.0)]
            ),
            Value::Float(2.0)
        );
    }

    #[test]
    fn selection_functions() {
        assert_eq!(
            invoke("least", &[Value::Int(3), Value::Float(1.5)]),
            Value::Float(1.5)
        );
        assert_eq!(
            invoke("greatest", &[Value::Int(3), Value::Float(1.5)]),
            Value::Int(3)
        );
        assert_eq!(
            invoke("coalesce", &[Value::Null, Value::Int(7)]),
            Value::Int(7)
        );
        assert_eq!(
            invoke("if", &[Value::Bool(true), Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
        assert_eq!(
            invoke("if", &[Value::Null, Value::Int(1), Value::Int(2)]),
            Value::Int(2),
            "null condition takes else branch"
        );
    }

    #[test]
    fn null_handling() {
        assert_eq!(invoke("abs", &[Value::Null]), Value::Null);
        assert_eq!(invoke("sqrt", &[Value::Null]), Value::Null);
        assert_eq!(
            invoke("least", &[Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn text_functions() {
        assert_eq!(invoke("upper", &[Value::text("ic")]), Value::text("IC"));
        assert_eq!(invoke("lower", &[Value::text("IC")]), Value::text("ic"));
        assert_eq!(
            invoke("concat", &[Value::text("IC-"), Value::Int(540)]),
            Value::text("IC-540")
        );
    }

    #[test]
    fn point_functions() {
        let p = invoke("point", &[Value::Float(4.35), Value::Float(50.85)]);
        assert_eq!(p, Value::Point { x: 4.35, y: 50.85 });
        assert_eq!(invoke("px", std::slice::from_ref(&p)), Value::Float(4.35));
        assert_eq!(invoke("py", &[p]), Value::Float(50.85));
    }

    #[test]
    fn type_errors_surface() {
        let reg = FunctionRegistry::with_builtins();
        assert!(reg.get("upper").unwrap().invoke(&[Value::Int(3)]).is_err());
        assert!(reg.get("px").unwrap().invoke(&[Value::Int(3)]).is_err());
    }
}
