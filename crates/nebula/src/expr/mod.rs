//! The expression framework: an AST with a fluent builder, a bind/type
//! check phase, and a vectorizable evaluator.
//!
//! Functions are resolved by name against the [`FunctionRegistry`], which
//! plugins extend at runtime — NebulaStream's "dynamic registration"
//! mechanism that NebulaMEOS uses to surface MEOS operations
//! (`edwithin`, `tpoint_at_stbox`, …) inside queries.

mod builtins;
mod columnar;
mod eval;
mod registry;

pub use builtins::register_builtins;
pub use eval::BoundExpr;
pub use registry::{ClosureFunction, FunctionRegistry, Plugin, ScalarFunction};

use crate::error::{NebulaError, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// logical AND (nulls coerce to false)
    And,
    /// logical OR (nulls coerce to false)
    Or,
}

impl BinOp {
    pub(crate) fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    pub(crate) fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Numeric negation.
    Neg,
}

/// An unbound expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Value),
    /// A column reference by name.
    Column(String),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A registered function call.
    Call {
        /// Function name (registry key).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// Function call.
pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    Expr::Call {
        name: name.into(),
        args,
    }
}

macro_rules! binop_method {
    ($fn_name:ident, $op:expr) => {
        /// Builds the corresponding binary expression.
        #[allow(clippy::should_implement_trait)]
        pub fn $fn_name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: $op,
                lhs: Box::new(self),
                rhs: Box::new(rhs),
            }
        }
    };
}

impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(modulo, BinOp::Mod);
    binop_method!(eq, BinOp::Eq);
    binop_method!(ne, BinOp::Ne);
    binop_method!(lt, BinOp::Lt);
    binop_method!(le, BinOp::Le);
    binop_method!(gt, BinOp::Gt);
    binop_method!(ge, BinOp::Ge);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// Numeric negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// `lo <= self AND self <= hi`.
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        self.clone().ge(lo).and(self.le(hi))
    }

    /// Binds the expression against a schema and function registry,
    /// resolving columns to indices and names to function handles, and
    /// type-checks the tree. Returns the bound tree and its result type.
    pub fn bind(
        &self,
        schema: &Schema,
        registry: &FunctionRegistry,
    ) -> Result<(BoundExpr, DataType)> {
        match self {
            Expr::Literal(v) => Ok((BoundExpr::Literal(v.clone()), v.data_type())),
            Expr::Column(name) => {
                let idx = schema.index_of(name).ok_or_else(|| {
                    NebulaError::Type(format!("unknown column '{name}' in schema {schema}"))
                })?;
                let dt = schema.field_at(idx).expect("index valid").dtype;
                Ok((BoundExpr::Column(idx), dt))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (bl, tl) = lhs.bind(schema, registry)?;
                let (br, tr) = rhs.bind(schema, registry)?;
                let out = binary_result_type(*op, tl, tr)?;
                Ok((
                    BoundExpr::Binary {
                        op: *op,
                        lhs: Box::new(bl),
                        rhs: Box::new(br),
                    },
                    out,
                ))
            }
            Expr::Unary { op, expr } => {
                let (be, te) = expr.bind(schema, registry)?;
                let out = match op {
                    UnOp::Not => {
                        if te != DataType::Bool && te != DataType::Null {
                            return Err(NebulaError::Type(format!("NOT requires BOOL, got {te}")));
                        }
                        DataType::Bool
                    }
                    UnOp::Neg => match te {
                        DataType::Int => DataType::Int,
                        DataType::Float => DataType::Float,
                        other => {
                            return Err(NebulaError::Type(format!(
                                "negation requires numeric, got {other}"
                            )))
                        }
                    },
                };
                Ok((
                    BoundExpr::Unary {
                        op: *op,
                        expr: Box::new(be),
                    },
                    out,
                ))
            }
            Expr::Call { name, args } => {
                let func = registry
                    .get(name)
                    .ok_or_else(|| NebulaError::Type(format!("unknown function '{name}'")))?;
                if args.len() < func.min_args() || args.len() > func.max_args() {
                    return Err(NebulaError::Type(format!(
                        "function '{name}' expects {}..={} args, got {}",
                        func.min_args(),
                        func.max_args(),
                        args.len()
                    )));
                }
                let mut bound = Vec::with_capacity(args.len());
                let mut types = Vec::with_capacity(args.len());
                for a in args {
                    let (b, t) = a.bind(schema, registry)?;
                    bound.push(b);
                    types.push(t);
                }
                let out = func.return_type(&types)?;
                Ok((BoundExpr::Call { func, args: bound }, out))
            }
        }
    }
}

fn binary_result_type(op: BinOp, tl: DataType, tr: DataType) -> Result<DataType> {
    use DataType::*;
    let numeric = |t: DataType| matches!(t, Int | Float | Timestamp | Null);
    if op.is_arith() {
        if !numeric(tl) || !numeric(tr) {
            return Err(NebulaError::Type(format!(
                "operator {op} requires numeric operands, got {tl} and {tr}"
            )));
        }
        return Ok(if tl == Float || tr == Float {
            Float
        } else {
            Int
        });
    }
    if op.is_cmp() {
        let comparable = (numeric(tl) && numeric(tr)) || (tl == tr) || tl == Null || tr == Null;
        if !comparable {
            return Err(NebulaError::Type(format!("cannot compare {tl} with {tr}")));
        }
        return Ok(Bool);
    }
    // And / Or
    for t in [tl, tr] {
        if t != Bool && t != Null {
            return Err(NebulaError::Type(format!(
                "operator {op} requires BOOL operands, got {t}"
            )));
        }
    }
    Ok(Bool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::Schema;

    fn schema() -> crate::schema::SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("speed", DataType::Float),
            ("train", DataType::Int),
            ("name", DataType::Text),
            ("ok", DataType::Bool),
        ])
    }

    fn rec() -> Record {
        Record::new(vec![
            Value::Timestamp(1_000),
            Value::Float(120.5),
            Value::Int(7),
            Value::text("IC-540"),
            Value::Bool(true),
        ])
    }

    fn eval(e: &Expr) -> Value {
        let reg = FunctionRegistry::with_builtins();
        let (b, _) = e.bind(&schema(), &reg).unwrap();
        b.eval(&rec()).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval(&col("speed").mul(lit(2.0))), Value::Float(241.0));
        assert_eq!(eval(&col("train").add(lit(1i64))), Value::Int(8));
        assert_eq!(eval(&col("speed").gt(lit(100.0))), Value::Bool(true));
        assert_eq!(eval(&col("train").le(lit(3i64))), Value::Bool(false));
        assert_eq!(eval(&col("name").eq(lit("IC-540"))), Value::Bool(true));
    }

    #[test]
    fn logic_and_unary() {
        let e = col("ok").and(col("speed").gt(lit(100.0)));
        assert_eq!(eval(&e), Value::Bool(true));
        assert_eq!(eval(&col("ok").not()), Value::Bool(false));
        assert_eq!(eval(&col("train").neg()), Value::Int(-7));
        let between = col("speed").between(lit(100.0), lit(130.0));
        assert_eq!(eval(&between), Value::Bool(true));
    }

    #[test]
    fn bind_rejects_unknown_column() {
        let reg = FunctionRegistry::with_builtins();
        let err = col("missing").bind(&schema(), &reg).unwrap_err();
        assert!(matches!(err, NebulaError::Type(_)));
    }

    #[test]
    fn bind_rejects_type_mismatch() {
        let reg = FunctionRegistry::with_builtins();
        assert!(col("name").add(lit(1i64)).bind(&schema(), &reg).is_err());
        assert!(col("name").and(col("ok")).bind(&schema(), &reg).is_err());
        assert!(col("name").neg().bind(&schema(), &reg).is_err());
        assert!(col("name").gt(lit(1i64)).bind(&schema(), &reg).is_err());
    }

    #[test]
    fn result_types() {
        let reg = FunctionRegistry::with_builtins();
        let (_, t) = col("train").add(lit(1i64)).bind(&schema(), &reg).unwrap();
        assert_eq!(t, DataType::Int);
        let (_, t) = col("train").add(lit(0.5)).bind(&schema(), &reg).unwrap();
        assert_eq!(t, DataType::Float);
        let (_, t) = col("speed").gt(lit(1i64)).bind(&schema(), &reg).unwrap();
        assert_eq!(t, DataType::Bool);
    }

    #[test]
    fn call_binds_against_registry() {
        let e = call("abs", vec![col("train").neg()]);
        assert_eq!(eval(&e), Value::Int(7));
        let reg = FunctionRegistry::with_builtins();
        assert!(call("nope", vec![]).bind(&schema(), &reg).is_err());
        assert!(call("abs", vec![]).bind(&schema(), &reg).is_err(), "arity");
    }
}
