//! Declarative queries: a fluent builder producing a logical plan, and
//! the compiler that binds it into a physical operator chain.
//!
//! Mirrors NebulaStream's query API:
//!
//! ```
//! use nebula::prelude::*;
//!
//! let q = Query::from("trains")
//!     .filter(col("speed").gt(lit(120.0)))
//!     .map_extend(vec![("excess", col("speed").sub(lit(120.0)))])
//!     .window(
//!         vec![("train", col("train_id"))],
//!         WindowSpec::Tumbling { size: 60_000_000 },
//!         vec![WindowAgg::new("n", AggSpec::Count)],
//!     );
//! assert_eq!(q.source(), "trains");
//! ```

use crate::error::{NebulaError, Result};
use crate::expr::{Expr, FunctionRegistry};
use crate::ops::{CepOp, FilterOp, MapOp, Operator, OperatorFactory, Pattern, WindowOp};
use crate::schema::SchemaRef;
use crate::window::{WindowAgg, WindowSpec};
use std::sync::Arc;

/// A logical operator in a query plan.
#[derive(Clone)]
pub enum LogicalOp {
    /// Selection.
    Filter(Expr),
    /// Projection (optionally extending the input columns).
    Map {
        /// `(output name, expression)` pairs.
        projections: Vec<(String, Expr)>,
        /// Keep input columns and append.
        extend: bool,
    },
    /// Keyed window aggregation.
    Window {
        /// Grouping keys as `(output name, expression)`.
        keys: Vec<(String, Expr)>,
        /// Window shape.
        spec: WindowSpec,
        /// Aggregates.
        aggs: Vec<WindowAgg>,
    },
    /// Complex event pattern detection.
    Cep(Pattern),
    /// A plugin-provided operator.
    Custom(Arc<dyn OperatorFactory>),
}

impl std::fmt::Debug for LogicalOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicalOp::Filter(_) => write!(f, "Filter"),
            LogicalOp::Map {
                projections,
                extend,
            } => {
                write!(f, "Map(x{}, extend={extend})", projections.len())
            }
            LogicalOp::Window { keys, .. } => write!(f, "Window(keys={})", keys.len()),
            LogicalOp::Cep(p) => write!(f, "Cep({})", p.name),
            LogicalOp::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

/// A declarative streaming query.
#[derive(Debug, Clone)]
pub struct Query {
    source: String,
    ts_field: String,
    ops: Vec<LogicalOp>,
}

impl Query {
    /// Starts a query over the named stream. The event-time field
    /// defaults to `"ts"`.
    pub fn from(source: impl Into<String>) -> Self {
        Query {
            source: source.into(),
            ts_field: "ts".into(),
            ops: Vec::new(),
        }
    }

    /// Overrides the event-time field name.
    pub fn with_ts_field(mut self, ts_field: impl Into<String>) -> Self {
        self.ts_field = ts_field.into();
        self
    }

    /// The source stream name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The event-time field name.
    pub fn ts_field(&self) -> &str {
        &self.ts_field
    }

    /// The logical operators in order.
    pub fn ops(&self) -> &[LogicalOp] {
        &self.ops
    }

    /// Appends a selection.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.ops.push(LogicalOp::Filter(predicate));
        self
    }

    /// Appends a narrowing projection.
    pub fn map(mut self, projections: Vec<(&str, Expr)>) -> Self {
        self.ops.push(LogicalOp::Map {
            projections: projections
                .into_iter()
                .map(|(n, e)| (n.to_string(), e))
                .collect(),
            extend: false,
        });
        self
    }

    /// Appends an extending projection (keeps input columns).
    pub fn map_extend(mut self, projections: Vec<(&str, Expr)>) -> Self {
        self.ops.push(LogicalOp::Map {
            projections: projections
                .into_iter()
                .map(|(n, e)| (n.to_string(), e))
                .collect(),
            extend: true,
        });
        self
    }

    /// Appends a keyed window aggregation.
    pub fn window(
        mut self,
        keys: Vec<(&str, Expr)>,
        spec: WindowSpec,
        aggs: Vec<WindowAgg>,
    ) -> Self {
        self.ops.push(LogicalOp::Window {
            keys: keys.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
            spec,
            aggs,
        });
        self
    }

    /// Appends a CEP pattern stage.
    pub fn cep(mut self, pattern: Pattern) -> Self {
        self.ops.push(LogicalOp::Cep(pattern));
        self
    }

    /// Appends a plugin operator.
    pub fn apply(mut self, factory: Arc<dyn OperatorFactory>) -> Self {
        self.ops.push(LogicalOp::Custom(factory));
        self
    }

    /// How this plan may be sharded across parallel workers without
    /// changing its results (see `StreamEnvironment::run_partitioned`).
    ///
    /// The decision walks the operator list up to the first stateful
    /// operator (window or CEP):
    ///
    /// - If the stateful operator is keyed and every operator before it
    ///   preserves source column values (filters and *extending* maps),
    ///   records can be hash-partitioned by the grouping key evaluated on
    ///   source records — each key's full history lands on one worker, so
    ///   per-key state evolves exactly as in a single-worker run.
    /// - A keyless stateful operator, a narrowing map before the stateful
    ///   operator (it may redefine the key columns), or a plugin operator
    ///   (opaque state) forces all data onto a single worker.
    /// - A *second* stateful operator downstream of the first also forces
    ///   a single worker: it consumes the first stage's output, whose
    ///   grouping the source-record key shards cannot be proven to
    ///   respect (e.g. a keyed CEP feeding a keyless global window would
    ///   emit one row per partition instead of one per window).
    /// - A plan with no stateful operators at all is embarrassingly
    ///   parallel: records round-robin across workers.
    pub fn partition_scheme(&self) -> PartitionScheme {
        let mut prefix_preserves_columns = true;
        let mut ops = self.ops.iter();
        let candidate = loop {
            let Some(op) = ops.next() else {
                return PartitionScheme::RoundRobin;
            };
            match op {
                LogicalOp::Filter(_) => {}
                LogicalOp::Map { extend, .. } => {
                    if !extend {
                        prefix_preserves_columns = false;
                    }
                }
                LogicalOp::Window { keys, .. } => {
                    break if prefix_preserves_columns && !keys.is_empty() {
                        PartitionScheme::Key(keys.iter().map(|(_, e)| e.clone()).collect())
                    } else {
                        PartitionScheme::Single
                    };
                }
                LogicalOp::Cep(pattern) => {
                    break match (&pattern.key, prefix_preserves_columns) {
                        (Some(key), true) => PartitionScheme::Key(vec![key.clone()]),
                        _ => PartitionScheme::Single,
                    };
                }
                LogicalOp::Custom(_) => return PartitionScheme::Single,
            }
        };
        if ops.any(|op| {
            matches!(
                op,
                LogicalOp::Window { .. } | LogicalOp::Cep(_) | LogicalOp::Custom(_)
            )
        }) {
            return PartitionScheme::Single;
        }
        candidate
    }
}

/// How records are routed to workers under partitioned execution.
#[derive(Debug, Clone)]
pub enum PartitionScheme {
    /// Hash of these expressions, evaluated on source records; all
    /// records of one key reach the same worker.
    Key(Vec<Expr>),
    /// Stateless plan: records distribute evenly, any worker will do.
    RoundRobin,
    /// Stateful but keyless or opaque: all data on one worker (the rest
    /// only see watermarks and end-of-stream).
    Single,
}

/// A compiled physical plan.
pub struct CompiledPlan {
    /// The operator chain in execution order.
    pub operators: Vec<Box<dyn Operator>>,
    /// The schema leaving the last operator.
    pub output_schema: SchemaRef,
}

/// Compiles a query against the source schema and registry, binding every
/// expression and instantiating physical operators.
pub fn compile(
    query: &Query,
    input: SchemaRef,
    registry: &FunctionRegistry,
) -> Result<CompiledPlan> {
    if query.ops.is_empty() {
        return Err(NebulaError::Plan(
            "query has no operators; add at least a filter/map/window".into(),
        ));
    }
    compile_ops(&query.ops, &query.ts_field, input, registry)
}

/// Compiles a slice of logical operators — the building block behind
/// [`compile`] and the cluster runtime's chain splitting (a placed plan
/// compiles each node's sub-chain separately). Unlike [`compile`], an
/// empty slice is valid and yields a pass-through plan.
pub(crate) fn compile_ops(
    ops: &[LogicalOp],
    ts_field: &str,
    input: SchemaRef,
    registry: &FunctionRegistry,
) -> Result<CompiledPlan> {
    let mut operators: Vec<Box<dyn Operator>> = Vec::with_capacity(ops.len());
    let mut schema = input;
    for op in ops {
        let physical: Box<dyn Operator> = match op {
            LogicalOp::Filter(pred) => Box::new(FilterOp::new(pred, schema.clone(), registry)?),
            LogicalOp::Map {
                projections,
                extend,
            } => Box::new(MapOp::new(projections, *extend, &schema, registry)?),
            LogicalOp::Window { keys, spec, aggs } => Box::new(WindowOp::new(
                ts_field,
                keys,
                spec.clone(),
                aggs.clone(),
                schema.clone(),
                registry,
            )?),
            LogicalOp::Cep(pattern) => Box::new(CepOp::new(pattern, ts_field, &schema, registry)?),
            LogicalOp::Custom(factory) => factory.create(schema.clone(), registry)?,
        };
        schema = physical.output_schema();
        operators.push(physical);
    }
    Ok(CompiledPlan {
        operators,
        output_schema: schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::Schema;
    use crate::value::DataType;
    use crate::window::AggSpec;

    fn schema() -> SchemaRef {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("train_id", DataType::Int),
            ("speed", DataType::Float),
        ])
    }

    #[test]
    fn builder_accumulates_ops() {
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map(vec![("s2", col("speed").mul(lit(2.0)))]);
        assert_eq!(q.source(), "trains");
        assert_eq!(q.ops().len(), 2);
        assert_eq!(q.ts_field(), "ts");
        let q = q.with_ts_field("event_time");
        assert_eq!(q.ts_field(), "event_time");
    }

    #[test]
    fn compile_threads_schemas() {
        let reg = FunctionRegistry::with_builtins();
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))]);
        let plan = compile(&q, schema(), &reg).unwrap();
        assert_eq!(plan.operators.len(), 2);
        assert_eq!(plan.output_schema.len(), 4);
        assert_eq!(plan.output_schema.index_of("kmh"), Some(3));
    }

    #[test]
    fn compile_window_output() {
        let reg = FunctionRegistry::with_builtins();
        let q = Query::from("trains").window(
            vec![("train", col("train_id"))],
            WindowSpec::Tumbling { size: 60_000_000 },
            vec![WindowAgg::new("max_speed", AggSpec::Max(col("speed")))],
        );
        let plan = compile(&q, schema(), &reg).unwrap();
        assert_eq!(
            plan.output_schema.to_string(),
            "(train: INT, window_start: TIMESTAMP, window_end: TIMESTAMP, \
             max_speed: FLOAT)"
        );
    }

    #[test]
    fn compile_rejects_unknown_column_early() {
        let reg = FunctionRegistry::with_builtins();
        let q = Query::from("trains").filter(col("missing").gt(lit(1.0)));
        assert!(compile(&q, schema(), &reg).is_err());
    }

    #[test]
    fn compile_rejects_empty_query() {
        let reg = FunctionRegistry::with_builtins();
        assert!(compile(&Query::from("trains"), schema(), &reg).is_err());
    }

    #[test]
    fn partition_scheme_keyed_window_is_key() {
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map_extend(vec![("kmh", col("speed").mul(lit(3.6)))])
            .window(
                vec![("train", col("train_id"))],
                WindowSpec::Tumbling { size: 60_000_000 },
                vec![WindowAgg::new("n", AggSpec::Count)],
            );
        match q.partition_scheme() {
            PartitionScheme::Key(exprs) => assert_eq!(exprs.len(), 1),
            other => panic!("expected Key, got {other:?}"),
        }
    }

    #[test]
    fn partition_scheme_stateless_is_round_robin() {
        let q = Query::from("trains")
            .filter(col("speed").gt(lit(1.0)))
            .map(vec![("t", col("train_id"))]);
        assert!(matches!(q.partition_scheme(), PartitionScheme::RoundRobin));
    }

    #[test]
    fn partition_scheme_keyless_window_is_single() {
        let q = Query::from("trains").window(
            vec![],
            WindowSpec::Tumbling { size: 60_000_000 },
            vec![WindowAgg::new("n", AggSpec::Count)],
        );
        assert!(matches!(q.partition_scheme(), PartitionScheme::Single));
    }

    #[test]
    fn partition_scheme_narrowing_map_before_window_is_single() {
        // A narrowing map may redefine the key column; partitioning on
        // the source value would split groups, so it must be Single.
        let q = Query::from("trains")
            .map(vec![("train_id", col("speed"))])
            .window(
                vec![("train", col("train_id"))],
                WindowSpec::Tumbling { size: 60_000_000 },
                vec![WindowAgg::new("n", AggSpec::Count)],
            );
        assert!(matches!(q.partition_scheme(), PartitionScheme::Single));
    }

    #[test]
    fn partition_scheme_keyed_cep_is_key() {
        use crate::ops::{Pattern, PatternStep};
        let keyed = Query::from("trains").cep(
            Pattern::new(
                "p",
                vec![PatternStep::new("hi", col("speed").gt(lit(50.0)))],
                1_000_000,
            )
            .keyed_by(col("train_id")),
        );
        assert!(matches!(keyed.partition_scheme(), PartitionScheme::Key(_)));
        let keyless = Query::from("trains").cep(Pattern::new(
            "p",
            vec![PatternStep::new("hi", col("speed").gt(lit(50.0)))],
            1_000_000,
        ));
        assert!(matches!(
            keyless.partition_scheme(),
            PartitionScheme::Single
        ));
    }

    #[test]
    fn partition_scheme_second_stateful_forces_single() {
        use crate::ops::{Pattern, PatternStep};
        // Keyed CEP feeding a keyless global window: sharding by the CEP
        // key would emit one count row per partition, so routing must
        // fall back to Single (the review-probe regression).
        let q = Query::from("trains")
            .cep(
                Pattern::new(
                    "p",
                    vec![PatternStep::new("hi", col("speed").gt(lit(50.0)))],
                    1_000_000,
                )
                .keyed_by(col("train_id")),
            )
            .window(
                vec![],
                WindowSpec::Tumbling { size: 60_000_000 },
                vec![WindowAgg::new("n", AggSpec::Count)],
            );
        assert!(matches!(q.partition_scheme(), PartitionScheme::Single));
        // Same for stacked keyed windows: correctness over parallelism.
        let q = Query::from("trains")
            .window(
                vec![("train", col("train_id"))],
                WindowSpec::Tumbling { size: 60_000_000 },
                vec![WindowAgg::new("n", AggSpec::Count)],
            )
            .window(
                vec![("train", col("train"))],
                WindowSpec::Tumbling { size: 120_000_000 },
                vec![WindowAgg::new("m", AggSpec::Count)],
            );
        assert!(matches!(q.partition_scheme(), PartitionScheme::Single));
    }

    #[test]
    fn downstream_ops_see_projected_schema() {
        let reg = FunctionRegistry::with_builtins();
        // After a narrowing map, "speed" is gone; a filter on it must fail.
        let q = Query::from("trains")
            .map(vec![("train", col("train_id"))])
            .filter(col("speed").gt(lit(1.0)));
        assert!(compile(&q, schema(), &reg).is_err());
    }
}
